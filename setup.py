"""Setuptools shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs work on environments whose setuptools/pip lack PEP 660 editable
wheel support (no `wheel` package available offline):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
