"""Performance guards for the streaming provisioning engine (PR 10).

Not a paper artifact — these pin the daemon's steady-state costs: the
per-chunk feed path (incremental sliding-max + decision walk over the
bounded tail buffer), the per-decision journal append (the fsync is the
designed cost — it IS the durability guarantee), and a full crash-free
day streamed second by second.  The per-boundary latency is what bounds
how fast a live feed can be followed; a regression here turns a 1 Hz
daemon into a backlog machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bml import design
from repro.core.profiles import table_i_profiles
from repro.serve import DecisionJournal, StreamingProvisioner
from repro.serve.journal import encode_record
from repro.workload.worldcup import WorldCupSynthesizer

WINDOW = 378


@pytest.fixture(scope="module")
def serve_day():
    """One day of World-Cup-shaped load at 1 Hz."""
    trace = WorldCupSynthesizer(n_days=1, seed=321, peak_rate=3000).build()
    return np.asarray(trace.values, dtype=np.float64)


@pytest.fixture(scope="module")
def serve_table():
    return design(table_i_profiles()).table(3100.0)


@pytest.mark.benchmark(group="perf-serve")
def test_perf_serve_steady_state_chunk(benchmark, serve_table, serve_day):
    """Per-poll cost: one 60-sample chunk through a warmed engine.

    The daemon's inner loop at 1 Hz with a 60 s poll; the engine carries
    ``window - 1`` samples of tail state, so this measures the true
    incremental cost, not a whole-trace recompute.
    """
    warm = serve_day[: WINDOW * 4]
    chunk = serve_day[WINDOW * 4 : WINDOW * 4 + 60]

    def run():
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        engine.feed(warm)
        engine.feed(chunk)
        return engine.decisions_out

    benchmark(run)


@pytest.mark.benchmark(group="perf-serve")
def test_perf_serve_per_boundary_latency(benchmark, serve_table, serve_day):
    """Steady-state per-boundary latency: a full day, 60 s chunks.

    Reported time / 1440 chunks = the per-poll budget; the engine must
    stream a day far faster than the day happens.
    """

    def run():
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        total = 0
        for pos in range(0, len(serve_day), 60):
            total += len(engine.feed(serve_day[pos : pos + 60]))
        total += len(engine.finalize())
        return total

    result = benchmark(run)
    assert result > 0  # the day must actually reconfigure


@pytest.mark.benchmark(group="perf-serve")
def test_perf_serve_sample_by_sample(benchmark, serve_table, serve_day):
    """Worst-case chunking: one sample per feed() call, one hour of it."""
    hour = serve_day[: 3600 + WINDOW]

    def run():
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        for v in hour:
            engine.feed([v])
        return engine.samples_in

    benchmark(run)


@pytest.mark.benchmark(group="perf-serve")
def test_perf_journal_append_fsync(benchmark, tmp_path):
    """Durable append cost — dominated by the fsync, by design."""
    payloads = [
        encode_record({"t": i, "until": i + 200, "on_j": i * 1.5})
        for i in range(64)
    ]
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        path = tmp_path / f"bench-{counter['n']}.bin"
        with DecisionJournal(path) as journal:
            for i, p in enumerate(payloads):
                journal.append(i, p)
        return journal.count

    benchmark(run)
