"""A4 — ablation: bounded machine inventory.

The paper assumes enough machines of each type; Sec. IV-A notes that
"with minor changes, this work can consider cases of existing
heterogeneous infrastructure where there is limited numbers of machines
of each type".  This ablation applies those changes: the greedy builder
caps per-architecture counts and cascades remainders, and the replay
quantifies what scarce Littles (more Big idle) or scarce Bigs (unserved
peaks) cost.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.workload.worldcup import WorldCupSynthesizer

INVENTORIES = {
    "unbounded (paper)": None,
    "plenty": {"paravance": 8, "chromebook": 100, "raspberry": 100},
    "scarce littles": {"paravance": 8, "chromebook": 2, "raspberry": 1},
    # capacity 3832 req/s < the 5000 req/s trace peak -> binding
    "scarce bigs": {"paravance": 2, "chromebook": 30, "raspberry": 20},
}


@pytest.fixture(scope="module")
def ablation_trace():
    return WorldCupSynthesizer(n_days=7, seed=55).build()


@pytest.fixture(scope="module")
def sweep(infra, ablation_trace):
    out = {}
    for label, inv in INVENTORIES.items():
        plan = BMLScheduler(infra, inventory=inv).plan(ablation_trace)
        out[label] = execute_plan(plan, ablation_trace, label)
    return out


@pytest.mark.benchmark(group="ablation-inventory")
def test_inventory_sweep(benchmark, infra, ablation_trace, sweep):
    benchmark.pedantic(
        lambda: BMLScheduler(
            infra, inventory=INVENTORIES["scarce littles"]
        ).plan(ablation_trace),
        rounds=1,
        iterations=1,
    )

    total = ablation_trace.total_demand
    rows = []
    for label, res in sweep.items():
        qos = res.qos(ablation_trace)
        rows.append(
            {
                "inventory": label,
                "energy kWh": round(res.total_energy_kwh, 2),
                "reconfigs": res.n_reconfigurations,
                "unserved demand %": round(100 * qos.unserved_demand / total, 4),
            }
        )
    print_comparison("A4: bounded inventory (7-day trace)", rows)

    unbounded = sweep["unbounded (paper)"]
    plenty = sweep["plenty"]
    scarce_l = sweep["scarce littles"]
    scarce_b = sweep["scarce bigs"]

    # a generous inventory behaves like the paper's unlimited assumption
    assert plenty.total_energy == pytest.approx(
        unbounded.total_energy, rel=1e-6
    )
    assert plenty.qos(ablation_trace).served_fraction == pytest.approx(
        unbounded.qos(ablation_trace).served_fraction
    )

    # without Littles, low-load hours run on under-utilised Bigs -> energy up
    assert scarce_l.total_energy > unbounded.total_energy
    # without Bigs, peaks above one Paravance + smalls go unserved
    assert (
        scarce_b.qos(ablation_trace).unserved_demand
        > unbounded.qos(ablation_trace).unserved_demand
    )
