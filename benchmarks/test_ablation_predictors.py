"""A3 — future work: impact of load prediction errors.

The paper's conclusion announces a study of "the impact of load
prediction errors on reconfiguration decisions".  This ablation runs it:
the look-ahead-max oracle is degraded with multiplicative log-normal
error (and biases), and purely reactive predictors (trailing max, EWMA)
are thrown in for comparison.  Under-prediction shows up as unserved
demand, over-prediction as extra energy.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.core.prediction import (
    EWMAPredictor,
    LookAheadMaxPredictor,
    NoisyPredictor,
    TrailingMaxPredictor,
)
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.workload.worldcup import WorldCupSynthesizer


@pytest.fixture(scope="module")
def ablation_trace():
    return WorldCupSynthesizer(n_days=7, seed=99).build()


def predictors():
    base = LookAheadMaxPredictor(378)
    out = [base, TrailingMaxPredictor(378), EWMAPredictor(alpha=0.01, headroom=1.3)]
    for sigma in (0.05, 0.1, 0.2):
        out.append(NoisyPredictor(base=base, sigma=sigma, seed=7))
    out.append(NoisyPredictor(base=base, sigma=0.1, bias=0.9, seed=7))
    out.append(NoisyPredictor(base=base, sigma=0.1, bias=1.2, seed=7))
    return out


@pytest.fixture(scope="module")
def sweep(infra, ablation_trace):
    results = {}
    for pred in predictors():
        plan = BMLScheduler(infra, predictor=pred).plan(ablation_trace)
        results[pred.name] = execute_plan(plan, ablation_trace, pred.name)
    return results


@pytest.mark.benchmark(group="ablation-predictors")
def test_prediction_error_impact(benchmark, infra, ablation_trace, sweep):
    benchmark.pedantic(
        lambda: BMLScheduler(
            infra, predictor=NoisyPredictor(sigma=0.1, seed=7)
        ).plan(ablation_trace),
        rounds=1,
        iterations=1,
    )

    total = ablation_trace.total_demand
    rows = []
    for name, res in sweep.items():
        qos = res.qos(ablation_trace)
        rows.append(
            {
                "predictor": name,
                "energy kWh": round(res.total_energy_kwh, 2),
                "reconfigs": res.n_reconfigurations,
                "unserved demand %": round(100 * qos.unserved_demand / total, 4),
                "violation s": qos.violation_seconds,
            }
        )
    print_comparison("A3: prediction error impact (7-day trace)", rows)

    oracle = sweep["lookahead-max(378s)"]

    # noise costs energy: the noisy oracles always pay more than the clean one
    for sigma in (0.05, 0.1, 0.2):
        noisy = sweep[f"noisy(lookahead-max(378s),s={sigma:g},b=1)"]
        assert noisy.total_energy > oracle.total_energy
    # and more noise costs more
    assert (
        sweep["noisy(lookahead-max(378s),s=0.2,b=1)"].total_energy
        > sweep["noisy(lookahead-max(378s),s=0.05,b=1)"].total_energy
    )

    # under-prediction (bias 0.9) sacrifices QoS vs the unbiased noisy run
    under = sweep["noisy(lookahead-max(378s),s=0.1,b=0.9)"]
    unbiased = sweep["noisy(lookahead-max(378s),s=0.1,b=1)"]
    assert (
        under.qos(ablation_trace).unserved_demand
        >= unbiased.qos(ablation_trace).unserved_demand
    )
    # over-prediction (bias 1.2) buys QoS with energy
    over = sweep["noisy(lookahead-max(378s),s=0.1,b=1.2)"]
    assert over.total_energy > unbiased.total_energy

    # the purely reactive trailing-max lags rising edges -> real shortfalls
    reactive = sweep["trailing-max(378s)"]
    assert (
        reactive.qos(ablation_trace).unserved_demand
        > oracle.qos(ablation_trace).unserved_demand
    )
