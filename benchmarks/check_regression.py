#!/usr/bin/env python
"""Guard the perf trajectory: compare ``BENCH_PR<k>.json`` artifacts.

The repo records one pytest-benchmark JSON artifact per PR
(``benchmarks/run_benchmarks.py``).  This checker compares the newest
artifact against its predecessor and **fails (exit 1) when any benchmark
present in both slowed down by more than the threshold** (default 1.3x).
New benchmarks (no counterpart in the previous artifact) are reported but
never fail; removed ones are listed for visibility.

The compared statistic is each benchmark's ``min`` — the fastest observed
round — which is the standard noise-robust choice for detecting real
slowdowns (means absorb scheduler jitter; a genuine regression moves the
floor).

Usage::

    python benchmarks/check_regression.py                  # newest vs previous
    python benchmarks/check_regression.py --current BENCH_PR2.json
    python benchmarks/check_regression.py --threshold 1.5
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
ARTIFACT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")
DEFAULT_THRESHOLD = 1.3


def find_artifacts(root: Optional[Path] = None) -> List[Tuple[int, Path]]:
    """``(k, path)`` for every ``BENCH_PR<k>.json`` in ``root``, sorted by k."""
    root = ROOT if root is None else root
    out = []
    for path in root.glob("BENCH_PR*.json"):
        match = ARTIFACT_RE.match(path.name)
        if match:
            out.append((int(match.group(1)), path))
    return sorted(out)


def load_mins(path: Path) -> Dict[str, float]:
    """``fullname -> min seconds`` for every benchmark in the artifact."""
    data = json.loads(path.read_text())
    out: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats", {})
        if name and "min" in stats:
            out[name] = float(stats["min"])
    return out


def compare(
    current: Dict[str, float],
    previous: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Returns ``(report_lines, failures)`` for the shared benchmarks."""
    lines: List[str] = []
    failures: List[str] = []
    shared = sorted(set(current) & set(previous))
    for name in shared:
        prev, cur = previous[name], current[name]
        if prev <= 0:
            continue
        ratio = cur / prev
        flag = ""
        if ratio > threshold:
            flag = f"  <-- REGRESSION (>{threshold:g}x)"
            failures.append(name)
        lines.append(
            f"{name}: {prev * 1e3:.3f} ms -> {cur * 1e3:.3f} ms "
            f"({ratio:.2f}x){flag}"
        )
    for name in sorted(set(current) - set(previous)):
        lines.append(f"{name}: new benchmark ({current[name] * 1e3:.3f} ms)")
    for name in sorted(set(previous) - set(current)):
        lines.append(f"{name}: removed (was {previous[name] * 1e3:.3f} ms)")
    return lines, failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=None,
        help="current artifact (default: the highest-numbered BENCH_PR<k>.json)",
    )
    parser.add_argument(
        "--previous",
        type=Path,
        default=None,
        help="baseline artifact (default: the next artifact below the current)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"failure ratio for shared benchmarks (default {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    artifacts = find_artifacts()
    current_path = args.current
    if current_path is None:
        if not artifacts:
            print("no BENCH_PR<k>.json artifacts found; nothing to check")
            return 0
        current_path = artifacts[-1][1]
    previous_path = args.previous
    if previous_path is None:
        match = ARTIFACT_RE.match(current_path.name)
        if match:  # the artifact right below the current PR number
            cur_k = int(match.group(1))
            older = [p for k, p in artifacts if k < cur_k]
        else:  # custom name: baseline on the newest recorded artifact
            older = [
                p for _, p in artifacts if p.resolve() != current_path.resolve()
            ]
        if not older:
            print(f"{current_path.name}: no previous artifact; nothing to check")
            return 0
        previous_path = older[-1]

    current = load_mins(current_path)
    previous = load_mins(previous_path)
    print(f"comparing {current_path.name} against {previous_path.name} "
          f"(threshold {args.threshold:g}x on per-benchmark min)")
    lines, failures = compare(current, previous, args.threshold)
    for line in lines:
        print("  " + line)
    if failures:
        print(f"{len(failures)} benchmark(s) regressed past {args.threshold:g}x")
        return 1
    shared = len(set(current) & set(previous))
    print(f"OK: {shared} shared benchmark(s) within {args.threshold:g}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
