#!/usr/bin/env python
"""Guard the perf trajectory: compare ``BENCH_PR<k>.json`` artifacts.

The repo records one pytest-benchmark JSON artifact per PR
(``benchmarks/run_benchmarks.py``).  This checker compares the newest
artifact against its predecessor and **fails (exit 1) when any benchmark
present in both slowed down by more than the threshold** (default 1.3x).
New benchmarks (no counterpart in the previous artifact) are reported but
never fail; removed ones are listed for visibility.

The compared statistic is each benchmark's ``min`` — the fastest observed
round — which is the standard noise-robust choice for detecting real
slowdowns (means absorb scheduler jitter; a genuine regression moves the
floor).

Timings on shared boxes are noisy: a single recording can flag a >1.3x
"regression" on untouched code.  Before failing, the checker therefore
**re-measures the flagged benchmarks once** (best-of-2: the fresh ``min``
is merged with the recorded one) and only fails what still regresses —
a real slowdown reproduces, scheduler noise does not.  ``--no-retry``
restores the strict single-measurement behaviour.

Usage::

    python benchmarks/check_regression.py                  # newest vs previous
    python benchmarks/check_regression.py --current BENCH_PR2.json
    python benchmarks/check_regression.py --threshold 1.5
    python benchmarks/check_regression.py --no-retry
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
ARTIFACT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")
DEFAULT_THRESHOLD = 1.3


def find_artifacts(root: Optional[Path] = None) -> List[Tuple[int, Path]]:
    """``(k, path)`` for every ``BENCH_PR<k>.json`` in ``root``, sorted by k."""
    root = ROOT if root is None else root
    out = []
    for path in root.glob("BENCH_PR*.json"):
        match = ARTIFACT_RE.match(path.name)
        if match:
            out.append((int(match.group(1)), path))
    return sorted(out)


def load_mins(path: Path) -> Dict[str, float]:
    """``fullname -> min seconds`` for every benchmark in the artifact.

    Tolerant by design: a missing file, malformed JSON or a benchmark
    entry without usable stats yields a printed warning and simply
    contributes nothing — an incomplete recording must degrade into
    "fewer shared benchmarks", never a crash of the checker itself.
    """
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"warning: {path.name}: unreadable artifact ({exc}); "
              "treating as empty")
        return {}
    out: Dict[str, float] = {}
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        print(f"warning: {path.name}: no benchmark list; treating as empty")
        return {}
    for bench in benchmarks:
        if not isinstance(bench, dict):
            continue
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        if not name or "min" not in stats:
            continue
        try:
            out[name] = float(stats["min"])
        except (TypeError, ValueError):
            print(f"warning: {path.name}: {name}: non-numeric min "
                  f"{stats['min']!r}; skipping entry")
    return out


def missing_groups(
    current: Dict[str, float], previous: Dict[str, float]
) -> List[str]:
    """Benchmark groups (the file part of ``file::test`` fullnames) that
    the previous artifact recorded but the current one lost entirely —
    e.g. a benchmark module that failed to collect."""
    group = lambda name: name.split("::", 1)[0]  # noqa: E731
    return sorted(
        {group(n) for n in previous} - {group(n) for n in current}
    )


def compare(
    current: Dict[str, float],
    previous: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Returns ``(report_lines, failures)`` for the shared benchmarks."""
    lines: List[str] = []
    failures: List[str] = []
    shared = sorted(set(current) & set(previous))
    for name in shared:
        prev, cur = previous[name], current[name]
        if prev <= 0:
            continue
        ratio = cur / prev
        flag = ""
        if ratio > threshold:
            flag = f"  <-- REGRESSION (>{threshold:g}x)"
            failures.append(name)
        lines.append(
            f"{name}: {prev * 1e3:.3f} ms -> {cur * 1e3:.3f} ms "
            f"({ratio:.2f}x){flag}"
        )
    for name in sorted(set(current) - set(previous)):
        lines.append(f"{name}: new benchmark ({current[name] * 1e3:.3f} ms)")
    for name in sorted(set(previous) - set(current)):
        lines.append(f"{name}: removed (was {previous[name] * 1e3:.3f} ms)")
    return lines, failures


def artifact_commit(path: Path) -> Optional[str]:
    """The ``commit_info.id`` an artifact was recorded at, if readable."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    commit = (data.get("commit_info") or {}).get("id")
    return str(commit) if commit else None


def head_commit(root: Optional[Path] = None) -> Optional[str]:
    """HEAD's commit id, or None outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=ROOT if root is None else root,
            capture_output=True,
            text=True,
        )
    except OSError:
        return None
    return proc.stdout.strip() or None if proc.returncode == 0 else None


def rerun_mins(names: List[str], root: Optional[Path] = None) -> Dict[str, float]:
    """Re-measure the named benchmarks once; returns their fresh ``min``s.

    ``names`` are pytest-benchmark fullnames, which double as pytest
    node ids relative to the repo root.  Failures to re-measure (missing
    node, crash) simply yield no entry — the caller then falls back to
    the originally recorded timing.
    """
    root = ROOT if root is None else root
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "rerun.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *names,
            "-q",
            f"--benchmark-json={out}",
        ]
        proc = subprocess.run(cmd, cwd=root, env=env)
        if proc.returncode != 0 or not out.exists():
            return {}
        return load_mins(out)


def main(
    argv: Optional[List[str]] = None,
    rerun: Callable[[List[str]], Dict[str, float]] = rerun_mins,
) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=None,
        help="current artifact (default: the highest-numbered BENCH_PR<k>.json)",
    )
    parser.add_argument(
        "--previous",
        type=Path,
        default=None,
        help="baseline artifact (default: the next artifact below the current)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"failure ratio for shared benchmarks (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--no-retry",
        action="store_true",
        help="fail immediately instead of re-measuring flagged benchmarks "
        "once (best-of-2)",
    )
    args = parser.parse_args(argv)

    artifacts = find_artifacts()
    current_path = args.current
    if current_path is None:
        if not artifacts:
            print("no BENCH_PR<k>.json artifacts found; nothing to check")
            return 0
        current_path = artifacts[-1][1]
    previous_path = args.previous
    if previous_path is None:
        match = ARTIFACT_RE.match(current_path.name)
        if match:  # the artifact right below the current PR number
            cur_k = int(match.group(1))
            older = [p for k, p in artifacts if k < cur_k]
        else:  # custom name: baseline on the newest recorded artifact
            older = [
                p for _, p in artifacts if p.resolve() != current_path.resolve()
            ]
        if not older:
            print(f"{current_path.name}: no previous artifact; nothing to check")
            return 0
        previous_path = older[-1]

    current = load_mins(current_path)
    previous = load_mins(previous_path)
    print(f"comparing {current_path.name} against {previous_path.name} "
          f"(threshold {args.threshold:g}x on per-benchmark min)")
    for group in missing_groups(current, previous):
        print(f"warning: benchmark group {group} is missing from "
              f"{current_path.name} (recorded in {previous_path.name}); "
              "its benchmarks are not compared")
    lines, failures = compare(current, previous, args.threshold)
    for line in lines:
        print("  " + line)
    retry = not args.no_retry
    if failures and retry:
        # A re-measurement runs on the *current* checkout, so it is only
        # comparable when the current artifact was recorded from it —
        # auditing a historical artifact must not be whitewashed by
        # today's (possibly faster) code.
        recorded, head = artifact_commit(current_path), head_commit()
        if recorded is not None and head is not None and recorded != head:
            print(
                f"skipping best-of-2 re-measurement: {current_path.name} "
                f"records commit {recorded[:12]} but the checkout is at "
                f"{head[:12]} (fresh timings would not be comparable)"
            )
            retry = False
    if failures and retry:
        # Best-of-2: re-measure only what was flagged; noise does not
        # reproduce, real regressions do.
        print(
            f"{len(failures)} benchmark(s) flagged; re-measuring once "
            "before failing (best-of-2)"
        )
        fresh = rerun(failures)
        for name in failures:
            if name in fresh:
                current[name] = min(current[name], fresh[name])
        lines, failures = compare(current, previous, args.threshold)
        print("after re-measurement:")
        for line in lines:
            if any(line.startswith(name + ":") for name in set(fresh) | set(failures)):
                print("  " + line)
    if failures:
        print(f"{len(failures)} benchmark(s) regressed past {args.threshold:g}x")
        return 1
    shared = len(set(current) & set(previous))
    summary = f"OK: {shared} shared benchmark(s) within {args.threshold:g}x"
    # New benchmarks (no baseline in the previous artifact) are graced —
    # reported above, counted here, never a failure.  Removed ones too.
    new = len(set(current) - set(previous))
    removed = len(set(previous) - set(current))
    if new:
        summary += f"; {new} new (no baseline, graced)"
    if removed:
        summary += f"; {removed} removed"
    print(summary)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
