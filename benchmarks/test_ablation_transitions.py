"""A5 — future work: transition-aware reconfiguration decisions.

The paper's conclusion proposes "considering other hardware combinations
than pre-computed BML combinations as reconfiguration possibilities, and
tak[ing] in account their corresponding overheads when taking
reconfiguration decisions".  This ablation compares the baseline policy
(always jump to the precomputed ideal combination) with the
:class:`~repro.core.adaptive.TransitionAwareScheduler`, which scores
staying / jumping / booting-without-shutting-down over an amortisation
horizon.

Expected shape: fewer reconfigurations, visibly less switching energy, a
small total-energy gain, and identical QoS.  Gains are bounded by Table
I's economics — a Paravance boot (21.3 kJ) costs only ~5 minutes of its
idle draw, so cycling is genuinely cheap on this hardware.
"""

import pytest

from conftest import print_comparison
from repro.core.adaptive import TransitionAwareScheduler
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.workload.worldcup import WorldCupSynthesizer


@pytest.fixture(scope="module")
def ablation_trace():
    return WorldCupSynthesizer(n_days=7, seed=77).build()


@pytest.fixture(scope="module")
def pair(infra, ablation_trace):
    base = execute_plan(
        BMLScheduler(infra).plan(ablation_trace), ablation_trace, "baseline BML"
    )
    adapt = execute_plan(
        TransitionAwareScheduler(infra).plan(ablation_trace),
        ablation_trace,
        "transition-aware",
    )
    return base, adapt


@pytest.mark.benchmark(group="ablation-transitions")
def test_transition_aware_vs_baseline(benchmark, infra, ablation_trace, pair):
    benchmark.pedantic(
        lambda: TransitionAwareScheduler(infra).plan(ablation_trace),
        rounds=1,
        iterations=1,
    )
    base, adapt = pair

    rows = []
    for res in pair:
        qos = res.qos(ablation_trace)
        rows.append(
            {
                "policy": res.scenario,
                "energy kWh": round(res.total_energy_kwh, 3),
                "reconfigs": res.n_reconfigurations,
                "switch kWh": round(res.switch_energy / 3.6e6, 3),
                "unserved s": qos.violation_seconds,
            }
        )
    print_comparison("A5: overhead-aware reconfiguration decisions", rows)

    assert adapt.n_reconfigurations <= base.n_reconfigurations
    assert adapt.switch_energy < base.switch_energy
    assert adapt.total_energy <= base.total_energy * 1.001
    assert (
        adapt.qos(ablation_trace).unserved_demand
        <= base.qos(ablation_trace).unserved_demand + 1e-6
    )
