"""E2 — Fig. 1: candidate architecture profiles and the Step 2 filter.

Regenerates the illustrative-architecture figure: repeated (stacked)
power profiles of A, B, C, D over the rate axis, with D removed because
its maximum power exceeds A's while delivering less performance.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.experiments import run_fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_candidate_filtering(benchmark):
    fig = benchmark(run_fig1)

    assert fig.annotations["kept"] == ["A", "B", "C"]
    assert list(fig.annotations["removed"]) == ["D"]
    assert "dominated by A" in fig.annotations["removed"]["D"]

    # staircase curves: every architecture's stack is monotone and repeats
    # its profile beyond max_perf
    for name, (x, y) in fig.series.items():
        assert np.all(np.diff(y) >= -1e-9), name

    rows = [
        {
            "architecture": name,
            "verdict": (
                "kept (BML candidate)"
                if name in fig.annotations["kept"]
                else fig.annotations["removed"][name]
            ),
            "power@200 (W)": round(float(np.interp(200.0, *fig.series[name])), 1),
            "power@600 (W)": round(float(np.interp(600.0, *fig.series[name])), 1),
        }
        for name in ("A", "B", "C", "D")
    ]
    print_comparison("Fig. 1: Step 2 verdicts (paper: A, B, C kept; D removed)", rows)
