"""E3 — Fig. 2: crossing points between architectures (Steps 3 and 4).

Left panel (Step 3): Medium's threshold against homogeneous Little stacks
sits around a rate of 150 ("before this point it is more efficient to use
up to five Little nodes"), and Big's provisional threshold lands right
past Medium's maximum performance rate.  Right panel (Step 4):
re-evaluating Big against *mixed* Medium+Little combinations raises its
minimum utilization threshold.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.experiments import run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_crossing_points(benchmark):
    fig = benchmark(run_fig2)

    step3 = fig.annotations["step3_thresholds"]
    step4 = fig.annotations["step4_thresholds"]

    # paper narrative checks
    assert step3["B"] == 150.0          # Medium threshold "around 150"
    assert step3["A"] == 151.0          # Big: right past Medium's maxPerf
    assert step4["A"] > step3["A"]      # Step 4 increases Big's threshold
    assert step4["C"] == 1.0            # Little serves from the first unit

    # the step-4 adversary (ideal mixes) is never weaker than step 3's
    series = dict(fig.series)
    s3 = series["B stack (step3 adversary of A)"]
    s4 = series["ideal mix below A (step4 adversary)"]
    assert np.all(s4[1] <= s3[1] + 1e-9)

    rows = [
        {
            "architecture": name,
            "step3 threshold": step3[name],
            "step4 threshold": step4[name],
            "paper says": note,
        }
        for name, note in (
            ("A", "jump at Medium maxPerf, then increased by step 4"),
            ("B", "around 150 (five Little nodes before)"),
            ("C", "1 (Little)"),
        )
    ]
    print_comparison("Fig. 2: utilization thresholds", rows)
