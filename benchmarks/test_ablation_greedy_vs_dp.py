"""A1 — ablation: paper's Step 5 greedy vs the exact DP optimum.

The paper builds combinations greedily (fill Big nodes, thresholds for the
remainder).  How much power does that leave on the table compared to the
exact optimum?  For the published Table I machines: none — the greedy is
optimal at every integer rate up to several Bigs, which this benchmark
verifies, and the DP's cost is measured for the record.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.core.combination import build_table, ideal_table

MAX_RATE = 4000.0


@pytest.mark.benchmark(group="ablation-greedy-dp")
def test_greedy_table_construction(benchmark, infra):
    table = benchmark(
        build_table, infra.ordered, infra.thresholds, MAX_RATE, 1.0, "greedy"
    )
    assert table.max_rate == MAX_RATE


@pytest.mark.benchmark(group="ablation-greedy-dp")
def test_dp_table_construction(benchmark, infra):
    tbl = benchmark(ideal_table, infra.ordered, MAX_RATE, 1.0)
    assert len(tbl) == int(MAX_RATE) + 1


@pytest.mark.benchmark(group="ablation-greedy-dp")
def test_greedy_optimality_gap(benchmark, infra):
    def gap():
        greedy = build_table(
            infra.ordered, infra.thresholds, MAX_RATE, 1.0, "greedy"
        ).power_array
        optimal = ideal_table(infra.ordered, MAX_RATE, 1.0)
        return greedy - optimal

    diff = benchmark.pedantic(gap, rounds=1, iterations=1)
    assert np.all(diff >= -1e-9)  # DP is a true lower bound

    rows = [
        {
            "statistic": "max gap (W)",
            "value": round(float(diff.max()), 6),
        },
        {
            "statistic": "mean gap (W)",
            "value": round(float(diff.mean()), 6),
        },
        {
            "statistic": "rates where greedy is suboptimal",
            "value": int(np.count_nonzero(diff > 1e-9)),
        },
    ]
    print_comparison(
        "A1: greedy (paper Step 5) vs exact DP over rates 0..4000", rows
    )
    # For Table I machines the thresholds make the greedy exactly optimal.
    assert float(diff.max()) < 1e-6
