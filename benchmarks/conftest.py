"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table/figure) and prints a
paper-vs-measured comparison; heavyweight inputs (the 87-day trace, the
designed infrastructure) are session-cached so the suite stays fast.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.core.bml import design
from repro.core.profiles import illustrative_profiles, table_i_profiles
from repro.workload.worldcup import synthesize


def fig5_days() -> int:
    """Trace length for the Fig. 5 replay.

    Defaults to the paper's 87 days; set ``REPRO_FIG5_DAYS`` to shrink it
    for quick benchmark iterations.
    """
    return int(os.environ.get("REPRO_FIG5_DAYS", "87"))


@pytest.fixture(scope="session")
def infra():
    return design(table_i_profiles())


@pytest.fixture(scope="session")
def infra_abc():
    return design(illustrative_profiles())


@pytest.fixture(scope="session")
def worldcup_trace():
    return synthesize(n_days=fig5_days(), seed=1998)


def print_comparison(title, rows, columns=None):
    """Pretty-print a paper-vs-measured table under the benchmark output."""
    from repro.analysis.tables import render_table

    print()
    print(render_table(rows, columns=columns, title=title))
