"""A6 — the Sec. II argument: power capping vs heterogeneity.

Related work credits RAPL-style capping with "better energy
proportionality" while noting it "does not help reducing idle
consumption".  This ablation measures both claims on the paper's own
workload: a capped homogeneous Big fleet (sized for the peak under its
cap) against the BML infrastructure, replaying one synthetic week.

Expected shape: capping leaves the fleet's idle draw — the dominant cost
of the over-provisioned data center — completely untouched, so its energy
stays close to UpperBound Global, while BML removes the idle floor and
wins by a large factor.
"""

import math

import numpy as np
import pytest

from conftest import print_comparison
from repro.analysis.metrics import ipr
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.sim.powercap import CappedMachine, capped_stack_power
from repro.sim.results import SimulationResult
from repro.workload.worldcup import WorldCupSynthesizer


@pytest.fixture(scope="module")
def ablation_trace():
    return WorldCupSynthesizer(n_days=7, seed=31).build()


def capped_fleet_result(profile, cap, trace):
    """Always-on capped homogeneous fleet sized for the trace peak."""
    machine = CappedMachine(profile, cap)
    nodes = int(math.ceil(trace.peak / machine.max_perf - 1e-9))
    power = np.asarray(
        capped_stack_power(profile, cap, trace.values, nodes), dtype=float
    )
    served = np.minimum(trace.values, nodes * machine.max_perf)
    return (
        SimulationResult(
            scenario=f"capped fleet @{cap:g}W x{nodes}",
            trace_name=trace.name,
            timestep=trace.timestep,
            power=power,
            unserved=trace.values - served,
        ),
        nodes,
    )


@pytest.mark.benchmark(group="ablation-powercap")
def test_powercap_vs_heterogeneity(benchmark, infra, ablation_trace):
    big = infra.big
    uncapped, n_free = capped_fleet_result(big, big.max_power, ablation_trace)
    capped, n_capped = capped_fleet_result(big, 135.0, ablation_trace)
    bml = benchmark.pedantic(
        lambda: execute_plan(
            BMLScheduler(infra).plan(ablation_trace), ablation_trace, "BML"
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for res in (uncapped, capped, bml):
        rows.append(
            {
                "deployment": res.scenario,
                "energy kWh": round(res.total_energy_kwh, 2),
                "idle-floor power W": round(float(res.power.min()), 1),
                "unserved s": res.qos().violation_seconds,
            }
        )
    print_comparison("A6: RAPL-style capping vs BML heterogeneity", rows)

    # capping flattens the per-machine profile (proportionality "improves"
    # above the floor) but the machine's idle draw and IPR get *worse*
    machine_capped = CappedMachine(big, 135.0)
    curve_uncapped = [big.power(r) for r in np.linspace(0, big.max_perf, 50)]
    assert machine_capped.ipr > ipr(curve_uncapped)

    # the fleet's idle floor is untouched per machine: at zero load the
    # draw scales with the node count, not with the cap
    assert capped_stack_power(big, 135.0, 0.0, n_capped) == pytest.approx(
        n_capped * big.idle_power
    )
    assert capped_stack_power(
        big, big.max_power, 0.0, n_capped
    ) == pytest.approx(n_capped * big.idle_power)

    # and the static cost keeps dominating: BML beats both fleets widely
    assert bml.total_energy < 0.5 * capped.total_energy
    assert bml.total_energy < 0.5 * uncapped.total_energy
    # capping even *costs* energy here: more machines are needed for the
    # same peak, each dragging its full idle draw
    assert capped.total_energy > uncapped.total_energy
