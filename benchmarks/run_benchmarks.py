#!/usr/bin/env python
"""Run the benchmark suite and the tier-1 tests, producing BENCH_*.json.

The repo's perf-trajectory convention records one ``BENCH_PR<k>.json``
(pytest-benchmark format) per PR so regressions are visible across the
stacked sequence.  This driver runs:

1. ``pytest benchmarks/ --benchmark-json=<out>`` — every paper artifact
   benchmark plus the hot-path guards in ``test_perf_hotpaths.py``;
2. ``benchmarks/check_regression.py`` — the fresh artifact must not show
   a >1.3x slowdown on any benchmark shared with the previous PR's;
3. the tier-1 suite (``pytest tests/``) — correctness must hold for the
   numbers to mean anything.

Usage::

    python benchmarks/run_benchmarks.py                 # -> BENCH_PR2.json
    python benchmarks/run_benchmarks.py --json OUT.json # custom output
    python benchmarks/run_benchmarks.py --perf-only     # hot paths only
    python benchmarks/run_benchmarks.py --skip-regression
    REPRO_FIG5_DAYS=7 python benchmarks/run_benchmarks.py  # quicker Fig. 5

Exit status is non-zero when any stage fails.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _run(args: list, env: dict) -> int:
    print(f"$ {' '.join(args)}", flush=True)
    return subprocess.call(args, cwd=ROOT, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=None,
        help="pytest-benchmark JSON output path (default: BENCH_PR2.json, "
        "or BENCH_PERF_ONLY.json under --perf-only so quick iterations "
        "never clobber the recorded PR artifact)",
    )
    parser.add_argument(
        "--perf-only",
        action="store_true",
        help="run only benchmarks/test_perf_hotpaths.py (quick iteration)",
    )
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="skip the tier-1 test suite stage",
    )
    parser.add_argument(
        "--skip-regression",
        action="store_true",
        help="skip the BENCH_PR<k>.json cross-PR regression check",
    )
    args = parser.parse_args(argv)
    if args.json is None:
        args.json = "BENCH_PERF_ONLY.json" if args.perf_only else "BENCH_PR2.json"

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    bench_target = (
        "benchmarks/test_perf_hotpaths.py" if args.perf_only else "benchmarks/"
    )
    status = _run(
        [
            sys.executable,
            "-m",
            "pytest",
            bench_target,
            "-q",
            f"--benchmark-json={args.json}",
        ],
        env,
    )
    if status == 0:
        print(f"benchmark results written to {args.json}")
    if status == 0 and not args.skip_regression:
        status = _run(
            [
                sys.executable,
                "benchmarks/check_regression.py",
                "--current",
                args.json,
            ],
            env,
        ) or status
    if not args.skip_tests:
        status = _run(
            [sys.executable, "-m", "pytest", "tests/", "-q"], env
        ) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
