#!/usr/bin/env python
"""Run the benchmark suite and the tier-1 tests, producing BENCH_*.json.

The repo's perf-trajectory convention records one ``BENCH_PR<k>.json``
(pytest-benchmark format) per PR so regressions are visible across the
stacked sequence.  This driver runs:

1. ``pytest benchmarks/ --benchmark-json=<out>`` — every paper artifact
   benchmark plus the hot-path guards in ``test_perf_hotpaths.py``;
2. ``benchmarks/check_regression.py`` — the fresh artifact must not show
   a >1.3x slowdown on any benchmark shared with the previous PR's;
3. the tier-1 suite (``pytest tests/``) — correctness must hold for the
   numbers to mean anything.

Usage::

    python benchmarks/run_benchmarks.py            # -> next BENCH_PR<k>.json
    python benchmarks/run_benchmarks.py --pr 7     # -> BENCH_PR7.json
    python benchmarks/run_benchmarks.py --json OUT.json # custom output
    python benchmarks/run_benchmarks.py --perf-only     # hot paths only
    python benchmarks/run_benchmarks.py --skip-regression
    REPRO_FIG5_DAYS=7 python benchmarks/run_benchmarks.py  # quicker Fig. 5

The default artifact name is inferred: the highest existing
``BENCH_PR<k>.json`` plus one (no more hand-bumping per PR);
``--perf-only`` keeps writing ``BENCH_PERF_ONLY.json`` so quick
iterations never clobber the recorded PR artifact.  A same-PR rerun —
HEAD is the very commit the highest artifact already records — refuses
to mint ``BENCH_PR<k+1>.json``: pass ``--pr <k>`` to re-record this
PR's artifact (or ``--json``/``--perf-only`` for a scratch file).

Exit status is non-zero when any stage fails.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import Optional

ROOT = Path(__file__).resolve().parent.parent


def highest_recorded(root: Path = ROOT) -> Optional[int]:
    """The largest ``k`` with a recorded ``BENCH_PR<k>.json`` (or None)."""
    ks = [
        int(m.group(1))
        for p in root.glob("BENCH_PR*.json")
        for m in [re.match(r"^BENCH_PR(\d+)\.json$", p.name)]
        if m
    ]
    return max(ks) if ks else None


def next_artifact_name(root: Path = ROOT) -> str:
    """``BENCH_PR<k+1>.json`` for the highest recorded ``BENCH_PR<k>.json``."""
    k = highest_recorded(root)
    return f"BENCH_PR{(k or 0) + 1}.json"


def recorded_head_commit(root: Path = ROOT) -> Optional[str]:
    """Commit id stored in the highest ``BENCH_PR<k>.json``, if readable.

    pytest-benchmark stamps every artifact with ``commit_info.id``; that
    is what lets a rerun on the same HEAD be recognised as *this* PR's
    artifact rather than the next one's.
    """
    k = highest_recorded(root)
    if k is None:
        return None
    try:
        data = json.loads((root / f"BENCH_PR{k}.json").read_text())
    except (OSError, ValueError):
        return None
    commit = (data.get("commit_info") or {}).get("id")
    return str(commit) if commit else None


def current_commit(root: Path = ROOT) -> Optional[str]:
    """HEAD's commit id, or None outside a usable git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
        )
    except OSError:
        return None
    return proc.stdout.strip() or None if proc.returncode == 0 else None


def _run(args: list, env: dict) -> int:
    print(f"$ {' '.join(args)}", flush=True)
    return subprocess.call(args, cwd=ROOT, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=None,
        help="pytest-benchmark JSON output path (default: the next "
        "BENCH_PR<k>.json after the highest recorded one, or "
        "BENCH_PERF_ONLY.json under --perf-only so quick iterations "
        "never clobber the recorded PR artifact)",
    )
    parser.add_argument(
        "--pr",
        type=int,
        default=None,
        help="write BENCH_PR<N>.json explicitly instead of inferring N "
        "(--json wins when both are given)",
    )
    parser.add_argument(
        "--perf-only",
        action="store_true",
        help="run only benchmarks/test_perf_hotpaths.py (quick iteration)",
    )
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="skip the tier-1 test suite stage",
    )
    parser.add_argument(
        "--skip-regression",
        action="store_true",
        help="skip the BENCH_PR<k>.json cross-PR regression check",
    )
    args = parser.parse_args(argv)
    if args.pr is not None and args.perf_only:
        parser.error(
            "--pr records a full PR artifact; it cannot be combined with "
            "--perf-only (whose partial results would poison BENCH_PR<N>.json)"
        )
    if args.json is None:
        if args.perf_only:
            args.json = "BENCH_PERF_ONLY.json"
        elif args.pr is not None:
            args.json = f"BENCH_PR{args.pr}.json"
        else:
            # Same-PR rerun guard: inferring k+1 is only right when HEAD
            # moved since the last artifact.  A rerun on the recorded
            # commit would mint a spurious next-PR artifact and poison
            # the cross-PR regression trajectory.
            recorded = recorded_head_commit(ROOT)
            head = current_commit(ROOT)
            if recorded is not None and head is not None and recorded == head:
                k = highest_recorded(ROOT)
                parser.error(
                    f"HEAD ({head[:12]}) is the commit BENCH_PR{k}.json "
                    f"already records; refusing to infer BENCH_PR{k + 1}"
                    f".json for a same-PR rerun. Pass --pr {k} to "
                    "re-record this PR's artifact, or --json/--perf-only "
                    "for a scratch run."
                )
            args.json = next_artifact_name(ROOT)

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    bench_target = (
        "benchmarks/test_perf_hotpaths.py" if args.perf_only else "benchmarks/"
    )
    status = _run(
        [
            sys.executable,
            "-m",
            "pytest",
            bench_target,
            "-q",
            f"--benchmark-json={args.json}",
        ],
        env,
    )
    if status == 0:
        print(f"benchmark results written to {args.json}")
    if status == 0 and not args.skip_regression:
        status = _run(
            [
                sys.executable,
                "benchmarks/check_regression.py",
                "--current",
                args.json,
            ],
            env,
        ) or status
    if not args.skip_tests:
        status = _run(
            [sys.executable, "-m", "pytest", "tests/", "-q"], env
        ) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
