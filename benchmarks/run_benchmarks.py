#!/usr/bin/env python
"""Run the benchmark suite and the tier-1 tests, producing BENCH_*.json.

The repo's perf-trajectory convention records one ``BENCH_PR<k>.json``
(pytest-benchmark format) per PR so regressions are visible across the
stacked sequence.  This driver runs:

1. ``pytest benchmarks/ --benchmark-json=<out>`` — every paper artifact
   benchmark plus the hot-path guards in ``test_perf_hotpaths.py``;
2. the tier-1 suite (``pytest tests/``) — correctness must hold for the
   numbers to mean anything.

Usage::

    python benchmarks/run_benchmarks.py                 # -> BENCH_PR1.json
    python benchmarks/run_benchmarks.py --json OUT.json # custom output
    python benchmarks/run_benchmarks.py --perf-only     # hot paths only
    REPRO_FIG5_DAYS=7 python benchmarks/run_benchmarks.py  # quicker Fig. 5

Exit status is non-zero when either stage fails.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _run(args: list, env: dict) -> int:
    print(f"$ {' '.join(args)}", flush=True)
    return subprocess.call(args, cwd=ROOT, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default="BENCH_PR1.json",
        help="pytest-benchmark JSON output path (default: BENCH_PR1.json)",
    )
    parser.add_argument(
        "--perf-only",
        action="store_true",
        help="run only benchmarks/test_perf_hotpaths.py (quick iteration)",
    )
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="skip the tier-1 test suite stage",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    bench_target = (
        "benchmarks/test_perf_hotpaths.py" if args.perf_only else "benchmarks/"
    )
    status = _run(
        [
            sys.executable,
            "-m",
            "pytest",
            bench_target,
            "-q",
            f"--benchmark-json={args.json}",
        ],
        env,
    )
    if status == 0:
        print(f"benchmark results written to {args.json}")
    if not args.skip_tests:
        status = _run(
            [sys.executable, "-m", "pytest", "tests/", "-q"], env
        ) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
