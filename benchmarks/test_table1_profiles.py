"""E1 — Table I: performance and power profiles of each architecture.

Regenerates the paper's Table I by running the simulated profiling
campaign (Siege concurrency ramp, 30 s runs, best-of-5; wattmeter
transients for On/Off costs) against the modelled testbed, and checks
every cell against the published numbers.
"""

import pytest

from conftest import print_comparison
from repro.core.profiles import TABLE_I
from repro.profiling.harness import ProfilingCampaign
from repro.profiling.hardware import paper_hardware

ATTRS = (
    "max_perf", "idle_power", "max_power",
    "on_time", "on_energy", "off_time", "off_energy",
)


def run_campaign():
    return ProfilingCampaign(seed=0).run(paper_hardware())


@pytest.mark.benchmark(group="table1")
def test_table1_profiling_campaign(benchmark):
    reports = benchmark.pedantic(run_campaign, rounds=3, iterations=1)

    rows = []
    for r in reports:
        ref = TABLE_I[r.profile.name]
        rows.append(
            {
                "architecture": r.profile.name,
                "maxPerf (paper)": ref.max_perf,
                "maxPerf (ours)": round(r.profile.max_perf, 1),
                "idle W (paper)": ref.idle_power,
                "idle W (ours)": round(r.profile.idle_power, 2),
                "max W (paper)": ref.max_power,
                "max W (ours)": round(r.profile.max_power, 2),
                "OnE J (paper)": ref.on_energy,
                "OnE J (ours)": round(r.profile.on_energy, 1),
            }
        )
    print_comparison("Table I: paper vs simulated campaign", rows)

    for r in reports:
        ref = TABLE_I[r.profile.name]
        for attr in ATTRS:
            assert getattr(r.profile, attr) == pytest.approx(
                getattr(ref, attr), rel=0.02, abs=2.0
            ), (r.profile.name, attr)
