#!/usr/bin/env python
"""Quick iteration loop: the ``quick``-marked tier-1 subset (<60 s).

The full tier-1 suite (``pytest tests/ benchmarks/``) takes 3-7 minutes;
this wrapper runs only the tests marked ``quick`` — the scenario-subsystem
smoke tests plus the property suites pinning the bit-identity contracts
(vectorised kernels, replay engines, constraints) — which is the subset
most likely to catch a broken refactor while hacking.  Always finish with
the full suite (or ``benchmarks/run_benchmarks.py``) before recording a
PR.

A fault-injection smoke rides along after the tests: a 3-spec suite with
one transient injected failure must come back fully recovered through
``run_suite``'s retry path (``--no-faults`` skips it).

A sweep smoke follows: the registered ``grid-smoke`` sweep (2x2x2 x 1
day) expands and runs through the spawn pool with shared-memory trace
distribution, then the leak check fails if any ``repro``-prefixed
``/dev/shm`` segment survived the suite (``--no-sweep`` skips it).

Next, a control-plane smoke: a 7-day diurnal trace replayed through all
three engines must be bit-identical, with the later engines served from
the warm predictor-series cache (``--no-control`` skips it).

Last, a serve smoke: the PR 10 streaming daemon tails a temp feed,
gets killed by an injected ``serve-crash`` (exit 17, post-journal
pre-checkpoint), resumes, and must finish with a journal byte-identical
to an uninterrupted run over the same feed (``--no-serve`` skips it).

Usage::

    python benchmarks/run_quick.py              # quick tests + smokes
    python benchmarks/run_quick.py --no-faults  # skip the fault smoke
    python benchmarks/run_quick.py --no-sweep   # skip the sweep smoke
    python benchmarks/run_quick.py --no-serve   # skip the serve smoke
    python benchmarks/run_quick.py --perf       # + hot-path benchmarks
    python benchmarks/run_quick.py -- -k table  # extra pytest args
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: In-process script proving the retry/keep_going recovery path end to
#: end: one transiently poisoned spec out of three must still produce a
#: full set of successful outcomes.
FAULT_SMOKE = """\
from dataclasses import replace
from repro import faults, scenarios

base = scenarios.get("pattern-steady").with_days(1)
specs = [
    replace(base, name=f"smoke-{k}", workload=replace(base.workload, seed=90 + k))
    for k in range(3)
]
plan = faults.FaultPlan(
    faults=(faults.Fault("spec-error", "smoke-1", fail_attempts=1),)
)
with faults.injected(plan):
    out = scenarios.run_suite(
        specs,
        keep_going=True,
        retry=scenarios.RetryPolicy(max_attempts=2, backoff_s=0.0),
    )
failed = [o for o in out if hasattr(o, "error_type")]
assert not failed, f"fault smoke: unrecovered failures {failed}"
assert len(out) == 3
print("fault smoke: 3/3 scenarios recovered (1 transient fault retried)")
"""


#: In-process script proving the PR 8 sweep path end to end: the
#: registered smoke grid expands, fans out over a spawn pool with
#: shared-memory trace distribution, and leaves ``/dev/shm`` clean.
SWEEP_SMOKE = """\
import glob
from repro import scenarios
from repro.workload.trace import SHM_PREFIX, shm_stats

sweep = scenarios.get_sweep("grid-smoke")
specs = sweep.expand()
assert len(specs) == sweep.size == 8
out = scenarios.run_suite(
    specs, jobs=2, start_method="spawn", chunk_size=1
)
assert [o.name for o in out] == [s.name for s in specs]
stats = scenarios.fanout_stats()
assert stats["segments_shared"] >= 1, stats  # the pool path really ran
assert shm_stats()["segments_live"] == 0, shm_stats()
leaked = glob.glob(f"/dev/shm/{SHM_PREFIX}*")
assert not leaked, f"leaked shared-memory segments: {leaked}"
print(
    f"sweep smoke: {len(out)}/8 grid points ran "
    f"({stats['segments_shared']} segments shared, 0 leaked)"
)
"""


#: In-process script proving the PR 9 vectorized control plane end to
#: end: a 7-day diurnal trace replayed through all three engines must be
#: bit-identical, and the repeat runs must hit the warm predictor-series
#: cache instead of re-filtering the trace.
CONTROL_SMOKE = """\
import numpy as np
from repro.core.bml import design
from repro.core.prediction import (
    clear_prediction_cache, prediction_cache_stats,
)
from repro.core.profiles import table_i_profiles
from repro.sim.loop import EventDrivenReplay
from repro.workload import patterns

duration = 7 * 86_400
base = patterns.diurnal(duration, low=0.15, high=1.0, peak_hour=15.0)
week = patterns.weekly(duration, 1.0, 0.9)
values = np.round(patterns.compose(base, [week]) * 3000.0)
trace = patterns.make_trace(values, "week-diurnal-smoke")
infra = design(table_i_profiles())
table = infra.table(float(np.max(trace.values)))

clear_prediction_cache()
results = {
    engine: EventDrivenReplay(table, trace).run(engine=engine)
    for engine in ("reference", "segments", "twophase")
}
ref = results["reference"]
for engine, res in results.items():
    assert np.array_equal(res.power, ref.power), engine
    assert np.array_equal(res.unserved, ref.unserved), engine
    assert res.meta["meter_energy_j"] == ref.meta["meter_energy_j"], engine
    assert len(res.reconfigurations) == len(ref.reconfigurations), engine
stats = prediction_cache_stats()
assert stats["table_cache_hits"] >= 2, stats  # engines 2+3 hit warm cache
phases = results["twophase"].meta["phase_s"]
assert set(phases) >= {"predict", "control", "evaluate", "settle"}, phases
print(
    "control smoke: 3 engines bit-identical over 7 diurnal days "
    f"({len(ref.reconfigurations)} reconfigs, "
    f"{stats['table_cache_hits']} predictor-cache hits, "
    f"twophase control {phases['control']:.2f}s)"
)
"""


#: In-process script proving the PR 10 streaming daemon end to end: a
#: tailed temp feed, a crash injected at the nastiest instant (decision
#: journaled, checkpoint not yet taken), a ``--resume`` generation, and
#: a final journal byte-identical to an uninterrupted run's.
SERVE_SMOKE = """\
import subprocess, sys, tempfile
from pathlib import Path
from repro.serve import ServeConfig, ServeDaemon, append_feed

tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
feed = tmp / "feed.txt"
append_feed(feed, [100.0] * 120 + [900.0] * 60 + [100.0] * 300, end=True)

clean = ServeConfig(feed=feed, state_dir=tmp / "clean", window=60,
                    max_rate=3000.0, poll_s=0.001)
assert ServeDaemon(clean).run() == "done"
clean_bytes = (clean.state_dir / "journal.bin").read_bytes()
assert clean_bytes, "smoke feed must generate decisions"

child = '''
import sys
from pathlib import Path
from repro import faults
from repro.serve import ServeConfig, ServeDaemon
tmp = Path(sys.argv[1])
config = ServeConfig(feed=tmp / "feed.txt", state_dir=tmp / "state",
                     window=60, max_rate=3000.0, poll_s=0.001)
plan = faults.FaultPlan(
    faults=(faults.Fault("serve-crash", "serve", fail_attempts=1),)
)
with faults.injected(plan):
    ServeDaemon(config).run()
sys.exit(99)  # unreachable: the crash fault must fire
'''
proc = subprocess.run([sys.executable, "-c", child, str(tmp)])
assert proc.returncode == 17, f"expected crash exit 17, got {proc.returncode}"

config = ServeConfig(feed=feed, state_dir=tmp / "state", window=60,
                     max_rate=3000.0, poll_s=0.001)
daemon = ServeDaemon(config, resume=True)
assert daemon.generation == 1
assert daemon.run() == "done"
resumed = (config.state_dir / "journal.bin").read_bytes()
assert resumed == clean_bytes, "resume diverged from the clean journal"
print(
    f"serve smoke: crash at gen 0 + resume -> journal byte-identical "
    f"({daemon.journal.count} decisions, {len(resumed)} bytes)"
)
"""


def run_fault_smoke(env) -> int:
    cmd = [sys.executable, "-c", FAULT_SMOKE]
    print("$ fault-injection smoke (transient spec-error + retry)", flush=True)
    return subprocess.call(cmd, cwd=ROOT, env=env)


def run_control_smoke(env) -> int:
    cmd = [sys.executable, "-c", CONTROL_SMOKE]
    print(
        "$ control-plane smoke (7-day diurnal, 3-engine identity + "
        "warm predictor cache)",
        flush=True,
    )
    return subprocess.call(cmd, cwd=ROOT, env=env)


def run_serve_smoke(env) -> int:
    cmd = [sys.executable, "-c", SERVE_SMOKE]
    print(
        "$ serve smoke (tail feed + injected crash + resume, "
        "journal byte-identity)",
        flush=True,
    )
    return subprocess.call(cmd, cwd=ROOT, env=env)


def run_sweep_smoke(env) -> int:
    cmd = [sys.executable, "-c", SWEEP_SMOKE]
    print(
        "$ sweep smoke (grid-smoke over spawn pool + shm leak check)",
        flush=True,
    )
    return subprocess.call(cmd, cwd=ROOT, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--perf",
        action="store_true",
        help="also run the hot-path benchmarks (writes BENCH_PERF_ONLY.json)",
    )
    parser.add_argument(
        "--no-faults",
        action="store_true",
        help="skip the fault-injection smoke",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the sweep + shared-memory leak smoke",
    )
    parser.add_argument(
        "--no-control",
        action="store_true",
        help="skip the 7-day three-engine control-plane smoke",
    )
    parser.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the streaming-daemon crash/resume smoke",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    cmd = [
        sys.executable, "-m", "pytest", "tests/", "-m", "quick", "-q",
        *args.pytest_args,
    ]
    print(f"$ {' '.join(cmd)}", flush=True)
    status = subprocess.call(cmd, cwd=ROOT, env=env)
    if not args.no_faults:
        status = run_fault_smoke(env) or status
    if not args.no_sweep:
        status = run_sweep_smoke(env) or status
    if not args.no_control:
        status = run_control_smoke(env) or status
    if not args.no_serve:
        status = run_serve_smoke(env) or status
    if args.perf:
        from run_benchmarks import main as bench_main

        status = bench_main(["--perf-only", "--skip-tests", "--skip-regression"]) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
