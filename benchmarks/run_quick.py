#!/usr/bin/env python
"""Quick iteration loop: the ``quick``-marked tier-1 subset (<60 s).

The full tier-1 suite (``pytest tests/ benchmarks/``) takes 3-7 minutes;
this wrapper runs only the tests marked ``quick`` — the scenario-subsystem
smoke tests plus the property suites pinning the bit-identity contracts
(vectorised kernels, replay engines, constraints) — which is the subset
most likely to catch a broken refactor while hacking.  Always finish with
the full suite (or ``benchmarks/run_benchmarks.py``) before recording a
PR.

Usage::

    python benchmarks/run_quick.py              # quick tests only
    python benchmarks/run_quick.py --perf       # + hot-path benchmarks
    python benchmarks/run_quick.py -- -k table  # extra pytest args
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--perf",
        action="store_true",
        help="also run the hot-path benchmarks (writes BENCH_PERF_ONLY.json)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )

    cmd = [
        sys.executable, "-m", "pytest", "tests/", "-m", "quick", "-q",
        *args.pytest_args,
    ]
    print(f"$ {' '.join(cmd)}", flush=True)
    status = subprocess.call(cmd, cwd=ROOT, env=env)
    if args.perf:
        from run_benchmarks import main as bench_main

        status = bench_main(["--perf-only", "--skip-tests", "--skip-regression"]) or status
    return status


if __name__ == "__main__":
    raise SystemExit(main())
