"""Scenario-subsystem benchmark: sweep the declarative catalogue.

The registry's non-paper scenarios — constrained nodes, bounded
inventories, power caps, degraded predictors, pattern workloads,
homogeneous baselines and the event-driven engine — all run through the
one execution path (:func:`repro.scenarios.run_suite`), shrunk to one
day each so the sweep stays cheap.  This is the benchmark-level guard
that every registered scenario stays runnable end to end.
"""

import pytest

from conftest import print_comparison
from repro import scenarios
from repro.results import SuiteReport


@pytest.mark.benchmark(group="scenario-suite")
def test_scenario_catalogue_sweep(benchmark):
    # Archive-backed scenarios (wc98) only run where the log files exist;
    # the sweep covers everything materialisable on this machine.
    specs = [
        spec.with_days(1)
        for spec in scenarios.specs()
        if "paper" not in spec.tags and spec.workload.is_available()
    ]
    assert len(specs) >= 10  # the catalogue keeps covering the extension axes

    runs = benchmark.pedantic(
        lambda: scenarios.run_suite(specs), rounds=1, iterations=1
    )
    assert [r.name for r in runs] == [s.name for s in specs]
    for run in runs:
        assert run.result.total_energy > 0, run.name
        assert 0.0 <= run.qos().served_fraction <= 1.0

    # the under-biased predictor must drop demand; the oracle must not
    by_name = {r.name: r for r in runs}
    assert (
        by_name["underestimating-prediction"].qos().unserved_demand
        > by_name["pattern-steady"].qos().unserved_demand
    )

    # the suite aggregates through the unified results layer
    report = SuiteReport.from_runs(runs, baseline="homogeneous-week-global")
    assert report.names == [s.name for s in specs]
    savings = report.savings()
    assert savings["homogeneous-week-global"] == 0.0
    for record, run in zip(report.results, runs):
        assert record.total_energy_j == run.result.total_energy
        assert record.served_fraction == run.qos().served_fraction
    print_comparison("scenario catalogue (1-day workloads)", report.rows())
