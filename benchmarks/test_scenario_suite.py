"""Scenario-subsystem benchmark: sweep the declarative catalogue.

The registry's non-paper scenarios — constrained nodes, bounded
inventories, power caps, degraded predictors, pattern workloads,
homogeneous baselines and the event-driven engine — all run through the
one execution path (:func:`repro.scenarios.run_suite`), shrunk to one
day each so the sweep stays cheap.  This is the benchmark-level guard
that every registered scenario stays runnable end to end.
"""

import pytest

from conftest import print_comparison
from repro import scenarios
from repro.results import SuiteReport


@pytest.mark.benchmark(group="scenario-suite")
def test_scenario_catalogue_sweep(benchmark):
    # Archive-backed scenarios (wc98) only run where the log files exist;
    # the sweep covers everything materialisable on this machine.
    specs = [
        spec.with_days(1)
        for spec in scenarios.specs()
        if "paper" not in spec.tags and spec.workload.is_available()
    ]
    assert len(specs) >= 10  # the catalogue keeps covering the extension axes

    runs = benchmark.pedantic(
        lambda: scenarios.run_suite(specs), rounds=1, iterations=1
    )
    assert [r.name for r in runs] == [s.name for s in specs]
    for run in runs:
        assert run.result.total_energy > 0, run.name
        assert 0.0 <= run.qos().served_fraction <= 1.0

    # the under-biased predictor must drop demand; the oracle must not
    by_name = {r.name: r for r in runs}
    assert (
        by_name["underestimating-prediction"].qos().unserved_demand
        > by_name["pattern-steady"].qos().unserved_demand
    )

    # the suite aggregates through the unified results layer
    report = SuiteReport.from_runs(runs, baseline="homogeneous-week-global")
    assert report.names == [s.name for s in specs]
    savings = report.savings()
    assert savings["homogeneous-week-global"] == 0.0
    for record, run in zip(report.results, runs):
        assert record.total_energy_j == run.result.total_energy
        assert record.served_fraction == run.qos().served_fraction
    print_comparison("scenario catalogue (1-day workloads)", report.rows())


def _fanout_specs():
    """A workload-heavy suite for the fan-out benchmarks.

    Six distinct two-day workloads (seed variants of the paper trace),
    two scheduler variants each: workload construction is a real
    fraction of the suite cost — the thing the chunked scheduler dedupes
    by colocating same-workload scenarios — while the ``fast``-engine
    replays keep each scenario cheap enough for the benchmark to stay in
    seconds.
    """
    from dataclasses import replace

    base = scenarios.get("paper-bml").with_days(2)
    specs = []
    for seed in range(6):
        workload = replace(base.workload, seed=2000 + seed)
        for window in (378, 600):
            specs.append(
                replace(
                    base,
                    name=f"fanout-s{seed}-w{window}",
                    label=None,
                    workload=workload,
                    scheduler=replace(base.scheduler, window=window),
                )
            )
    return specs


def _cold_caches(specs):
    """Cold-start setup (untimed): both fan-out modes build from scratch.

    Also the reason these benchmarks are defined *after* the catalogue
    sweep: they clear and repopulate the process-level trace cache, and
    must not perturb the ambient state earlier benchmarks measure under.
    """
    scenarios.clear_caches()
    return (specs,), {}


@pytest.mark.benchmark(group="perf-suite")
def test_perf_suite_fanout_chunked(benchmark):
    """PR 5 fan-out: workload-chunked pool tasks.

    Scenarios sharing a workload land on one worker, so every trace is
    built exactly once across the pool (the per-spec reference rebuilds
    a workload in every worker its scenarios happen to land on).  The
    chunked/per-spec ratio in the benchmark JSON *is* the measured
    scheduling win over the PR 4 fan-out.
    """
    specs = _fanout_specs()
    runs = benchmark.pedantic(
        lambda s: scenarios.run_suite(s, jobs=2),
        setup=lambda: _cold_caches(specs),
        rounds=2,
        iterations=1,
    )
    assert [r.name for r in runs] == [s.name for s in specs]


@pytest.mark.benchmark(group="perf-suite")
def test_perf_suite_fanout_per_spec(benchmark):
    """The PR 4 fan-out (one pool task per spec), kept as the reference."""
    specs = _fanout_specs()
    runs = benchmark.pedantic(
        lambda s: scenarios.run_suite(s, jobs=2, chunked=False),
        setup=lambda: _cold_caches(specs),
        rounds=2,
        iterations=1,
    )
    assert [r.name for r in runs] == [s.name for s in specs]
