"""E5 — Fig. 4: ideal BML combination power vs Big-only vs BML linear.

The paper's final infrastructure (Raspberry / Chromebook / Paravance with
thresholds 1 / 10 / 529 req/s) evaluated over an increasing performance
rate up to maxPerf_Big, against the Big-only profile and the *BML linear*
reference (idle = Little's, peak = Big's).
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.experiments import run_fig4


@pytest.mark.benchmark(group="fig4")
def test_fig4_combination_curve(benchmark):
    fig = benchmark(run_fig4)

    assert fig.annotations["thresholds"] == {
        "paravance": 529.0, "chromebook": 10.0, "raspberry": 1.0,
    }

    rates, bml = fig.series["BML combination"]
    _, big = fig.series["Big only"]
    _, linear = fig.series["BML linear"]

    # BML never exceeds a Big-only data center over the figure's range
    assert np.all(bml[1:] <= big[1:] + 1e-9)
    # the combination switches to one Big node exactly at the threshold
    i529 = int(np.searchsorted(rates, 529.0))
    assert bml[i529] == pytest.approx(69.9 + (200.5 - 69.9) / 1331 * 529)
    assert bml[i529 - 1] < bml[i529]
    # the curve meets the linear goal at both ends (rate 0 = everything off)
    i1 = int(np.searchsorted(rates, 1.0))
    assert bml[i1] == pytest.approx(float(linear[i1]), abs=0.1)
    assert bml[-1] == pytest.approx(200.5, abs=0.1)

    checkpoints = [1, 9, 10, 33, 100, 300, 528, 529, 800, 1331]
    rows = [
        {
            "rate req/s": r,
            "BML W": round(float(bml[int(np.searchsorted(rates, r))]), 2),
            "Big-only W": round(float(big[int(np.searchsorted(rates, r))]), 2),
            "BML-linear W": round(float(linear[int(np.searchsorted(rates, r))]), 2),
        }
        for r in checkpoints
    ]
    print_comparison(
        "Fig. 4: BML combination vs references "
        "(thresholds 1 / 10 / 529 as published)",
        rows,
    )


@pytest.mark.benchmark(group="fig4")
def test_fig4_energy_proportionality_metrics(benchmark, infra):
    """Quantify Fig. 4's message with the IPR/LDR metrics of Sec. II."""
    from repro.analysis.metrics import proportionality_gap

    rates = np.arange(0.0, 1332.0)

    def gaps():
        bml = infra.power_curve(rates)
        big = np.asarray(infra.big.stack_power(rates))
        big[0] = infra.big.idle_power  # one always-on Big
        return proportionality_gap(bml), proportionality_gap(big)

    bml_gap, big_gap = benchmark(gaps)
    assert bml_gap < 0.7 * big_gap
    print_comparison(
        "Fig. 4 quantified: mean normalised distance to perfect proportionality",
        [
            {"curve": "BML combination", "proportionality gap": round(bml_gap, 4)},
            {"curve": "Big only", "proportionality gap": round(big_gap, 4)},
        ],
    )
