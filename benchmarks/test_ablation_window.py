"""A2 — ablation: look-ahead window size.

The paper fixes the prediction window at 378 s = 2x the longest On
duration.  This ablation sweeps the window and shows the trade-off the
choice encodes: short windows react later (risking capacity shortfalls
during Big boots), long windows over-provision for peaks that are still
far away.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.workload.worldcup import WorldCupSynthesizer

WINDOWS = (1, 60, 189, 378, 756, 1512)


@pytest.fixture(scope="module")
def ablation_trace():
    return WorldCupSynthesizer(n_days=7, seed=77).build()


@pytest.fixture(scope="module")
def sweep(infra, ablation_trace):
    out = {}
    for w in WINDOWS:
        plan = BMLScheduler(infra, predictor=LookAheadMaxPredictor(w)).plan(
            ablation_trace
        )
        out[w] = execute_plan(plan, ablation_trace, f"window={w}")
    return out


@pytest.mark.benchmark(group="ablation-window")
def test_window_sweep(benchmark, infra, ablation_trace, sweep):
    benchmark.pedantic(
        lambda: BMLScheduler(
            infra, predictor=LookAheadMaxPredictor(378)
        ).plan(ablation_trace),
        rounds=1,
        iterations=1,
    )

    total = ablation_trace.total_demand
    rows = []
    for w in WINDOWS:
        res = sweep[w]
        qos = res.qos(ablation_trace)
        rows.append(
            {
                "window s": w,
                "energy kWh": round(res.total_energy_kwh, 2),
                "reconfigs": res.n_reconfigurations,
                "unserved s": qos.violation_seconds,
                "unserved demand %": round(
                    100 * qos.unserved_demand / total, 4
                ),
            }
        )
    print_comparison("A2: look-ahead window sweep (7-day trace)", rows)

    # QoS: windows >= the longest boot keep the served fraction intact;
    # sub-boot windows must show real shortfalls.
    assert sweep[1].qos().unserved_demand > sweep[378].qos().unserved_demand
    assert sweep[378].qos(ablation_trace).served_fraction > 0.9999

    # Longer windows hold capacity longer -> more energy at the top end...
    assert sweep[1512].total_energy >= sweep[378].total_energy
    # ...but very short windows thrash: reconfiguration count explodes and
    # the switching energy can dominate the saved over-provisioning.
    assert sweep[60].n_reconfigurations > sweep[378].n_reconfigurations
    assert sweep[378].n_reconfigurations >= sweep[1512].n_reconfigurations
    assert sweep[60].switch_energy > sweep[378].switch_energy
