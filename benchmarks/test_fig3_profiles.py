"""E4 — Fig. 3: measured power/performance profiles of the five machines.

The figure plots each architecture's linear profile from (0, idlePower)
to (maxPerf, maxPower); the series here are generated from the Step 1
profiles and cross-checked against Table I endpoints.
"""

import numpy as np
import pytest

from conftest import print_comparison
from repro.core.profiles import TABLE_I
from repro.experiments import run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_profile_series(benchmark):
    fig = benchmark(run_fig3)

    assert set(fig.series) == {
        "paravance", "taurus", "graphene", "chromebook", "raspberry",
    }
    for name, (x, y) in fig.series.items():
        ref = TABLE_I[name]
        assert x[0] == 0.0 and x[-1] == pytest.approx(ref.max_perf)
        assert y[0] == pytest.approx(ref.idle_power)
        assert y[-1] == pytest.approx(ref.max_power)
        # linearity: constant slope along the profile
        slopes = np.diff(y) / np.diff(x)
        assert np.allclose(slopes, slopes[0])

    rows = [
        {
            "architecture": name,
            "idle W": fig.annotations[name]["idle_power"],
            "max W": fig.annotations[name]["max_power"],
            "maxPerf req/s": fig.annotations[name]["max_perf"],
            "W per req/s at full load": round(
                fig.annotations[name]["max_power"]
                / fig.annotations[name]["max_perf"],
                4,
            ),
        }
        for name in fig.series
    ]
    print_comparison("Fig. 3: profile endpoints (verbatim Table I)", rows)


@pytest.mark.benchmark(group="fig3")
def test_fig3_proportionality_metrics(benchmark):
    """Sec. II's lens on Table I: IPR (idle-to-peak) and LDR per machine.

    The counter-intuitive reproduction: the *Big* x86 server has the best
    per-machine IPR (0.35) and the Raspberry the worst (0.84) — single-
    machine proportionality is not what BML exploits.  The win comes from
    *absolute* idle Watts (3.1 vs 69.9) at the rates each machine serves.
    """
    from repro.analysis.metrics import ipr, ldr

    def compute():
        out = {}
        for p in (TABLE_I[k] for k in TABLE_I):
            rates = np.linspace(0.0, p.max_perf, 100)
            curve = p.idle_power + p.slope * rates
            out[p.name] = (ipr(curve), ldr(curve))
        return out

    metrics = benchmark(compute)
    rows = [
        {
            "architecture": name,
            "IPR (lower=better)": round(vals[0], 3),
            "LDR": round(vals[1], 4),
            "idle W": TABLE_I[name].idle_power,
        }
        for name, vals in metrics.items()
    ]
    print_comparison("Sec. II metrics on Table I machines", rows)

    # linear model -> LDR is identically 0 for every machine
    assert all(abs(v[1]) < 1e-9 for v in metrics.values())
    # the paper's motivating "idle up to 50% of peak": true for the x86s
    assert metrics["paravance"][0] == pytest.approx(69.9 / 200.5)
    assert metrics["raspberry"][0] > metrics["paravance"][0]
