"""Performance benchmarks for the library's hot paths.

Not a paper artifact — these guard the engineering that makes the 87-day
1 Hz replay practical: the sliding-maximum predictor, combination-table
construction, vectorised power evaluation, the scheduler's jump loop and
the plan executor.  Regressions here turn the Fig. 5 benchmark from
seconds into hours (a naive per-second Python loop over 7.5 M samples).
"""

import numpy as np
import pytest

from repro.core.combination import build_table
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.sim.energy import combination_power
from repro.workload.sliding import lookahead_max
from repro.workload.worldcup import WorldCupSynthesizer


@pytest.fixture(scope="module")
def week_trace():
    return WorldCupSynthesizer(n_days=7, seed=13).build()


@pytest.mark.benchmark(group="perf")
def test_perf_sliding_max_week(benchmark, week_trace):
    """378 s look-ahead maximum over 604 800 samples."""
    out = benchmark(lookahead_max, week_trace.values, 378)
    assert len(out) == len(week_trace)
    assert np.all(out >= week_trace.values)


@pytest.mark.benchmark(group="perf")
def test_perf_table_construction(benchmark, infra):
    """Greedy combination table for rates 0..5000 (the Fig. 5 table)."""
    table = benchmark(
        build_table, infra.ordered, infra.thresholds, 5000.0, 1.0, "greedy"
    )
    assert table.max_rate == 5000.0


@pytest.mark.benchmark(group="perf")
def test_perf_power_evaluation(benchmark, infra, week_trace):
    """Vectorised power of one combination over a week of loads."""
    combo = infra.combination_for(4000.0)
    loads = np.minimum(week_trace.values, combo.capacity)
    out = benchmark(combination_power, combo, loads)
    assert out.shape == loads.shape


@pytest.mark.benchmark(group="perf")
def test_perf_scheduler_week(benchmark, infra, week_trace):
    """Full decision loop over a 604 800-sample trace."""
    plan = benchmark.pedantic(
        lambda: BMLScheduler(infra).plan(week_trace), rounds=2, iterations=1
    )
    assert plan.horizon == len(week_trace)


@pytest.mark.benchmark(group="perf")
def test_perf_plan_execution(benchmark, infra, week_trace):
    """Energy/QoS integration of a planned week."""
    plan = BMLScheduler(infra).plan(week_trace)
    result = benchmark(execute_plan, plan, week_trace)
    assert result.total_energy > 0


@pytest.mark.benchmark(group="perf")
def test_perf_predictor_series(benchmark, week_trace):
    """Predictor front-end (validation + array plumbing) over a week."""
    pred = LookAheadMaxPredictor(378)
    out = benchmark(pred.series, week_trace)
    assert len(out) == len(week_trace)
