"""Performance benchmarks for the library's hot paths.

Not a paper artifact — these guard the engineering that makes the 87-day
1 Hz replay practical: the sliding-maximum predictor, combination-table
construction, vectorised power evaluation, the scheduler's jump loop and
the plan executor.  Regressions here turn the Fig. 5 benchmark from
seconds into hours (a naive per-second Python loop over 7.5 M samples).
"""

import numpy as np
import pytest

from repro.core.bml import design
from repro.core.combination import (
    CombinationTable,
    _greedy_combos_reference,
    build_table,
)
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.profiles import table_i_profiles
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.sim.energy import combination_power
from repro.sim.loop import EventDrivenReplay
from repro.workload.sliding import lookahead_max, trailing_max
from repro.workload.wc98format import read_trace, write_records
from repro.workload.worldcup import WorldCupSynthesizer


@pytest.fixture(scope="module")
def week_trace():
    return WorldCupSynthesizer(n_days=7, seed=13).build()


@pytest.fixture(scope="module")
def day_trace():
    """One day at 1 Hz — the event-driven replay benchmark scale."""
    return WorldCupSynthesizer(n_days=1, seed=321, peak_rate=3000).build()


@pytest.fixture(scope="module")
def wc98_slice(tmp_path_factory):
    """A 1.5 h archive-format slice, round-tripped through the WC98 reader.

    Synthetic request counts are expanded to per-request timestamps and
    written in the archive's 20-byte binary format, then aggregated back —
    the exact pipeline a real WC98 day would follow.
    """
    full = WorldCupSynthesizer(n_days=1, seed=98, peak_rate=2500).build()
    counts = full.values[12 * 3600 : 12 * 3600 + 5400].astype(np.int64)
    timestamps = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    path = tmp_path_factory.mktemp("wc98") / "wc_day66_1.bin"
    write_records(path, timestamps)
    return read_trace(path, name="wc98-slice")


def _bench_replay(benchmark, infra, trace, engine, rounds):
    pred = LookAheadMaxPredictor(378)
    table = infra.table(float(np.max(trace.values)))

    def setup():
        return (EventDrivenReplay(table, trace, predictor=pred),), {}

    result = benchmark.pedantic(
        lambda replay: replay.run(engine=engine), setup=setup, rounds=rounds
    )
    assert result.meta["engine"] == engine
    assert result.total_energy > 0
    return result


@pytest.mark.benchmark(group="perf")
def test_perf_sliding_max_week(benchmark, week_trace):
    """378 s look-ahead maximum over 604 800 samples."""
    out = benchmark(lookahead_max, week_trace.values, 378)
    assert len(out) == len(week_trace)
    assert np.all(out >= week_trace.values)


@pytest.mark.benchmark(group="perf")
def test_perf_table_construction(benchmark, infra):
    """Greedy combination table for rates 0..5000 (the Fig. 5 table)."""
    table = benchmark(
        build_table, infra.ordered, infra.thresholds, 5000.0, 1.0, "greedy"
    )
    assert table.max_rate == 5000.0


@pytest.mark.benchmark(group="perf")
def test_perf_table_construction_reference(benchmark, infra):
    """The seed's per-rate construction, kept for before/after comparison.

    One greedy_combination call per grid rate plus per-combo scalar power
    evaluation — the path build_table replaced with the run-length numpy
    kernels.  The vectorized/reference ratio in the benchmark JSON *is*
    the speedup measurement.
    """

    def seed_style_build():
        combos = _greedy_combos_reference(
            infra.ordered, infra.thresholds, 5000, 1.0
        )
        power = np.array([c.power(i * 1.0) for i, c in enumerate(combos)])
        return combos, power

    combos, power = benchmark(seed_style_build)
    fast = build_table(infra.ordered, infra.thresholds, 5000.0, 1.0, "greedy")
    assert np.array_equal(fast.power_array, power)  # bit-identical tables


@pytest.mark.benchmark(group="perf")
def test_perf_table_construction_50k(benchmark, infra):
    """Greedy table for rates 0..50 000 — the scale headroom case."""
    table = benchmark(
        build_table, infra.ordered, infra.thresholds, 50_000.0, 1.0, "greedy"
    )
    assert table.max_rate == 50_000.0


@pytest.mark.benchmark(group="perf")
def test_perf_ideal_table_construction(benchmark, infra):
    """Exact-DP table (numpy cover kernel + Gil-Werman sliding minimum)."""
    table = benchmark(
        build_table, infra.ordered, infra.thresholds, 5000.0, 1.0, "ideal"
    )
    assert table.max_rate == 5000.0


@pytest.mark.benchmark(group="perf")
def test_perf_repeated_plan_cached(benchmark, week_trace):
    """The ablation pattern: many plan() calls on one infrastructure.

    After the first call the combination table comes from the
    infrastructure-level cache, so the loop measures pure decision-loop
    cost (the seed rebuilt the table on every call).
    """
    infra = design(table_i_profiles())
    sched = BMLScheduler(infra)
    sched.plan(week_trace)  # warm the table cache

    def replan():
        return sched.plan(week_trace)

    plan = benchmark.pedantic(replan, rounds=3, iterations=1)
    assert plan.horizon == len(week_trace)
    assert infra.table_cache_misses == 1


@pytest.mark.benchmark(group="perf")
def test_perf_trailing_max_week(benchmark, week_trace):
    """Backward-looking sliding maximum over 604 800 samples."""
    out = benchmark(trailing_max, week_trace.values, 378)
    assert len(out) == len(week_trace)
    assert np.all(out >= week_trace.values)


@pytest.mark.benchmark(group="perf")
def test_perf_power_evaluation(benchmark, infra, week_trace):
    """Vectorised power of one combination over a week of loads."""
    combo = infra.combination_for(4000.0)
    loads = np.minimum(week_trace.values, combo.capacity)
    out = benchmark(combination_power, combo, loads)
    assert out.shape == loads.shape


@pytest.mark.benchmark(group="perf")
def test_perf_scheduler_week(benchmark, infra, week_trace):
    """Full decision loop over a 604 800-sample trace."""
    plan = benchmark.pedantic(
        lambda: BMLScheduler(infra).plan(week_trace), rounds=2, iterations=1
    )
    assert plan.horizon == len(week_trace)


@pytest.mark.benchmark(group="perf")
def test_perf_plan_execution(benchmark, infra, week_trace):
    """Energy/QoS integration of a planned week."""
    plan = BMLScheduler(infra).plan(week_trace)
    result = benchmark(execute_plan, plan, week_trace)
    assert result.total_energy > 0


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_reference_day(benchmark, infra, day_trace):
    """Per-second FSM reference over one day (86 400 s).

    The O(seconds x machines) loop the segment engine replaced; the
    reference/segments ratio in the benchmark JSON *is* the measured
    speedup (PR 2's acceptance asks for >= 20x).
    """
    _bench_replay(benchmark, infra, day_trace, "reference", rounds=2)


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_segments_day(benchmark, infra, day_trace):
    """Segment-compressed engine over the same day-long trace.

    More rounds than the reference pair: sub-100 ms measurements on a
    shared box need a deeper min to be comparable across PR artifacts.
    """
    result = _bench_replay(benchmark, infra, day_trace, "segments", rounds=5)
    assert result.n_segments < len(day_trace) / 20


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_twophase_day(benchmark, infra, day_trace):
    """Two-phase control/evaluate engine over the same day-long trace.

    The PR 6 engine: one kernel invocation per serving set over the
    whole run, journaled meter settling.  Compare against
    ``segments_day`` for the batching win and ``reference_day`` for the
    total speedup.
    """
    result = _bench_replay(benchmark, infra, day_trace, "twophase", rounds=5)
    assert result.meta["batches"] <= result.meta["serving_sets"]


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_reference_wc98(benchmark, infra, wc98_slice):
    """Per-second reference on a WC98 archive-format slice (1.5 h)."""
    _bench_replay(benchmark, infra, wc98_slice, "reference", rounds=4)


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_segments_wc98(benchmark, infra, wc98_slice):
    """Segment engine on the same WC98 slice."""
    _bench_replay(benchmark, infra, wc98_slice, "segments", rounds=6)


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_twophase_wc98(benchmark, infra, wc98_slice):
    """Two-phase engine on the same WC98 slice."""
    _bench_replay(benchmark, infra, wc98_slice, "twophase", rounds=6)


@pytest.fixture(scope="module")
def year_trace():
    """365 days of integer-valued diurnal load — the year-scale target.

    Integer rates (requests per second) recur massively across a year of
    smooth diurnal cycles, so serving-set groups compress to their
    unique values — the workload shape the two-phase engine's run-level
    batching is built for (the ROADMAP's months-of-traffic north star).
    """
    from repro.workload import patterns
    from repro.workload.trace import SECONDS_PER_DAY

    duration = 365 * SECONDS_PER_DAY
    base = patterns.diurnal(duration, low=0.15, high=1.0, peak_hour=15.0)
    week = patterns.weekly(duration, 1.0, 0.9)
    values = np.round(patterns.compose(base, [week]) * 3000.0)
    return patterns.make_trace(values, "year-diurnal-synthetic")


@pytest.mark.benchmark(group="perf-replay")
def test_perf_event_replay_twophase_year(benchmark, infra, year_trace):
    """Year-scale replay (31.5 M seconds) on the two-phase engine.

    The PR 6 headline: a 365-day replay as a seconds-scale operation.
    One round — the run is long enough that a single measurement is
    stable, and the reference engine at this scale would take hours.
    """
    result = _bench_replay(benchmark, infra, year_trace, "twophase", rounds=1)
    assert len(result.power) == len(year_trace)


@pytest.fixture(scope="module")
def diurnal_day_trace():
    """One diurnal day at 1 Hz with integer rates (control-pass shape)."""
    from repro.workload import patterns
    from repro.workload.trace import SECONDS_PER_DAY

    base = patterns.diurnal(
        SECONDS_PER_DAY, low=0.15, high=1.0, peak_hour=15.0
    )
    values = np.round(base * 3000.0)
    return patterns.make_trace(values, "diurnal-day-synthetic")


@pytest.mark.benchmark(group="perf-control")
def test_perf_control_pass_day(benchmark, infra, diurnal_day_trace):
    """Control pass alone: decision scan, FSM walk, descriptor emission.

    PR 9's vectorized control plane isolated from evaluate/settle — the
    journal is left open and no kernel evaluation runs, so this tracks
    exactly the walk the two-phase engine's control phase pays.  The
    prediction-series cache is process-wide, so rounds after the first
    measure the walk, not the sliding-maximum filter.
    """
    pred = LookAheadMaxPredictor(378)
    table = infra.table(float(np.max(diurnal_day_trace.values)))

    def setup():
        return (
            (EventDrivenReplay(table, diurnal_day_trace, predictor=pred),),
            {},
        )

    plan = benchmark.pedantic(
        lambda replay: replay._control_pass(), setup=setup, rounds=5
    )
    assert plan.horizon == len(diurnal_day_trace)
    assert plan.descs


@pytest.mark.benchmark(group="perf-control")
def test_perf_decision_scan_day(benchmark, infra, diurnal_day_trace):
    """The batched reconfiguration bookkeeping: ids, change points and
    the precomputed schedule — the pure-numpy front half of the control
    pass, with no FSM or event queue in the loop."""
    pred_obj = LookAheadMaxPredictor(378)
    table = infra.table(float(np.max(diurnal_day_trace.values)))
    replay = EventDrivenReplay(table, diurnal_day_trace, predictor=pred_obj)
    pred = replay._prediction_series(diurnal_day_trace)
    initial = table.combination_for(float(pred[0]))

    def scan():
        cid, changes, grid_idx = replay._decision_ids(pred)
        return replay._reconfig_schedule(
            pred, cid, changes, grid_idx, initial
        )

    sched = benchmark(scan)
    assert sched


@pytest.mark.benchmark(group="perf")
def test_perf_predictor_series(benchmark, week_trace):
    """Predictor front-end (validation + array plumbing) over a week."""
    pred = LookAheadMaxPredictor(378)
    out = benchmark(pred.series, week_trace)
    assert len(out) == len(week_trace)
