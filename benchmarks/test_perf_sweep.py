"""Fleet-scale sweep benchmark: shared-memory vs by-value fan-out (PR 8).

The PR 8 acceptance scenario: a 256-point parametric sweep — four
archive-format WC98 day files crossed with 64 scheduler windows — run on
a spawn pool.  The shared-memory dispatcher builds each workload's trace
once in the parent and publishes it as a ``/dev/shm`` segment that every
worker attaches zero-copy; the legacy by-value path leaves each worker
to rebuild whatever workloads its chunks happen to touch (up to
``jobs × workloads`` archive parses).  The shm/legacy ratio in the
benchmark JSON is the measured win, and the legacy benchmark *asserts*
the acceptance floor: shared memory must be at least 1.5x faster.

The archive fixture synthesises one WC98 day, writes it in the
original 20-byte binary record format (gzipped, ~4M requests) and
copies it to four paths — four distinct workloads with identical,
deliberately non-trivial parse cost (~0.7 s each).
"""

import glob as globmod

import numpy as np
import pytest

from repro import scenarios
from repro.scenarios import SweepSpec, fanout_stats
from repro.workload.trace import SHM_PREFIX, shm_stats
from repro.workload.wc98format import write_records
from repro.workload.worldcup import WorldCupSynthesizer

JOBS = 4
CHUNK_SIZE = 8
ROUNDS = 2
WORKLOADS = 4
WINDOWS = tuple(120 + 30 * k for k in range(64))

#: Wall-clock per mode, filled by the benchmarks in definition order so
#: the legacy run can assert the acceptance ratio against the shm run.
_WALL = {}


@pytest.fixture(scope="module")
def sweep_specs(tmp_path_factory):
    """The 256-point grid over four archive-backed day workloads."""
    root = tmp_path_factory.mktemp("wc98-sweep")
    day = WorldCupSynthesizer(n_days=1, seed=98, peak_rate=150).build()
    counts = day.values.astype(np.int64)
    timestamps = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    first = root / "day0.log.gz"
    write_records(first, timestamps)
    paths = [first]
    for i in range(1, WORKLOADS):
        copy = root / f"day{i}.log.gz"
        copy.write_bytes(first.read_bytes())
        paths.append(copy)

    sweep = SweepSpec(
        name="bench-fleet",
        base="wc98-archive-bml",
        description="4 WC98 archive days x 64 scheduler windows",
        axes=(
            ("path", tuple(str(p) for p in paths)),
            ("days", (1,)),
            ("window", WINDOWS),
        ),
    )
    specs = sweep.expand()
    assert len(specs) == WORKLOADS * len(WINDOWS) == 256
    return specs


def _cold_caches(specs):
    """Cold-start setup (untimed): every round re-parses the archives."""
    scenarios.clear_caches()
    return (specs,), {}


def _timed_suite(specs, mode, **kwargs):
    import time

    t0 = time.perf_counter()
    runs = scenarios.run_suite(
        specs,
        jobs=JOBS,
        start_method="spawn",
        chunk_size=CHUNK_SIZE,
        **kwargs,
    )
    _WALL.setdefault(mode, []).append(time.perf_counter() - t0)
    return runs


@pytest.mark.benchmark(group="perf-sweep")
def test_perf_sweep_shared_memory(benchmark, sweep_specs):
    """PR 8 fan-out: one parent build per workload, segments for all.

    Telemetry must show each workload's trace arrays travelling at most
    once per host: zero worker-side rebuilds, exactly one segment per
    workload per round, and no segment surviving the suite.
    """
    before = fanout_stats()
    runs = benchmark.pedantic(
        lambda s: _timed_suite(s, "shm"),
        setup=lambda: _cold_caches(sweep_specs),
        rounds=ROUNDS,
        iterations=1,
    )
    stats = {k: v - before[k] for k, v in fanout_stats().items()}
    assert [r.name for r in runs] == [s.name for s in sweep_specs]
    assert stats["worker_trace_builds"] == 0
    assert stats["trace_builds"] == WORKLOADS * ROUNDS
    assert stats["segments_shared"] == WORKLOADS * ROUNDS
    assert stats["bytes_pickle_avoided"] > 0
    assert shm_stats()["segments_live"] == 0
    assert not globmod.glob(f"/dev/shm/{SHM_PREFIX}*")


@pytest.mark.benchmark(group="perf-sweep")
def test_perf_sweep_by_value(benchmark, sweep_specs):
    """The pre-PR 8 shipping path, kept as the reference — and the
    acceptance gate: shared memory must beat it by >= 1.5x."""
    runs = benchmark.pedantic(
        lambda s: _timed_suite(s, "legacy", share_memory=False),
        setup=lambda: _cold_caches(sweep_specs),
        rounds=ROUNDS,
        iterations=1,
    )
    assert [r.name for r in runs] == [s.name for s in sweep_specs]
    if "shm" in _WALL:  # skipped only if the shm benchmark was deselected
        shm = min(_WALL["shm"])
        legacy = min(_WALL["legacy"])
        ratio = legacy / shm
        print(f"\nperf-sweep: shm {shm:.2f}s vs by-value {legacy:.2f}s "
              f"({ratio:.2f}x)")
        assert ratio >= 1.5, (
            f"shared-memory sweep only {ratio:.2f}x faster than the "
            f"by-value path (acceptance floor: 1.5x)"
        )
