"""E6 — Fig. 5: energy comparison with lower and upper bounds.

The headline experiment: replay the (synthetic) World Cup trace, days
6-92, against the four scenarios:

* UpperBound Global — 4 Big machines always on;
* UpperBound PerDay — Bigs re-dimensioned each day;
* Big-Medium-Little — the pro-active BML scheduler (378 s look-ahead);
* LowerBound Theoretical — per-second ideal combination, free switching.

The paper reports BML at +32 % average energy over the lower bound
(min 6.8 %, max 161.4 %) and far below both upper bounds.  The synthetic
trace is calibrated to the same *shape*: expected ordering, BML within a
tens-of-percent band over the bound with a wide per-day spread, and QoS
essentially intact.  Absolute Joules differ from the paper's testbed.
"""

import numpy as np
import pytest

from conftest import fig5_days, print_comparison
from repro import scenarios
from repro.core.scheduler import BMLScheduler
from repro.experiments import run_fig5


@pytest.fixture(scope="module")
def outcome(infra, worldcup_trace):
    # run_fig5 is a thin wrapper over the scenario registry: the four
    # Fig. 5 scenarios are the registry's paper-* specs run through
    # repro.scenarios.runner with this trace/infra shared.
    return run_fig5(trace=worldcup_trace, infra=infra)


@pytest.mark.benchmark(group="fig5")
def test_fig5_scheduler_planning(benchmark, infra, worldcup_trace):
    """Benchmark the scheduler's full-trace planning (the paper's policy)."""
    plan = benchmark.pedantic(
        lambda: BMLScheduler(infra).plan(worldcup_trace), rounds=1, iterations=1
    )
    assert plan.horizon == len(worldcup_trace)
    assert plan.n_reconfigurations > 0


@pytest.mark.benchmark(group="fig5")
def test_fig5_registry_scenario_matches_outcome(benchmark, infra, worldcup_trace, outcome):
    """The registry's paper-bml scenario is the same computation run_fig5
    reports — bit-identical power/unserved series through the one
    execution path."""
    run = benchmark.pedantic(
        lambda: scenarios.run_scenario(
            scenarios.get("paper-bml"), trace=worldcup_trace, infra=infra
        ),
        rounds=1,
        iterations=1,
    )
    assert run.result.scenario == "Big-Medium-Little"
    assert np.array_equal(run.result.power, outcome.bml.power)
    assert np.array_equal(run.result.unserved, outcome.bml.unserved)
    assert run.result.n_reconfigurations == outcome.bml.n_reconfigurations

    # the distilled records agree between the two producers bit-for-bit
    record = run.to_record()
    outcome_record = next(
        r for r in outcome.records() if r.name == "paper-bml"
    )
    assert record.metrics() == outcome_record.metrics()
    assert record.per_day_energy_j == outcome_record.per_day_energy_j


@pytest.mark.benchmark(group="fig5")
def test_fig5_scenario_comparison(benchmark, outcome):
    benchmark.pedantic(lambda: outcome.figure(), rounds=1, iterations=1)

    ubg, ubd = outcome.upper_global, outcome.upper_per_day
    bml, lb = outcome.bml, outcome.lower_bound

    # --- ordering: who wins (paper's Fig. 5 shape) ---
    assert ubg.total_energy > ubd.total_energy > bml.total_energy
    assert bml.total_energy > lb.total_energy

    # --- rough factors ---
    assert ubg.total_energy > 3.0 * bml.total_energy  # static costs dominate
    assert ubd.total_energy > 1.3 * bml.total_energy

    # --- headline statistic: BML vs theoretical lower bound ---
    ov = outcome.overhead
    assert 0.10 <= ov.mean <= 0.60       # paper: 0.32
    assert ov.minimum <= 0.15            # paper: 0.068
    assert ov.maximum >= 0.50            # paper: 1.614
    assert np.all(ov.per_day > 0)        # the bound is never beaten

    # --- QoS: served fraction stays essentially 1 ---
    qos = bml.qos(outcome.trace)
    assert qos.served_fraction > 0.9999

    # --- suite-level aggregation through the unified results layer ---
    report = outcome.report()  # baseline: the over-provisioned data center
    savings = report.savings()
    assert savings["paper-upper-global"] == 0.0
    assert savings["paper-bml"] > 0.6  # ubg > 3x bml implies >2/3 saved
    stats = report.overhead("paper-bml", "paper-lower-bound")
    assert stats.mean == ov.mean and stats.maximum == ov.maximum

    rows = outcome.summary_rows()
    print_comparison(
        f"Fig. 5 scenarios over {fig5_days()} days (synthetic WC98 trace)", rows
    )
    print_comparison(
        "BML vs LowerBound per-day overhead",
        [
            {
                "statistic": "average",
                "paper": "32%",
                "ours": f"{100 * ov.mean:.1f}%",
            },
            {
                "statistic": "minimum",
                "paper": "6.8%",
                "ours": f"{100 * ov.minimum:.1f}%",
            },
            {
                "statistic": "maximum",
                "paper": "161.4%",
                "ours": f"{100 * ov.maximum:.1f}%",
            },
        ],
    )


@pytest.mark.benchmark(group="fig5")
def test_fig5_per_day_series(benchmark, outcome):
    """The actual Fig. 5 data: per-day energy for all four scenarios."""
    fig = benchmark.pedantic(outcome.figure, rounds=1, iterations=1)
    days, ubg_daily = fig.series["UpperBound Global"]
    _, lb_daily = fig.series["LowerBound Theoretical"]
    _, bml_daily = fig.series["Big-Medium-Little"]

    # UpperBound Global is flat (constant 4 Bigs) apart from load-dependent
    # dynamic power; every day it dominates every other scenario.
    assert np.all(ubg_daily >= bml_daily)
    assert np.all(bml_daily >= lb_daily)

    step = max(1, len(days) // 15)
    rows = [
        {
            "day": int(d),
            "UB Global kWh": round(float(fig.series["UpperBound Global"][1][i]), 2),
            "UB PerDay kWh": round(float(fig.series["UpperBound PerDay"][1][i]), 2),
            "BML kWh": round(float(bml_daily[i]), 2),
            "LowerBound kWh": round(float(lb_daily[i]), 2),
        }
        for i, d in enumerate(days)
        if i % step == 0
    ]
    print_comparison("Fig. 5 per-day energy (sampled rows)", rows)
