"""Workload substrate: load traces, synthetic generators, sliding maxima.

The paper's scheduler consumes nothing but a per-second series of the
application performance metric.  This package provides the
:class:`~repro.workload.trace.LoadTrace` container, composable synthetic
patterns (:mod:`~repro.workload.patterns`), the World-Cup-98-shaped
generator used for the Fig. 5 reproduction
(:mod:`~repro.workload.worldcup`), and the sliding-window maxima the
look-ahead predictor is built on (:mod:`~repro.workload.sliding`).
"""

from .sliding import lookahead_max, lookahead_max_reference, trailing_max
from .trace import SECONDS_PER_DAY, LoadTrace, TraceError, TraceIngestError
from .wc98format import read_records, read_trace, records_to_trace, write_records
from .worldcup import PAPER_DAYS, MatchEvent, WorldCupSynthesizer, synthesize

__all__ = [
    "LoadTrace",
    "TraceError",
    "TraceIngestError",
    "SECONDS_PER_DAY",
    "lookahead_max",
    "lookahead_max_reference",
    "trailing_max",
    "WorldCupSynthesizer",
    "MatchEvent",
    "synthesize",
    "PAPER_DAYS",
    "read_records",
    "read_trace",
    "records_to_trace",
    "write_records",
]
