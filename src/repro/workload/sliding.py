"""Sliding-window maxima for look-ahead load prediction.

The paper emulates its load prediction mechanism by taking, at each time
step, the **maximum load value over a look-ahead window** of 378 s (twice
the longest switch-on duration).  Computing that for multi-million-second
traces is the hot path of the proactive scheduler, so the default
implementation delegates to :func:`scipy.ndimage.maximum_filter1d`
(O(n) in C); a pure-Python monotonic-deque implementation is kept as the
reference for property tests.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

try:  # scipy is an optional accelerator; numpy fallback below.
    from scipy.ndimage import maximum_filter1d as _maxfilter
except Exception:  # pragma: no cover - scipy is present in the test env
    _maxfilter = None

__all__ = [
    "lookahead_max",
    "lookahead_max_reference",
    "trailing_max",
]


def _validate(values: np.ndarray, window: int) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D series, got shape {arr.shape}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return arr


def lookahead_max(values: Sequence[float], window: int) -> np.ndarray:
    """``out[t] = max(values[t : t + window])`` for every ``t``.

    Near the end of the series the window truncates to the remaining
    samples (the scheduler keeps serving the real tail of the trace).
    """
    arr = _validate(np.asarray(values), window)
    n = len(arr)
    if n == 0:
        return arr.copy()
    w = min(window, n)
    if _maxfilter is not None:
        # Shift the filter window right with origin = -(w // 2) so it
        # covers [t, t + w - 1] (verified for even and odd sizes).
        # ``mode="nearest"`` repeats the final sample past the end, and a
        # truncated tail window always contains that final sample — so
        # its max is exactly the truncated max, with no padded copy of
        # the input and an owndata result (cache-friendly upstream).
        return _maxfilter(arr, size=w, mode="nearest", origin=-(w // 2))
    return lookahead_max_reference(arr, w)


def lookahead_max_reference(values: Sequence[float], window: int) -> np.ndarray:
    """Monotonic-deque reference implementation (O(n), pure Python)."""
    arr = _validate(np.asarray(values), window)
    n = len(arr)
    out = np.empty(n)
    dq: deque = deque()  # indices, values decreasing
    # Sweep right-to-left: window [t, t+window-1].
    for t in range(n - 1, -1, -1):
        while dq and arr[dq[-1]] <= arr[t]:
            dq.pop()
        dq.append(t)
        while dq and dq[0] > t + window - 1:
            dq.popleft()
        out[t] = arr[dq[0]]
    return out


def trailing_max(values: Sequence[float], window: int) -> np.ndarray:
    """``out[t] = max(values[max(0, t - window + 1) : t + 1])``.

    The backward-looking counterpart, useful for reactive policies that
    hold capacity for recently seen peaks.  Delegates to scipy's O(n) C
    filter like :func:`lookahead_max`; the deque is only the fallback.
    """
    arr = _validate(np.asarray(values), window)
    n = len(arr)
    if n == 0:
        return arr.copy()
    w = min(window, n)
    if _maxfilter is not None:
        # Shift the filter window left so it covers [t - w + 1, t]; the
        # -inf boundary fill truncates the leading windows exactly.
        return _maxfilter(
            arr, size=w, mode="constant", cval=-np.inf, origin=(w - 1) // 2
        )
    return lookahead_max_reference(arr[::-1], w)[::-1].copy()
