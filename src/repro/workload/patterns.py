"""Composable synthetic load patterns.

Building blocks for workloads "with variable load over time" (Sec. III):
diurnal and weekly periodicity, linear/exponential trends, flash crowds,
and multiplicative noise.  Every generator returns a plain numpy array of
per-second rates so patterns compose by multiplication/addition before
being wrapped in a :class:`repro.workload.trace.LoadTrace`.

All stochastic generators take an explicit ``rng`` so traces are exactly
reproducible (benchmarks fix seeds).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .trace import SECONDS_PER_DAY, LoadTrace

__all__ = [
    "constant",
    "diurnal",
    "weekly",
    "linear_trend",
    "flash_crowd",
    "add_flash_crowd",
    "bursts",
    "micro_bursts",
    "multiplicative_noise",
    "heteroskedastic_noise",
    "ar1_noise",
    "compose",
    "make_trace",
]


def _check_duration(duration_s: int) -> int:
    duration_s = int(duration_s)
    if duration_s <= 0:
        raise ValueError("duration must be > 0 seconds")
    return duration_s


def constant(duration_s: int, level: float) -> np.ndarray:
    """A flat load of ``level`` for ``duration_s`` seconds."""
    if level < 0:
        raise ValueError("level must be >= 0")
    return np.full(_check_duration(duration_s), float(level))


def diurnal(
    duration_s: int,
    low: float,
    high: float,
    peak_hour: float = 15.0,
    sharpness: float = 1.0,
) -> np.ndarray:
    """Day/night oscillation between ``low`` and ``high``.

    A raised cosine peaking at ``peak_hour`` (local time); ``sharpness > 1``
    narrows the daily peak (evening-traffic shape), ``< 1`` flattens it.
    """
    duration_s = _check_duration(duration_s)
    if not 0 <= low <= high:
        raise ValueError("need 0 <= low <= high")
    t = np.arange(duration_s, dtype=float)
    phase = 2 * math.pi * ((t / SECONDS_PER_DAY) - peak_hour / 24.0)
    base = 0.5 * (1 + np.cos(phase))  # 1 at peak_hour, 0 at peak_hour + 12h
    if sharpness != 1.0:
        if sharpness <= 0:
            raise ValueError("sharpness must be > 0")
        base = base**sharpness
    return low + (high - low) * base


def weekly(
    duration_s: int,
    weekday_level: float = 1.0,
    weekend_level: float = 0.7,
    start_weekday: int = 0,
) -> np.ndarray:
    """Weekday/weekend multiplicative modulation (smooth at midnight).

    Returns one multiplier per second; Saturday and Sunday get
    ``weekend_level``, other days ``weekday_level``.
    """
    duration_s = _check_duration(duration_s)
    days = np.arange(duration_s) // SECONDS_PER_DAY + start_weekday
    is_weekend = (days % 7) >= 5
    return np.where(is_weekend, weekend_level, weekday_level).astype(float)


def linear_trend(duration_s: int, start: float = 1.0, end: float = 1.0) -> np.ndarray:
    """Linear multiplier from ``start`` to ``end`` (tournament build-up)."""
    duration_s = _check_duration(duration_s)
    return np.linspace(start, end, duration_s)


def flash_crowd(
    duration_s: int,
    at_s: float,
    ramp_s: float,
    hold_s: float,
    decay_s: float,
    amplitude: float,
) -> np.ndarray:
    """One flash-crowd bump: linear ramp, plateau, exponential decay.

    Returns an *additive* series that is 0 outside the event.  The paper's
    World Cup trace exhibits exactly these surges around matches.
    """
    duration_s = _check_duration(duration_s)
    if min(ramp_s, hold_s, decay_s) < 0 or amplitude < 0:
        raise ValueError("ramp/hold/decay/amplitude must be >= 0")
    out = np.zeros(duration_s)
    add_flash_crowd(out, at_s, ramp_s, hold_s, decay_s, amplitude)
    return out


def add_flash_crowd(
    out: np.ndarray,
    at_s: float,
    ramp_s: float,
    hold_s: float,
    decay_s: float,
    amplitude: float,
) -> None:
    """Add one flash crowd to ``out`` in place, touching only its window.

    Equivalent to ``out += flash_crowd(...)`` but O(event length) instead
    of O(trace length), which matters when synthesising months of load
    with dozens of events.
    """
    duration_s = len(out)
    ramp_end = at_s + ramp_s
    hold_end = ramp_end + hold_s
    # Truncate the exponential tail where it drops below 0.1 % of peak.
    tail = hold_end + (decay_s * math.log(1000.0) if decay_s > 0 else 0.0)
    lo = max(int(math.floor(at_s)), 0)
    hi = min(int(math.ceil(tail)) + 1, duration_s)
    if lo >= hi:
        return
    t = np.arange(lo, hi, dtype=float)
    seg = np.zeros(hi - lo)
    if ramp_s > 0:
        m = (t >= at_s) & (t < ramp_end)
        seg[m] = amplitude * (t[m] - at_s) / ramp_s
    m = (t >= ramp_end) & (t < hold_end)
    seg[m] = amplitude
    if decay_s > 0:
        m = t >= hold_end
        seg[m] = amplitude * np.exp(-(t[m] - hold_end) / decay_s)
    out[lo:hi] += seg


def bursts(
    duration_s: int,
    events: Sequence[Tuple[float, float]],
    ramp_s: float = 900.0,
    hold_s: float = 5400.0,
    decay_s: float = 1800.0,
) -> np.ndarray:
    """Sum of flash crowds; ``events`` is ``[(start_s, amplitude), ...]``."""
    duration_s = _check_duration(duration_s)
    out = np.zeros(duration_s)
    for at_s, amp in events:
        add_flash_crowd(out, at_s, ramp_s, hold_s, decay_s, amp)
    return out


def micro_bursts(
    duration_s: int,
    rng: np.random.Generator,
    rate_per_day: float = 3.0,
    amplitude: float = 0.4,
    amplitude_sigma: float = 0.5,
    day_dispersion: float = 0.0,
) -> np.ndarray:
    """Minute-scale random surges, as a *multiplicative* series around 1.

    Real web traffic (and the World Cup logs in particular) exhibits
    short-lived surges — news pushes, goal notifications — lasting minutes.
    Each burst multiplies the base load by ``1 + a`` with
    ``a ~ amplitude * lognormal(amplitude_sigma)``, ramping over 30-120 s,
    holding 1-10 min and decaying over 2-10 min.  These bursts are what
    separates a look-ahead-max provisioner from a clairvoyant per-second
    one.

    ``day_dispersion > 0`` makes burstiness *heterogeneous across days*:
    each day's event rate is ``rate_per_day`` scaled by a
    gamma(1/dispersion, dispersion) multiplier (mean 1), so some days are
    quiet and a heavy tail of days storms — which is exactly what spreads
    the per-day overhead band in the paper's Fig. 5.
    """
    duration_s = _check_duration(duration_s)
    if rate_per_day < 0 or amplitude < 0:
        raise ValueError("rate_per_day and amplitude must be >= 0")
    if day_dispersion < 0:
        raise ValueError("day_dispersion must be >= 0")
    out = np.zeros(duration_s)
    n_days = max(1, math.ceil(duration_s / SECONDS_PER_DAY))
    for day in range(n_days):
        day_start = day * SECONDS_PER_DAY
        day_len = min(SECONDS_PER_DAY, duration_s - day_start)
        rate = rate_per_day * day_len / SECONDS_PER_DAY
        if day_dispersion > 0:
            shape = 1.0 / day_dispersion
            rate *= rng.gamma(shape, day_dispersion)
        for _ in range(rng.poisson(rate)):
            at = day_start + rng.uniform(0, day_len)
            amp = amplitude * rng.lognormal(
                -0.5 * amplitude_sigma**2, amplitude_sigma
            )
            add_flash_crowd(
                out,
                at_s=at,
                ramp_s=rng.uniform(30, 120),
                hold_s=rng.uniform(60, 600),
                decay_s=rng.uniform(120, 600),
                amplitude=amp,
            )
    return 1.0 + out


def multiplicative_noise(
    duration_s: int,
    rng: np.random.Generator,
    sigma: float = 0.05,
) -> np.ndarray:
    """I.i.d. lognormal multiplier with relative spread ``sigma``."""
    duration_s = _check_duration(duration_s)
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0:
        return np.ones(duration_s)
    return rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=duration_s)


def heteroskedastic_noise(
    duration_s: int,
    rng: np.random.Generator,
    sigma: float = 0.08,
    day_dispersion: float = 0.0,
    day_sigma_cap: Optional[float] = None,
) -> np.ndarray:
    """White log-normal noise whose volatility varies *per day*.

    Each day ``d`` gets its own relative spread
    ``sigma_d = sigma * lognormal(day_dispersion)`` — most days are calm,
    a heavy tail of days is turbulent.  Per-day volatility differences are
    what spread the per-day overhead of a look-ahead-max provisioner over
    a clairvoyant one (Fig. 5's 6.8 %..161 % band).  ``day_sigma_cap``
    bounds the per-day spread so a freak noise draw cannot dwarf the
    structural (final-match) peak of the composed trace.
    """
    duration_s = _check_duration(duration_s)
    if sigma < 0 or day_dispersion < 0:
        raise ValueError("sigma and day_dispersion must be >= 0")
    if sigma == 0:
        return np.ones(duration_s)
    n_days = max(1, math.ceil(duration_s / SECONDS_PER_DAY))
    if day_dispersion > 0:
        day_sigma = sigma * rng.lognormal(
            -0.5 * day_dispersion**2, day_dispersion, size=n_days
        )
    else:
        day_sigma = np.full(n_days, sigma)
    if day_sigma_cap is not None:
        day_sigma = np.minimum(day_sigma, day_sigma_cap)
    sig_t = np.repeat(day_sigma, SECONDS_PER_DAY)[:duration_s]
    z = rng.standard_normal(duration_s)
    return np.exp(sig_t * z - 0.5 * sig_t**2)


def ar1_noise(
    duration_s: int,
    rng: np.random.Generator,
    sigma: float = 0.05,
    corr: float = 0.999,
) -> np.ndarray:
    """Smooth (AR(1)) multiplicative noise around 1.

    Real request-rate noise is strongly autocorrelated second to second;
    ``corr`` close to 1 gives minute-scale wiggle instead of white noise.
    """
    duration_s = _check_duration(duration_s)
    if not 0 <= corr < 1:
        raise ValueError("corr must be in [0, 1)")
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0:
        return np.ones(duration_s)
    innovations = rng.normal(0.0, sigma * math.sqrt(1 - corr**2), size=duration_s)
    out = np.empty(duration_s)
    # lfilter-style recursion; scipy.signal.lfilter does this in C.
    try:
        from scipy.signal import lfilter

        out = lfilter([1.0], [1.0, -corr], innovations)
    except Exception:  # pragma: no cover
        acc = 0.0
        for i, e in enumerate(innovations):
            acc = corr * acc + e
            out[i] = acc
    return np.maximum(1.0 + out, 0.0)


def compose(
    base: np.ndarray,
    multipliers: Iterable[np.ndarray] = (),
    addends: Iterable[np.ndarray] = (),
) -> np.ndarray:
    """``base * prod(multipliers) + sum(addends)``, clipped at 0."""
    out = np.asarray(base, dtype=float).copy()
    for m in multipliers:
        if len(m) != len(out):
            raise ValueError("multiplier length mismatch")
        out *= m
    for a in addends:
        if len(a) != len(out):
            raise ValueError("addend length mismatch")
        out += a
    return np.maximum(out, 0.0)


def make_trace(
    values: np.ndarray,
    name: str,
    timestep: float = 1.0,
    t0: float = 0.0,
) -> LoadTrace:
    """Wrap a composed array into a :class:`LoadTrace`."""
    return LoadTrace(values, timestep, name, t0)
