"""Synthetic 1998 World Cup workload (substitution for the real trace).

The paper replays **days 6 to 92 of the 1998 World Cup access logs** (once
distributed by the Internet Traffic Archive; not redistributable and not
available offline), i.e. 87 days spanning the tournament build-up, the
group stage, the knockout rounds and the final.  This module synthesises a
workload with the same structural features the evaluation depends on:

* a strong **diurnal** cycle (the site served mostly European/American
  visitors; night troughs are an order of magnitude below day peaks);
* slow **tournament growth**: interest — and with it baseline traffic —
  grows from the pre-tournament period toward the final;
* **match-driven flash crowds**: sharp surges around kick-off times during
  the group stage (multiple matches/day), rounds of 16/8, semis and final,
  with knockout matches drawing disproportionally larger crowds;
* **quiet rest days** between knockout rounds;
* small autocorrelated noise.

The synthesiser is fully deterministic given a seed, and the result is
rescaled so that the *global* peak matches ``peak_rate`` — calibrated by
default so the paper's "UpperBound Global" sizing of **4 Big (Paravance)
machines** holds (peak in ``(3, 4] x 1331`` req/s).

The real schedule of France 98 is approximated: the tournament runs days
{tournament_start}..{final_day} of the trace with group matches on the
first ~16 tournament days, then R16, quarter-finals, semi-finals, a rest
day, and the final.  Exact dates are immaterial to the evaluation — only
the burst/growth/diurnal structure matters for the scheduler, which sees
nothing but the per-second rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import patterns
from .trace import SECONDS_PER_DAY, LoadTrace

__all__ = ["WorldCupSynthesizer", "MatchEvent", "synthesize", "PAPER_DAYS"]

#: The paper simulates days 6 to 92 inclusive -> 87 days.
PAPER_DAYS = 87


@dataclass(frozen=True)
class MatchEvent:
    """One match: a flash crowd anchored at kick-off.

    ``day`` is 0-based within the trace, ``hour`` the local kick-off time,
    ``weight`` a relative interest multiplier (finals >> group games).
    """

    day: int
    hour: float
    weight: float

    @property
    def start_s(self) -> float:
        return self.day * SECONDS_PER_DAY + self.hour * 3600.0


@dataclass
class WorldCupSynthesizer:
    """Deterministic World-Cup-98-shaped load generator.

    Parameters
    ----------
    n_days:
        Trace length in days (default 87 = paper's days 6..92).
    seed:
        RNG seed; the same seed always yields the same trace.
    peak_rate:
        Global peak after rescaling (default 5000 req/s: needs 4 Paravance
        machines at 1331 req/s each, matching the paper's UpperBound
        Global of "4 Big machines always On").
    base_rate:
        Pre-tournament mean daytime rate, before rescaling.
    night_fraction:
        Trough-to-peak ratio of the diurnal cycle.
    growth:
        Multiplicative traffic growth from day 0 to the final.
    tournament_start:
        0-based day the group stage begins.
    noise_sigma / noise_corr:
        AR(1) multiplicative noise parameters.
    """

    n_days: int = PAPER_DAYS
    seed: int = 1998
    peak_rate: float = 5000.0
    base_rate: float = 900.0
    night_fraction: float = 0.12
    growth: float = 3.2
    tournament_start: Optional[int] = None
    group_stage_days: int = 16
    match_burst_factor: float = 0.9
    noise_sigma: float = 0.05
    noise_corr: float = 0.999
    white_sigma: float = 0.20
    white_day_dispersion: float = 0.85
    white_day_sigma_cap: float = 0.45
    microburst_rate: float = 6.0
    microburst_amplitude: float = 0.7
    microburst_sigma: float = 0.9
    microburst_dispersion: float = 1.6

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if not 0 < self.night_fraction <= 1:
            raise ValueError("night_fraction must be in (0, 1]")
        if self.peak_rate <= 0 or self.base_rate <= 0:
            raise ValueError("rates must be > 0")
        if self.tournament_start is None:
            # The paper's window (days 6-92 = May 1 .. Jul 26 1998) has
            # ~40 pre-tournament days before the June 10 kick-off; scale
            # proportionally for shorter synthetic traces.
            self.tournament_start = min(40, int(self.n_days * 0.46))
        elif self.tournament_start >= self.n_days:
            raise ValueError("tournament_start beyond trace end")

    # ------------------------------------------------------------------
    def schedule(self) -> List[MatchEvent]:
        """The approximated France-98 match schedule within the trace."""
        rng = np.random.default_rng(self.seed + 7)
        events: List[MatchEvent] = []
        day = self.tournament_start
        # Group stage: 2-3 matches/day at 14:30, 17:30, 21:00 local.
        kickoffs = (14.5, 17.5, 21.0)
        for d in range(day, min(day + self.group_stage_days, self.n_days)):
            n_matches = int(rng.integers(2, 4))
            for k in range(n_matches):
                events.append(MatchEvent(d, kickoffs[k], 1.0))
        cursor = day + self.group_stage_days + 1  # one rest day
        # Round of 16: 2 matches/day for 4 days.
        for d in range(cursor, min(cursor + 4, self.n_days)):
            events.append(MatchEvent(d, 16.0, 1.5))
            events.append(MatchEvent(d, 21.0, 1.7))
        cursor += 5
        # Quarter finals: 2 matches/day for 2 days.
        for d in range(cursor, min(cursor + 2, self.n_days)):
            events.append(MatchEvent(d, 16.5, 2.2))
            events.append(MatchEvent(d, 21.0, 2.4))
        cursor += 3
        # Semi finals: 1 match/day for 2 days.
        for d in range(cursor, min(cursor + 2, self.n_days)):
            events.append(MatchEvent(d, 21.0, 3.0))
        cursor += 3
        # Third place + final.
        if cursor < self.n_days:
            events.append(MatchEvent(cursor, 21.0, 2.0))
        if cursor + 1 < self.n_days:
            events.append(MatchEvent(cursor + 1, 21.0, 4.0))
        return [e for e in events if e.day < self.n_days]

    @property
    def final_day(self) -> int:
        """0-based day of the final (last scheduled match, interest peak)."""
        sched = self.schedule()
        return sched[-1].day if sched else self.n_days - 1

    def _interest(self, duration: int) -> np.ndarray:
        """Tournament-interest envelope: grows to the final, then decays.

        Baseline traffic rises linearly from 1 at trace start to ``growth``
        on the day of the final, then relaxes exponentially (the paper's
        post-final days show traffic falling back toward pre-tournament
        levels within about a week).
        """
        t = np.arange(duration, dtype=float)
        peak_s = (self.final_day + 1) * SECONDS_PER_DAY
        peak_s = min(peak_s, duration)
        out = np.empty(duration)
        rise = t < peak_s
        if peak_s > 0:
            out[rise] = 1.0 + (self.growth - 1.0) * t[rise] / peak_s
        tail = ~rise
        out[tail] = 1.0 + (self.growth - 1.0) * np.exp(
            -(t[tail] - peak_s) / (6 * SECONDS_PER_DAY)
        )
        return out

    # ------------------------------------------------------------------
    def build(self) -> LoadTrace:
        """Generate the trace (always identical for identical parameters)."""
        duration = self.n_days * SECONDS_PER_DAY
        rng = np.random.default_rng(self.seed)

        day_level = patterns.diurnal(
            duration,
            low=self.base_rate * self.night_fraction,
            high=self.base_rate,
            peak_hour=15.0,
            sharpness=1.3,
        )
        week = patterns.weekly(duration, 1.0, 0.92, start_weekday=1)
        ramp = self._interest(duration)

        events = [
            (e.start_s, self.match_burst_factor * e.weight * self.base_rate)
            for e in self.schedule()
        ]
        surge = patterns.bursts(
            duration, events, ramp_s=1200.0, hold_s=2.25 * 3600.0, decay_s=2400.0
        )
        # Match crowds also grow with tournament interest.
        surge *= ramp / self.growth

        noise = patterns.ar1_noise(
            duration, rng, sigma=self.noise_sigma, corr=self.noise_corr
        )
        noise *= patterns.heteroskedastic_noise(
            duration,
            rng,
            self.white_sigma,
            self.white_day_dispersion,
            self.white_day_sigma_cap,
        )
        noise *= patterns.micro_bursts(
            duration,
            rng,
            rate_per_day=self.microburst_rate,
            amplitude=self.microburst_amplitude,
            amplitude_sigma=self.microburst_sigma,
            day_dispersion=self.microburst_dispersion,
        )
        values = patterns.compose(day_level, [week, ramp], [surge]) * noise
        trace = LoadTrace(
            np.maximum(values, 0.0),
            timestep=1.0,
            name=f"worldcup98-synthetic(seed={self.seed})",
            t0=5 * SECONDS_PER_DAY,  # paper's trace starts at day 6 (1-based)
        )
        return trace.scaled_to_peak(self.peak_rate)


def synthesize(
    n_days: int = PAPER_DAYS,
    seed: int = 1998,
    peak_rate: float = 5000.0,
    **kwargs,
) -> LoadTrace:
    """Convenience wrapper: ``WorldCupSynthesizer(...).build()``."""
    return WorldCupSynthesizer(
        n_days=n_days, seed=seed, peak_rate=peak_rate, **kwargs
    ).build()
