"""Reader for the original 1998 World Cup access-log binary format.

The paper replays days 6-92 of the WC98 trace from the Internet Traffic
Archive.  The logs are distributed as gzipped **binary** files of fixed
20-byte records (the archive's custom format, normally decoded with the
bundled C tools)::

    struct request {
        uint32_t timestamp;   // seconds since the UNIX epoch (GMT)
        uint32_t clientID;    // anonymised client id
        uint32_t objectID;    // requested URL id
        uint32_t size;        // response bytes
        uint8_t  method;      // GET/POST/... enum
        uint8_t  status;      // HTTP status + version bits
        uint8_t  type;        // file type enum
        uint8_t  server;      // region/server enum
    };

all fields big-endian.  This module decodes that format with a single
vectorised ``numpy.frombuffer`` pass and aggregates requests into the
per-second :class:`~repro.workload.trace.LoadTrace` the schedulers
consume — so anyone who obtains the original archive can replay the
paper's exact workload instead of the synthetic substitute.  Writing is
also supported, which the tests use to round-trip synthetic logs.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import BinaryIO, Optional, Sequence, Tuple, Union

import numpy as np

from .. import faults
from .trace import LoadTrace, TraceIngestError

__all__ = [
    "WC98_RECORD_DTYPE",
    "read_records",
    "records_to_trace",
    "read_trace",
    "write_records",
]

#: The archive's fixed 20-byte request record (big-endian).
WC98_RECORD_DTYPE = np.dtype(
    [
        ("timestamp", ">u4"),
        ("clientID", ">u4"),
        ("objectID", ">u4"),
        ("size", ">u4"),
        ("method", "u1"),
        ("status", "u1"),
        ("type", "u1"),
        ("server", "u1"),
    ]
)


def _open(path: Union[str, Path]) -> BinaryIO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return path.open("rb")


def read_records(path: Union[str, Path]) -> np.ndarray:
    """Decode one log file (plain or ``.gz``) into a structured array.

    Unreadable or truncated archives raise
    :class:`~repro.workload.trace.TraceIngestError` naming the file and
    the byte offset where the data stops making sense — gzip/OS errors
    never leak through raw.
    """
    path = Path(path)
    faults.fire("trace-read", str(path))
    try:
        with _open(path) as fh:
            raw = fh.read()
    except (OSError, EOFError) as exc:
        raise TraceIngestError(
            f"{path}: unreadable WC98 archive: {type(exc).__name__}: {exc}"
        ) from exc
    itemsize = WC98_RECORD_DTYPE.itemsize
    fragment = len(raw) % itemsize
    if fragment:
        raise TraceIngestError(
            f"{path}: truncated WC98 archive: {len(raw)} bytes is not a "
            f"multiple of the {itemsize}-byte record ({fragment} trailing "
            f"bytes at offset {len(raw) - fragment})"
        )
    return np.frombuffer(raw, dtype=WC98_RECORD_DTYPE)


def records_to_trace(
    records: np.ndarray,
    name: str = "wc98",
    t_start: Optional[int] = None,
    t_end: Optional[int] = None,
) -> LoadTrace:
    """Aggregate request records into a 1 Hz request-rate trace.

    ``t_start``/``t_end`` (epoch seconds) crop the window; by default the
    trace spans the records' own extent.  Empty seconds inside the window
    become zero load (the web server still runs, nobody asks anything).
    """
    if records.size == 0:
        raise ValueError("no records to aggregate")
    ts = records["timestamp"].astype(np.int64)
    lo = int(ts.min()) if t_start is None else int(t_start)
    hi = int(ts.max()) + 1 if t_end is None else int(t_end)
    if hi <= lo:
        raise ValueError(f"empty window [{lo}, {hi})")
    mask = (ts >= lo) & (ts < hi)
    counts = np.bincount(ts[mask] - lo, minlength=hi - lo).astype(float)
    return LoadTrace(counts, timestep=1.0, name=name, t0=float(lo))


def read_trace(
    paths: Union[str, Path, Sequence[Union[str, Path]]],
    name: str = "wc98",
) -> LoadTrace:
    """Read one or many daily log files and build the request-rate trace.

    Files may be given in any order; records are concatenated and the
    trace covers the union of their time extent (gaps are zero-filled,
    like the archive's quiet night seconds).
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    if not paths:
        raise ValueError("no log files given")
    chunks = [read_records(p) for p in paths]
    return records_to_trace(
        np.concatenate(chunks) if len(chunks) > 1 else chunks[0], name=name
    )


def write_records(
    path: Union[str, Path],
    timestamps: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Write request ``timestamps`` (epoch seconds) in the archive format.

    Secondary fields are filled with plausible random values (the rate
    aggregation ignores them).  Returns the number of records written.
    Used to synthesise archive-format fixtures for tests and demos;
    ``.gz`` paths are compressed like the originals.
    """
    rng = rng or np.random.default_rng(0)
    ts = np.asarray(timestamps, dtype=np.int64)
    if ts.size and ts.min() < 0:
        raise ValueError("timestamps must be >= 0")
    records = np.zeros(ts.size, dtype=WC98_RECORD_DTYPE)
    records["timestamp"] = ts
    records["clientID"] = rng.integers(0, 2_770_000, ts.size)
    records["objectID"] = rng.integers(0, 90_000, ts.size)
    records["size"] = rng.integers(40, 200_000, ts.size)
    records["method"] = 0  # GET
    records["status"] = rng.choice([2, 3], size=ts.size)  # 200/304-ish codes
    records["type"] = rng.integers(0, 15, ts.size)
    records["server"] = rng.integers(0, 32, ts.size)
    path = Path(path)
    data = records.tobytes()
    if path.suffix == ".gz":
        with gzip.open(path, "wb") as fh:
            fh.write(data)
    else:
        path.write_bytes(data)
    return int(ts.size)
