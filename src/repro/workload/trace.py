"""Load traces: the time-varying application demand the scheduler replays.

A :class:`LoadTrace` is a 1 Hz series of the application performance metric
(requests/s for the paper's web server).  The paper replays days 6-92 of
the 1998 World Cup access logs; this module provides the generic container
(numpy-backed, CSV/NPZ round-trip, per-day views and statistics) while
:mod:`repro.workload.worldcup` synthesises the World-Cup-shaped workload.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["LoadTrace", "TraceError", "TraceIngestError", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400


class TraceError(ValueError):
    """Raised for malformed traces or out-of-range accesses."""


class TraceIngestError(TraceError):
    """Raised when reading a trace from disk fails.

    The one typed error every ingestion path (CSV, NPZ, WC98 archives)
    raises for bad input bytes — always carrying the file and the
    offending line/sample/byte offset, never a leaked numpy, zipfile or
    struct internal.
    """


@dataclass(frozen=True)
class LoadTrace:
    """An application load series sampled on a fixed time step.

    Parameters
    ----------
    values:
        Non-negative load samples (application metric per second).
    timestep:
        Seconds between samples (default 1.0, the paper's granularity).
    name:
        Free-form label used in reports.
    t0:
        Absolute start time in seconds (e.g. ``5 * 86400`` when the trace
        starts at day 6 of the World Cup, counting days from 1).
    """

    values: np.ndarray
    timestep: float = 1.0
    name: str = "trace"
    t0: float = 0.0

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1:
            raise TraceError(f"trace must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise TraceError("trace must contain at least one sample")
        if np.any(~np.isfinite(arr)):
            raise TraceError("trace contains non-finite samples")
        if np.any(arr < 0):
            raise TraceError("trace contains negative load")
        if self.timestep <= 0:
            raise TraceError("timestep must be > 0")
        arr = arr.copy()
        arr.flags.writeable = False
        object.__setattr__(self, "values", arr)

    # -- basics ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: Union[int, slice]) -> Union[float, "LoadTrace"]:
        if isinstance(idx, slice):
            start, _, step = idx.indices(len(self))
            if step != 1:
                raise TraceError("strided slicing is not supported")
            vals = self.values[idx]
            if vals.size == 0:
                raise TraceError("empty slice")
            return LoadTrace(
                vals, self.timestep, self.name, self.t0 + start * self.timestep
            )
        return float(self.values[idx])

    @property
    def duration(self) -> float:
        """Trace duration in seconds."""
        return len(self.values) * self.timestep

    @property
    def peak(self) -> float:
        """Maximum load over the whole trace."""
        return float(np.max(self.values))

    @property
    def mean(self) -> float:
        """Mean load over the whole trace."""
        return float(np.mean(self.values))

    @property
    def total_demand(self) -> float:
        """Integral of the load (e.g. total requests over the trace)."""
        return float(np.sum(self.values) * self.timestep)

    def stats(self) -> dict:
        """Summary statistics used by reports."""
        v = self.values
        return {
            "name": self.name,
            "samples": int(v.size),
            "duration_s": self.duration,
            "peak": float(v.max()),
            "mean": float(v.mean()),
            "p50": float(np.percentile(v, 50)),
            "p95": float(np.percentile(v, 95)),
            "p99": float(np.percentile(v, 99)),
            "min": float(v.min()),
        }

    # -- day-level views ---------------------------------------------------
    @property
    def samples_per_day(self) -> int:
        spd = SECONDS_PER_DAY / self.timestep
        if abs(spd - round(spd)) > 1e-9:
            raise TraceError(
                f"timestep {self.timestep} does not divide a day evenly"
            )
        return int(round(spd))

    @property
    def n_days(self) -> int:
        """Number of (possibly partial) days covered."""
        return math.ceil(len(self.values) / self.samples_per_day)

    def day(self, index: int) -> "LoadTrace":
        """The ``index``-th day of the trace (0-based) as a sub-trace."""
        spd = self.samples_per_day
        if not 0 <= index < self.n_days:
            raise TraceError(f"day {index} out of range 0..{self.n_days - 1}")
        sl = self.values[index * spd : (index + 1) * spd]
        return LoadTrace(
            sl,
            self.timestep,
            f"{self.name}/day{index}",
            self.t0 + index * spd * self.timestep,
        )

    def days(self) -> Iterator["LoadTrace"]:
        """Iterate over per-day sub-traces."""
        for i in range(self.n_days):
            yield self.day(i)

    def per_day_max(self) -> np.ndarray:
        """Daily peak loads (vectorised; last partial day included)."""
        spd = self.samples_per_day
        n = len(self.values)
        full = n // spd
        out: List[float] = []
        if full:
            out.extend(self.values[: full * spd].reshape(full, spd).max(axis=1))
        if n % spd:
            out.append(float(self.values[full * spd :].max()))
        return np.asarray(out)

    def per_day_mean(self) -> np.ndarray:
        """Daily mean loads."""
        spd = self.samples_per_day
        n = len(self.values)
        full = n // spd
        out: List[float] = []
        if full:
            out.extend(self.values[: full * spd].reshape(full, spd).mean(axis=1))
        if n % spd:
            out.append(float(self.values[full * spd :].mean()))
        return np.asarray(out)

    # -- transforms ---------------------------------------------------------
    def scaled(self, factor: float) -> "LoadTrace":
        """Multiply the load by ``factor`` (capacity-planning what-ifs)."""
        if factor < 0:
            raise TraceError("scale factor must be >= 0")
        return LoadTrace(self.values * factor, self.timestep, self.name, self.t0)

    def scaled_to_peak(self, peak: float) -> "LoadTrace":
        """Rescale so the global maximum equals ``peak``."""
        cur = self.peak
        if cur <= 0:
            raise TraceError("cannot rescale an all-zero trace")
        return self.scaled(peak / cur)

    def clipped(self, max_value: float) -> "LoadTrace":
        """Clip the load from above (overload studies)."""
        return LoadTrace(
            np.minimum(self.values, max_value), self.timestep, self.name, self.t0
        )

    def resampled(self, new_step: float, how: str = "max") -> "LoadTrace":
        """Downsample to ``new_step`` seconds per sample.

        ``how="max"`` is conservative for provisioning (never hides a
        peak); ``how="mean"`` preserves total demand.  ``new_step`` must be
        an integer multiple of the current step.
        """
        ratio = new_step / self.timestep
        if ratio < 1 or abs(ratio - round(ratio)) > 1e-9:
            raise TraceError(
                f"new step {new_step} must be an integer multiple of {self.timestep}"
            )
        k = int(round(ratio))
        n = len(self.values)
        full = n // k
        head = self.values[: full * k].reshape(full, k)
        agg = head.max(axis=1) if how == "max" else head.mean(axis=1)
        if how not in ("max", "mean"):
            raise TraceError(f"unknown resampling {how!r}")
        tail = self.values[full * k :]
        if tail.size:
            agg = np.concatenate(
                [agg, [tail.max() if how == "max" else tail.mean()]]
            )
        return LoadTrace(agg, new_step, self.name, self.t0)

    def concatenated(self, other: "LoadTrace") -> "LoadTrace":
        """Append ``other`` (same timestep) after this trace."""
        if abs(other.timestep - self.timestep) > 1e-12:
            raise TraceError("timesteps differ")
        return LoadTrace(
            np.concatenate([self.values, other.values]),
            self.timestep,
            self.name,
            self.t0,
        )

    # -- io -------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write ``time,load`` rows (absolute seconds, one per sample)."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", "load"])
            t = self.t0
            for v in self.values:
                writer.writerow([f"{t:.6g}", f"{v:.10g}"])
                t += self.timestep

    @classmethod
    def from_csv(
        cls, path: Union[str, Path], name: Optional[str] = None
    ) -> "LoadTrace":
        """Read a trace written by :meth:`to_csv` (or any ``t,v`` CSV).

        Non-finite or negative rates raise :class:`TraceIngestError`
        naming the file and line, instead of the container's generic
        whole-trace validation error.
        """
        path = Path(path)
        times: List[float] = []
        vals: List[float] = []
        with path.open() as fh:
            reader = csv.reader(fh)
            for lineno, row in enumerate(reader, start=1):
                if not row:
                    continue
                try:
                    t, v = float(row[0]), float(row[1])
                except (ValueError, IndexError):
                    continue  # header or comment
                if not math.isfinite(v):
                    raise TraceIngestError(
                        f"{path}: line {lineno}: non-finite load {row[1]!r}"
                    )
                if v < 0:
                    raise TraceIngestError(
                        f"{path}: line {lineno}: negative load {v:g}"
                    )
                times.append(t)
                vals.append(v)
        if len(vals) < 1:
            raise TraceIngestError(f"no samples found in {path}")
        step = times[1] - times[0] if len(times) > 1 else 1.0
        return cls(np.asarray(vals), step, name or path.stem, times[0])

    def to_npz(self, path: Union[str, Path]) -> None:
        """Binary round-trip (compact, exact)."""
        np.savez_compressed(
            Path(path),
            values=self.values,
            timestep=self.timestep,
            t0=self.t0,
            name=np.asarray(self.name),
        )

    @classmethod
    def from_npz(cls, path: Union[str, Path]) -> "LoadTrace":
        """Load a trace written by :meth:`to_npz`.

        Truncated/corrupt archives and invalid rates raise
        :class:`TraceIngestError` with file and sample context instead
        of leaking numpy/zipfile internals.
        """
        import zipfile

        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                values = np.asarray(data["values"], dtype=float)
                timestep = float(data["timestep"])
                name = str(data["name"])
                t0 = float(data["t0"])
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceIngestError(
                f"{path}: unreadable trace archive: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if values.ndim == 1 and values.size:
            bad = np.flatnonzero(~np.isfinite(values) | (values < 0))
            if bad.size:
                i = int(bad[0])
                raise TraceIngestError(
                    f"{path}: sample {i}: invalid load {values[i]!r}"
                )
        return cls(values, timestep, name, t0)
