"""Load traces: the time-varying application demand the scheduler replays.

A :class:`LoadTrace` is a 1 Hz series of the application performance metric
(requests/s for the paper's web server).  The paper replays days 6-92 of
the 1998 World Cup access logs; this module provides the generic container
(numpy-backed, CSV/NPZ round-trip, per-day views and statistics) while
:mod:`repro.workload.worldcup` synthesises the World-Cup-shaped workload.
"""

from __future__ import annotations

import csv
import io
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "LoadTrace",
    "TraceError",
    "TraceIngestError",
    "SECONDS_PER_DAY",
    "SHM_PREFIX",
    "SharedTraceHandle",
    "share_trace",
    "attach_trace",
    "release_segment",
    "release_all_shared",
    "shm_stats",
]

SECONDS_PER_DAY = 86_400


class TraceError(ValueError):
    """Raised for malformed traces or out-of-range accesses."""


class TraceIngestError(TraceError):
    """Raised when reading a trace from disk fails.

    The one typed error every ingestion path (CSV, NPZ, WC98 archives)
    raises for bad input bytes — always carrying the file and the
    offending line/sample/byte offset, never a leaked numpy, zipfile or
    struct internal.
    """


@dataclass(frozen=True)
class LoadTrace:
    """An application load series sampled on a fixed time step.

    Parameters
    ----------
    values:
        Non-negative load samples (application metric per second).
    timestep:
        Seconds between samples (default 1.0, the paper's granularity).
    name:
        Free-form label used in reports.
    t0:
        Absolute start time in seconds (e.g. ``5 * 86400`` when the trace
        starts at day 6 of the World Cup, counting days from 1).
    """

    values: np.ndarray
    timestep: float = 1.0
    name: str = "trace"
    t0: float = 0.0

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1:
            raise TraceError(f"trace must be 1-D, got shape {arr.shape}")
        if arr.size == 0:
            raise TraceError("trace must contain at least one sample")
        if np.any(~np.isfinite(arr)):
            raise TraceError("trace contains non-finite samples")
        if np.any(arr < 0):
            raise TraceError("trace contains negative load")
        if self.timestep <= 0:
            raise TraceError("timestep must be > 0")
        if (
            arr.flags.writeable
            or arr.dtype != np.float64
            or not arr.flags.c_contiguous
        ):
            arr = np.array(arr, dtype=np.float64)  # always a fresh copy
            arr.flags.writeable = False
        # An already-read-only float64 array is adopted as-is: shared-
        # memory traces hand workers a read-only view of the segment, and
        # a defensive copy here would silently undo the zero-copy attach.
        object.__setattr__(self, "values", arr)

    # -- basics ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: Union[int, slice]) -> Union[float, "LoadTrace"]:
        if isinstance(idx, slice):
            start, _, step = idx.indices(len(self))
            if step != 1:
                raise TraceError("strided slicing is not supported")
            vals = self.values[idx]
            if vals.size == 0:
                raise TraceError("empty slice")
            return LoadTrace(
                vals, self.timestep, self.name, self.t0 + start * self.timestep
            )
        return float(self.values[idx])

    @property
    def duration(self) -> float:
        """Trace duration in seconds."""
        return len(self.values) * self.timestep

    @property
    def peak(self) -> float:
        """Maximum load over the whole trace."""
        return float(np.max(self.values))

    @property
    def mean(self) -> float:
        """Mean load over the whole trace."""
        return float(np.mean(self.values))

    @property
    def total_demand(self) -> float:
        """Integral of the load (e.g. total requests over the trace)."""
        return float(np.sum(self.values) * self.timestep)

    def content_digest(self) -> str:
        """Hex digest of the sample content (values + timestep).

        Process-wide caches keyed on workload identity (the predictor
        series cache of :mod:`repro.core.prediction`) need a key that
        survives rebuilding the same trace from its spec — object
        identity does not, and ``name`` alone is a label, not content.
        The digest covers the full sample buffer, the length and the
        timestep; it is computed once per instance and memoised (the
        values array is frozen read-only, so the content cannot drift
        under the cached digest).
        """
        cached = self.__dict__.get("_content_digest")
        if cached is not None:
            return cached
        import hashlib

        # sha1 is the fastest hardware-accelerated digest in hashlib on
        # the reference box (~2x blake2b on a year-scale buffer); this is
        # a cache key, not a security boundary.
        h = hashlib.sha1()
        h.update(len(self.values).to_bytes(8, "little"))
        h.update(np.float64(self.timestep).tobytes())
        h.update(memoryview(self.values))
        digest = h.hexdigest()
        object.__setattr__(self, "_content_digest", digest)
        return digest

    def stats(self) -> dict:
        """Summary statistics used by reports."""
        v = self.values
        return {
            "name": self.name,
            "samples": int(v.size),
            "duration_s": self.duration,
            "peak": float(v.max()),
            "mean": float(v.mean()),
            "p50": float(np.percentile(v, 50)),
            "p95": float(np.percentile(v, 95)),
            "p99": float(np.percentile(v, 99)),
            "min": float(v.min()),
        }

    # -- day-level views ---------------------------------------------------
    @property
    def samples_per_day(self) -> int:
        spd = SECONDS_PER_DAY / self.timestep
        if abs(spd - round(spd)) > 1e-9:
            raise TraceError(
                f"timestep {self.timestep} does not divide a day evenly"
            )
        return int(round(spd))

    @property
    def n_days(self) -> int:
        """Number of (possibly partial) days covered."""
        return math.ceil(len(self.values) / self.samples_per_day)

    def day(self, index: int) -> "LoadTrace":
        """The ``index``-th day of the trace (0-based) as a sub-trace."""
        spd = self.samples_per_day
        if not 0 <= index < self.n_days:
            raise TraceError(f"day {index} out of range 0..{self.n_days - 1}")
        sl = self.values[index * spd : (index + 1) * spd]
        return LoadTrace(
            sl,
            self.timestep,
            f"{self.name}/day{index}",
            self.t0 + index * spd * self.timestep,
        )

    def days(self) -> Iterator["LoadTrace"]:
        """Iterate over per-day sub-traces."""
        for i in range(self.n_days):
            yield self.day(i)

    def per_day_max(self) -> np.ndarray:
        """Daily peak loads (vectorised; last partial day included)."""
        spd = self.samples_per_day
        n = len(self.values)
        full = n // spd
        out: List[float] = []
        if full:
            out.extend(self.values[: full * spd].reshape(full, spd).max(axis=1))
        if n % spd:
            out.append(float(self.values[full * spd :].max()))
        return np.asarray(out)

    def per_day_mean(self) -> np.ndarray:
        """Daily mean loads."""
        spd = self.samples_per_day
        n = len(self.values)
        full = n // spd
        out: List[float] = []
        if full:
            out.extend(self.values[: full * spd].reshape(full, spd).mean(axis=1))
        if n % spd:
            out.append(float(self.values[full * spd :].mean()))
        return np.asarray(out)

    # -- transforms ---------------------------------------------------------
    def scaled(self, factor: float) -> "LoadTrace":
        """Multiply the load by ``factor`` (capacity-planning what-ifs)."""
        if factor < 0:
            raise TraceError("scale factor must be >= 0")
        return LoadTrace(self.values * factor, self.timestep, self.name, self.t0)

    def scaled_to_peak(self, peak: float) -> "LoadTrace":
        """Rescale so the global maximum equals ``peak``."""
        cur = self.peak
        if cur <= 0:
            raise TraceError("cannot rescale an all-zero trace")
        return self.scaled(peak / cur)

    def clipped(self, max_value: float) -> "LoadTrace":
        """Clip the load from above (overload studies)."""
        return LoadTrace(
            np.minimum(self.values, max_value), self.timestep, self.name, self.t0
        )

    def resampled(self, new_step: float, how: str = "max") -> "LoadTrace":
        """Downsample to ``new_step`` seconds per sample.

        ``how="max"`` is conservative for provisioning (never hides a
        peak); ``how="mean"`` preserves total demand.  ``new_step`` must be
        an integer multiple of the current step.
        """
        ratio = new_step / self.timestep
        if ratio < 1 or abs(ratio - round(ratio)) > 1e-9:
            raise TraceError(
                f"new step {new_step} must be an integer multiple of {self.timestep}"
            )
        k = int(round(ratio))
        n = len(self.values)
        full = n // k
        head = self.values[: full * k].reshape(full, k)
        agg = head.max(axis=1) if how == "max" else head.mean(axis=1)
        if how not in ("max", "mean"):
            raise TraceError(f"unknown resampling {how!r}")
        tail = self.values[full * k :]
        if tail.size:
            agg = np.concatenate(
                [agg, [tail.max() if how == "max" else tail.mean()]]
            )
        return LoadTrace(agg, new_step, self.name, self.t0)

    def concatenated(self, other: "LoadTrace") -> "LoadTrace":
        """Append ``other`` (same timestep) after this trace."""
        if abs(other.timestep - self.timestep) > 1e-12:
            raise TraceError("timesteps differ")
        return LoadTrace(
            np.concatenate([self.values, other.values]),
            self.timestep,
            self.name,
            self.t0,
        )

    # -- io -------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        """Write ``time,load`` rows (absolute seconds, one per sample)."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["time_s", "load"])
            t = self.t0
            for v in self.values:
                writer.writerow([f"{t:.6g}", f"{v:.10g}"])
                t += self.timestep

    @classmethod
    def from_csv(
        cls, path: Union[str, Path], name: Optional[str] = None
    ) -> "LoadTrace":
        """Read a trace written by :meth:`to_csv` (or any ``t,v`` CSV).

        Non-finite or negative rates raise :class:`TraceIngestError`
        naming the file and line, instead of the container's generic
        whole-trace validation error.
        """
        path = Path(path)
        times: List[float] = []
        vals: List[float] = []
        with path.open() as fh:
            reader = csv.reader(fh)
            for lineno, row in enumerate(reader, start=1):
                if not row:
                    continue
                try:
                    t, v = float(row[0]), float(row[1])
                except (ValueError, IndexError):
                    continue  # header or comment
                if not math.isfinite(v):
                    raise TraceIngestError(
                        f"{path}: line {lineno}: non-finite load {row[1]!r}"
                    )
                if v < 0:
                    raise TraceIngestError(
                        f"{path}: line {lineno}: negative load {v:g}"
                    )
                times.append(t)
                vals.append(v)
        if len(vals) < 1:
            raise TraceIngestError(f"no samples found in {path}")
        step = times[1] - times[0] if len(times) > 1 else 1.0
        return cls(np.asarray(vals), step, name or path.stem, times[0])

    def to_npz(self, path: Union[str, Path]) -> None:
        """Binary round-trip (compact, exact)."""
        np.savez_compressed(
            Path(path),
            values=self.values,
            timestep=self.timestep,
            t0=self.t0,
            name=np.asarray(self.name),
        )

    @classmethod
    def from_npz(cls, path: Union[str, Path]) -> "LoadTrace":
        """Load a trace written by :meth:`to_npz`.

        Truncated/corrupt archives and invalid rates raise
        :class:`TraceIngestError` with file and sample context instead
        of leaking numpy/zipfile internals.
        """
        import zipfile

        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                values = np.asarray(data["values"], dtype=float)
                timestep = float(data["timestep"])
                name = str(data["name"])
                t0 = float(data["t0"])
        except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise TraceIngestError(
                f"{path}: unreadable trace archive: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        if values.ndim == 1 and values.size:
            bad = np.flatnonzero(~np.isfinite(values) | (values < 0))
            if bad.size:
                i = int(bad[0])
                raise TraceIngestError(
                    f"{path}: sample {i}: invalid load {values[i]!r}"
                )
        return cls(values, timestep, name, t0)


# ---------------------------------------------------------------------------
# Shared-memory trace distribution
# ---------------------------------------------------------------------------
#
# A suite fanned out over a process pool used to ship its traces by
# value: pickled through ``initargs`` under ``spawn`` (one 60 MB copy per
# worker for the 87-day trace) or rebuilt from scratch by each worker.
# These helpers put the rate array in a named ``multiprocessing``
# shared-memory segment instead: the dispatcher publishes it once per
# (host, workload) with :func:`share_trace`, ships only the tiny
# :class:`SharedTraceHandle`, and every worker maps the same physical
# pages with :func:`attach_trace` — zero copies, zero rebuilds,
# distribution cost independent of worker count.
#
# Lifecycle: the *creating* process owns the segment and must
# ``release_segment`` (unlink) it; attachers only hold mappings, which
# die with their process.  :func:`release_all_shared` is registered via
# ``atexit`` in any process that created a segment, so even an aborted
# dispatcher leaves ``/dev/shm`` clean.  Segment names carry
# :data:`SHM_PREFIX` so leak checks can find strays by name.

#: Every segment this module creates is named ``repro-trace-<pid>-<n>``.
SHM_PREFIX = "repro-trace-"

#: Segments created (and owned) by this process: name -> SharedMemory.
_OWNED: dict = {}

#: Foreign segments this process has mapped: name -> SharedMemory.
_ATTACHED: dict = {}

#: Attach memo: segment name -> the LoadTrace view handed out, so
#: repeated attaches of the same segment share one array object.
_ATTACH_MEMO: dict = {}

_SHM_STATS = {
    "segments_created": 0,
    "segments_unlinked": 0,
    "segments_peak": 0,
    "bytes_shared": 0,
    "attaches": 0,
    "bytes_attached": 0,
}

_SHM_SEQ = 0
_ATEXIT_ARMED = False


@dataclass(frozen=True)
class SharedTraceHandle:
    """A by-name reference to a trace published in shared memory.

    Pickles in ~100 bytes regardless of trace length — this is what
    travels through pool ``initargs``/task payloads instead of the rate
    array itself.  ``attach_trace`` turns it back into a
    :class:`LoadTrace` whose values are a read-only view of the segment.
    """

    segment: str
    samples: int
    timestep: float
    name: str
    t0: float

    @property
    def nbytes(self) -> int:
        """Bytes of rate data the handle stands in for (float64)."""
        return self.samples * 8


def _arm_atexit() -> None:
    global _ATEXIT_ARMED
    if not _ATEXIT_ARMED:
        import atexit

        atexit.register(release_all_shared)
        _ATEXIT_ARMED = True


def share_trace(trace: LoadTrace) -> SharedTraceHandle:
    """Publish ``trace``'s rate array in a named shared-memory segment.

    The calling process becomes the segment's owner (responsible for
    :func:`release_segment`; an ``atexit`` hook backstops it).  Raises
    ``OSError`` when shared memory is unavailable — callers fall back to
    by-value shipping.
    """
    from multiprocessing import shared_memory

    global _SHM_SEQ
    _arm_atexit()
    values = trace.values
    while True:
        _SHM_SEQ += 1
        name = f"{SHM_PREFIX}{os.getpid()}-{_SHM_SEQ}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=values.nbytes
            )
            break
        except FileExistsError:  # stale segment from a recycled pid
            continue
    buf = np.ndarray(values.shape, dtype=np.float64, buffer=shm.buf)
    buf[:] = values
    del buf  # no exported buffer may outlive close()
    _OWNED[name] = shm
    _SHM_STATS["segments_created"] += 1
    _SHM_STATS["bytes_shared"] += values.nbytes
    _SHM_STATS["segments_peak"] = max(
        _SHM_STATS["segments_peak"], len(_OWNED)
    )
    return SharedTraceHandle(
        segment=name,
        samples=int(values.size),
        timestep=trace.timestep,
        name=trace.name,
        t0=trace.t0,
    )


def attach_trace(handle: SharedTraceHandle) -> LoadTrace:
    """Materialise a :class:`LoadTrace` over the handle's segment.

    The values array is a *read-only view* of the shared pages — no
    copy, and :class:`LoadTrace` adopts it as-is.  Attaches are memoised
    per segment, so a worker replaying many chunks of one workload maps
    it once.  The mapping lives until :func:`release_segment` or process
    exit; the segment itself belongs to its creator.
    """
    from multiprocessing import shared_memory

    memo = _ATTACH_MEMO.get(handle.segment)
    if memo is not None:
        _SHM_STATS["attaches"] += 1
        return memo
    shm = _OWNED.get(handle.segment) or _ATTACHED.get(handle.segment)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=handle.segment)
        except FileNotFoundError:
            raise TraceError(
                f"shared trace segment {handle.segment!r} no longer "
                "exists (was it released by its owner?)"
            ) from None
        # Python 3.11's ``SharedMemory`` registers attachments with the
        # resource tracker too (no ``track=`` parameter yet).  Pool
        # workers *share* the parent's tracker (the fd travels in the
        # spawn preparation data), whose cache is a set — so a worker's
        # duplicate register is a no-op and the owner's ``unlink``
        # performs the single balanced unregister.  Unregistering here
        # as well would make that unlink-time unregister a noisy
        # KeyError inside the tracker process.
        _ATTACHED[handle.segment] = shm
        _arm_atexit()
    arr = np.ndarray((handle.samples,), dtype=np.float64, buffer=shm.buf)
    arr.flags.writeable = False
    trace = LoadTrace(arr, handle.timestep, handle.name, handle.t0)
    _ATTACH_MEMO[handle.segment] = trace
    _SHM_STATS["attaches"] += 1
    _SHM_STATS["bytes_attached"] += handle.nbytes
    return trace


def _close_quietly(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # A LoadTrace view of the buffer is still alive somewhere; the
        # mapping then simply lives until process exit.  The *name* is
        # already gone for owned segments (unlink precedes close), so
        # nothing leaks in /dev/shm either way.
        pass


def release_segment(handle_or_name) -> None:
    """Release one segment: unlink if this process owns it, unmap if it
    merely attached.  Idempotent — releasing twice (or releasing a
    segment someone else already unlinked) is a no-op."""
    name = getattr(handle_or_name, "segment", handle_or_name)
    _ATTACH_MEMO.pop(name, None)
    shm = _OWNED.pop(name, None)
    if shm is not None:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _close_quietly(shm)
        _SHM_STATS["segments_unlinked"] += 1
        return
    shm = _ATTACHED.pop(name, None)
    if shm is not None:
        _close_quietly(shm)


def release_all_shared() -> None:
    """Release every segment this process owns or has attached (the
    ``atexit`` backstop; safe to call any time)."""
    for name in list(_OWNED) + list(_ATTACHED):
        release_segment(name)


def shm_stats() -> dict:
    """Shared-memory telemetry for ``repro cache-stats``.

    Cumulative counters plus the live picture: ``segments_live`` are
    segments this process currently owns, ``segments_attached`` foreign
    segments it has mapped.
    """
    return {
        **_SHM_STATS,
        "segments_live": len(_OWNED),
        "segments_attached": len(_ATTACHED),
    }
