"""Crash-safe decision journal: the daemon's durable decision stream.

The journal is the streaming engine's source of truth: every
reconfiguration decision is appended — length-prefixed, CRC-framed,
``fsync``'d — *before* the checkpoint that acknowledges it, so a crash
at any instant loses at most bookkeeping, never a decision.  The batch
identity contract (``tests/properties/test_prop_serve.py``) compares
journals *byte for byte*, which is why the record encoding is exact:
canonical JSON (sorted keys, compact separators) whose floats survive
``repr`` round-trips bit-identically.

Frame format, one record::

    [4-byte LE payload length][payload bytes][4-byte LE CRC32(payload)]

Recovery on open:

* a short/garbled **final** frame (a torn append, the expected result of
  ``kill -9`` mid-write) is truncated away — the record was never
  acknowledged, so dropping it is correct, not lossy;
* a CRC mismatch **mid-file** (bit rot behind acknowledged records) is
  *not* recoverable by truncation — acknowledged decisions would vanish
  — so the journal quarantines itself with :class:`JournalCorruptError`
  and leaves the bytes on disk for forensics;
* an empty or absent file opens clean with zero records.

Appends are **idempotent by index**: ``append(index, payload)`` with
``index < count`` verifies the stored bytes instead of re-writing, which
is how a resumed daemon replays through decisions it already journaled
and still produces a byte-identical file.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Union

from .. import faults

__all__ = [
    "DecisionJournal",
    "JournalError",
    "JournalCorruptError",
    "encode_record",
    "decode_record",
]

_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")
_FRAME_OVERHEAD = _LEN.size + _CRC.size

#: Refuse absurd frames early: a decision record is a few hundred bytes,
#: so a multi-megabyte length prefix is torn garbage, not data.
_MAX_PAYLOAD = 16 * 1024 * 1024


class JournalError(RuntimeError):
    """Raised for misuse of the journal (bad index, divergent replay)."""


class JournalCorruptError(JournalError):
    """A CRC mismatch behind acknowledged records: the journal is
    quarantined (left untouched on disk) rather than silently truncated."""

    def __init__(self, path: Path, index: int, reason: str):
        super().__init__(
            f"journal {path} corrupt at record {index}: {reason} "
            "(file preserved for inspection)"
        )
        self.path = path
        self.index = index
        self.reason = reason


def encode_record(fields: Dict[str, object]) -> bytes:
    """Canonical payload bytes for one decision record.

    ``json.dumps`` with sorted keys and compact separators; floats print
    via ``repr`` (shortest round-trip), so identical decision values
    always yield identical bytes — the byte-identity contract rests on
    this.
    """
    return json.dumps(
        fields, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("ascii")


def decode_record(payload: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_record`."""
    return json.loads(payload.decode("ascii"))


class DecisionJournal:
    """Append-only, fsync'd, CRC-framed record log with torn-tail repair."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._payloads: List[bytes] = []  # decisions are sparse: cheap
        self._recover()
        # Opened for appending only after recovery possibly truncated.
        self._fh = open(self.path, "ab")

    # -- recovery -----------------------------------------------------------
    def _recover(self) -> None:
        """Scan existing frames; truncate a torn tail, quarantine rot."""
        self._payloads = []
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_bytes(b"")
            return
        data = self.path.read_bytes()
        good_end = 0
        pos = 0
        n = len(data)
        while pos < n:
            if pos + _LEN.size > n:
                break  # torn length prefix
            (length,) = _LEN.unpack_from(data, pos)
            end = pos + _LEN.size + length + _CRC.size
            if length > _MAX_PAYLOAD or end > n:
                break  # torn payload/CRC (or garbage length)
            payload = data[pos + _LEN.size : pos + _LEN.size + length]
            (crc,) = _CRC.unpack_from(data, end - _CRC.size)
            if zlib.crc32(payload) != crc:
                if end == n:
                    break  # corrupt *final* frame: torn write, truncate
                raise JournalCorruptError(
                    self.path, len(self._payloads), "CRC mismatch"
                )
            self._payloads.append(payload)
            good_end = end
            pos = end
        if good_end < n:
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())

    # -- views --------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._payloads)

    def payloads(self) -> List[bytes]:
        return list(self._payloads)

    def records(self) -> List[Dict[str, object]]:
        return [decode_record(p) for p in self._payloads]

    # -- writing ------------------------------------------------------------
    def append(self, index: int, payload: bytes) -> bool:
        """Durably append record ``index``; returns True if bytes moved.

        ``index`` must be the record's position in the stream.  An index
        below :attr:`count` is a resume replaying a decision it already
        journaled: the stored bytes are *verified* against ``payload``
        (divergence means the resumed engine is not the engine that
        crashed — a :class:`JournalError`, never a silent overwrite) and
        nothing is written.  An index above :attr:`count` is a hole and
        refuses.
        """
        if index < 0 or index > self.count:
            raise JournalError(
                f"append at index {index} but journal holds {self.count} "
                f"record(s) ({self.path})"
            )
        if index < self.count:
            if self._payloads[index] != payload:
                raise JournalError(
                    f"resume divergence: record {index} already journaled "
                    f"with different bytes ({self.path})"
                )
            return False
        frame = _LEN.pack(len(payload)) + payload + _CRC.pack(
            zlib.crc32(payload)
        )
        self._fh.write(frame)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        if faults.check("journal-corrupt", str(self.path), attempt=index):
            self._flip_byte_on_disk(len(payload))
        self._payloads.append(payload)
        return True

    def _flip_byte_on_disk(self, payload_len: int) -> None:
        """``journal-corrupt`` fault: XOR one payload byte of the frame
        just written (the in-memory copy keeps the good bytes, like a
        page cache would — only a re-open sees the rot)."""
        offset = self._fh.tell() - _CRC.size - max(payload_len, 1)
        with open(self.path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "DecisionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
