"""Windowed streaming core: the batch control pass, fed one chunk at a time.

:class:`StreamingProvisioner` consumes raw rate samples in arbitrary
chunkings and emits the *exact* decision stream the batch two-phase
replay (:meth:`repro.sim.loop.EventDrivenReplay._reconfig_schedule`)
derives from the whole trace at once.  Bit-identity holds because every
step of the pipeline is arithmetic-free or replayed verbatim:

* the look-ahead-max predictor is a sliding **maximum** — pure
  comparisons, so computing it over ``tail + chunk`` sub-buffers picks
  the same float64 elements the whole-trace filter would;
* combination ids come from the same ``clipped_index``/``_row_ids``
  encoding the batch engine uses;
* the decision walk (first differing id at/after ``d_from``, blocking
  window ``td + boot + off``, out-of-table raise at the decision second)
  is the same state machine with the same memoised per-``(from, to)``
  delta math, carried across chunk boundaries in O(1) state.

Memory is **bounded**: the engine keeps the last ``window - 1`` raw
samples (the only part of the past a future window can still see), a few
counters, and the delta memo (bounded by distinct transition pairs in
the table) — nothing scales with feed length, which the property test
asserts.

End-of-feed matters: the batch predictor's final ``window - 1`` entries
are *truncated* maxima (the window clips at the series end), so those
predictions only exist once the feed declares completion —
:meth:`StreamingProvisioner.finalize` emits them.

The whole engine state round-trips through a JSON-safe ``state_dict``
(floats via ``repr``), which is what the daemon checkpoints through the
:class:`~repro.results.store.RunStore` — restoring it resumes the
decision stream mid-feed with no drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.combination import Combination, CombinationTable
from ..core.scheduler import _row_ids
from ..sim.machine import _ceil_s
from ..workload.sliding import lookahead_max
from .journal import decode_record, encode_record

__all__ = ["Decision", "StreamingProvisioner", "EngineStateError"]


class EngineStateError(RuntimeError):
    """Raised for checkpoints the engine cannot safely restore."""


def _combo_items(combo: Combination) -> Tuple[Tuple[str, int], ...]:
    """A combination as hashable ``((name, count), ...)`` in its
    normalised (big-to-little) order."""
    return tuple((p.name, c) for p, c in combo.items)


@dataclass(frozen=True)
class Decision:
    """One reconfiguration decision — the streaming twin of
    :class:`~repro.core.reconfiguration.Reconfiguration`, carrying the
    same fields with combinations flattened to ``(name, count)`` tuples
    so it serialises canonically."""

    decided_at: int
    completes_at: int
    before: Tuple[Tuple[str, int], ...]
    after: Tuple[Tuple[str, int], ...]
    boot_duration: int
    off_duration: int
    on_energy: float
    off_energy: float

    def to_payload(self) -> bytes:
        """Canonical journal bytes (see :func:`~.journal.encode_record`)."""
        return encode_record(
            {
                "t": self.decided_at,
                "until": self.completes_at,
                "before": [[n, c] for n, c in self.before],
                "after": [[n, c] for n, c in self.after],
                "boot_s": self.boot_duration,
                "off_s": self.off_duration,
                "on_j": self.on_energy,
                "off_j": self.off_energy,
            }
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "Decision":
        d = decode_record(payload)
        return cls(
            decided_at=int(d["t"]),
            completes_at=int(d["until"]),
            before=tuple((str(n), int(c)) for n, c in d["before"]),
            after=tuple((str(n), int(c)) for n, c in d["after"]),
            boot_duration=int(d["boot_s"]),
            off_duration=int(d["off_s"]),
            # Keep the parsed numeric type: the batch accumulator yields
            # int 0 when nothing starts/stops, and byte-faithful
            # re-encoding (int 0 != float 0.0 in JSON) depends on it.
            on_energy=d["on_j"],
            off_energy=d["off_j"],
        )

    def matches(self, recon) -> bool:
        """Field equality against a batch ``Reconfiguration`` record."""
        return (
            self.decided_at == recon.decided_at
            and self.completes_at == recon.completes_at
            and self.before == _combo_items(recon.before)
            and self.after == _combo_items(recon.after)
            and self.boot_duration == recon.boot_duration
            and self.off_duration == recon.off_duration
            and self.on_energy == recon.on_energy
            and self.off_energy == recon.off_energy
        )


class StreamingProvisioner:
    """Incremental look-ahead-max prediction + decision walk over a table."""

    STATE_VERSION = 1

    def __init__(
        self,
        table: CombinationTable,
        window: int = 378,
        clamp: Optional[float] = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1 second")
        self.table = table
        self.window = int(window)
        self.clamp = None if clamp is None else float(clamp)
        self._table_ids = _row_ids(table.counts_array)
        self._profiles = {p.name: p for p in table.profiles}
        # -- checkpointed state --------------------------------------------
        self._tail = np.empty(0, dtype=np.float64)  # last window-1 samples
        self._samples_in = 0  # raw samples consumed
        self._preds_out = 0  # completed predictions emitted
        self._decisions_out = 0
        self._cur_grid_idx: Optional[int] = None  # current combo's table row
        self._cur_id: Optional[int] = None  # its mixed-radix id
        self._d_from = 1  # next decision second to examine
        self._finalized = False
        # -- pure cache (rebuilt on restore, bounded by transition pairs) --
        self._delta_memo: Dict[Tuple[int, int], tuple] = {}

    # -- views ---------------------------------------------------------------
    @property
    def samples_in(self) -> int:
        return self._samples_in

    @property
    def decisions_out(self) -> int:
        return self._decisions_out

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def current(self) -> Optional[Combination]:
        """The combination currently serving (None before any prediction)."""
        if self._cur_grid_idx is None:
            return None
        return self.table.combo_at(self._cur_grid_idx)

    def state_nbytes(self) -> int:
        """Rough size of the checkpointed state — the bounded-memory
        figure the property test tracks against feed length."""
        return self._tail.nbytes + 256

    # -- feeding -------------------------------------------------------------
    def feed(self, samples: Sequence[float]) -> List[Decision]:
        """Consume raw rate samples; emit decisions now determined.

        Only *full* prediction windows complete here: the last
        ``window - 1`` samples stay pending until more data (or
        :meth:`finalize`) arrives.
        """
        if self._finalized:
            raise EngineStateError("feed() after finalize()")
        chunk = np.asarray(samples, dtype=np.float64)
        if chunk.ndim != 1:
            raise ValueError("samples must be one-dimensional")
        if chunk.size == 0:
            return []
        buf = np.concatenate([self._tail, chunk])
        new_total = self._samples_in + chunk.size
        # Predictions completed by this chunk: windows [t, t+W) fully
        # inside the data seen so far.
        new_preds = max(0, new_total - self.window + 1)
        k = new_preds - self._preds_out
        decisions: List[Decision] = []
        if k > 0:
            preds = lookahead_max(buf, self.window)[:k]
            decisions = self._advance(preds)
            self._preds_out = new_preds
        keep = self.window - 1
        self._tail = buf[-keep:].copy() if keep else np.empty(0)
        self._samples_in = new_total
        return decisions

    def finalize(self) -> List[Decision]:
        """The feed is complete: emit the truncated-window tail decisions.

        The batch predictor's final ``window - 1`` predictions are maxima
        over windows clipped at the series end; they become computable
        only now.  Idempotent.
        """
        if self._finalized:
            return []
        self._finalized = True
        n_tail = self._samples_in - self._preds_out
        if n_tail <= 0:
            return []
        # tail holds exactly the last min(window-1, n) samples = the
        # samples the remaining (truncated) windows cover; a full pass of
        # the batch filter over them yields max(tail[j:]) at each j.
        preds = lookahead_max(self._tail, self.window)
        decisions = self._advance(preds[-n_tail:])
        self._preds_out = self._samples_in
        return decisions

    # -- the decision walk ----------------------------------------------------
    def _advance(self, preds: np.ndarray) -> List[Decision]:
        """Run the batch decision rule over newly-completed predictions.

        ``preds[j]`` is the prediction for absolute second
        ``self._preds_out + j``; the walk state (current id, ``d_from``)
        carries across calls, reproducing ``_reconfig_schedule``'s
        single-pass scan chunk by chunk.
        """
        if self.clamp is not None:
            preds = np.minimum(preds, self.clamp)
        base = self._preds_out
        idx, oob = self.table.clipped_index(preds)
        cid = self._table_ids[idx]
        cid = cid.copy() if oob.any() else cid
        cid[oob] = -1
        m = len(preds)
        out: List[Decision] = []
        if self._cur_id is None:
            # pred[0]: the initial combination, like the batch engine's
            # table.combination_for(pred[0]) — raises beyond the table.
            if base != 0:
                raise EngineStateError("walk state lost before first sample")
            if bool(oob[0]):
                self.table.combination_for(float(preds[0]))
            self._cur_grid_idx = int(idx[0])
            self._cur_id = int(cid[0])
            self._d_from = 1
        while True:
            s = max(self._d_from, base)
            if s >= base + m:
                break
            rel = s - base
            mism = np.flatnonzero(cid[rel:] != self._cur_id)
            if mism.size == 0:
                # every examined second matched: resume after this chunk
                self._d_from = max(self._d_from, base + m)
                break
            td = s + int(mism[0])
            tr = td - base
            if int(cid[tr]) == -1:
                # Raises for rates beyond the table, like the walk would
                # at this decision second.
                self.table.combination_for(float(preds[tr]))
            out.append(self._decide(td, int(cid[tr]), int(idx[tr])))
        return out

    def _decide(self, td: int, new_id: int, grid_idx: int) -> Decision:
        """Fix one reconfiguration at second ``td`` and advance the walk."""
        cur = self.table.combo_at(self._cur_grid_idx)
        info = self._delta_memo.get((self._cur_id, new_id))
        if info is None:
            target = self.table.combo_at(grid_idx)
            delta = cur.diff(target)
            starts = tuple((n, d) for n, d in delta.items() if d > 0)
            stops = tuple((n, -d) for n, d in delta.items() if d < 0)
            boot_dur = 0
            on_energy = 0
            for name, cnt in starts:
                p = self._profiles[name]
                dur = _ceil_s(p.on_time)
                if dur > boot_dur:
                    boot_dur = dur
                on_energy = on_energy + cnt * p.on_energy
            off_dur = 0
            off_energy = 0
            for name, cnt in stops:
                p = self._profiles[name]
                dur = int(math.ceil(p.off_time - 1e-9))
                if dur > off_dur:
                    off_dur = dur
                off_energy = off_energy + cnt * p.off_energy
            info = (grid_idx, boot_dur, off_dur, on_energy, off_energy)
            self._delta_memo[(self._cur_id, new_id)] = info
        tgt_idx, boot_dur, off_dur, on_e, off_e = info
        target = self.table.combo_at(tgt_idx)
        until = td + boot_dur + off_dur
        decision = Decision(
            decided_at=td,
            completes_at=until,
            before=_combo_items(cur),
            after=_combo_items(target),
            boot_duration=boot_dur,
            off_duration=off_dur,
            on_energy=on_e,
            off_energy=off_e,
        )
        self._cur_grid_idx = tgt_idx
        self._cur_id = new_id
        self._decisions_out += 1
        self._d_from = until if until > td else td + 1
        return decision

    # -- checkpointing --------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot of the whole walk (floats via ``repr``
        round-trip bit-exactly through the store's JSON checkpoint)."""
        return {
            "version": self.STATE_VERSION,
            "window": self.window,
            "clamp": self.clamp,
            "table_rows": len(self.table.counts_array),
            "samples_in": self._samples_in,
            "preds_out": self._preds_out,
            "decisions_out": self._decisions_out,
            "tail": [float(v) for v in self._tail],
            "cur_grid_idx": self._cur_grid_idx,
            "cur_id": self._cur_id,
            "d_from": self._d_from,
            "finalized": self._finalized,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`state_dict` snapshot (same table required)."""
        if state.get("version") != self.STATE_VERSION:
            raise EngineStateError(
                f"checkpoint version {state.get('version')!r} != "
                f"{self.STATE_VERSION}"
            )
        if int(state["window"]) != self.window:
            raise EngineStateError(
                f"checkpoint window {state['window']} != engine window "
                f"{self.window}"
            )
        if int(state["table_rows"]) != len(self.table.counts_array):
            raise EngineStateError(
                "checkpoint was taken against a different combination table"
            )
        clamp = state.get("clamp")
        if (clamp is None) != (self.clamp is None) or (
            clamp is not None and float(clamp) != self.clamp
        ):
            raise EngineStateError("checkpoint clamp differs from engine clamp")
        self._samples_in = int(state["samples_in"])
        self._preds_out = int(state["preds_out"])
        self._decisions_out = int(state["decisions_out"])
        self._tail = np.asarray(state["tail"], dtype=np.float64)
        cur_idx = state["cur_grid_idx"]
        self._cur_grid_idx = None if cur_idx is None else int(cur_idx)
        cur_id = state["cur_id"]
        self._cur_id = None if cur_id is None else int(cur_id)
        self._d_from = int(state["d_from"])
        self._finalized = bool(state["finalized"])
        self._delta_memo = {}
