"""Feed sources: following a growing trace file, plus a test double.

The daemon's input is a **line feed**: one non-negative rate per line in
plain text, ``#`` comments and blank lines skipped, and a final ``END``
line marking feed completion (the streaming predictor's truncated tail
windows only exist once the series end is known — see
:meth:`~repro.serve.engine.StreamingProvisioner.finalize`).

:class:`TailFileSource` follows the file like ``tail -f``: it remembers
its byte offset (checkpointed by the daemon, so a resume re-reads
nothing), treats a trailing line without a newline as *incomplete* (a
write in progress — wait, don't guess), and degrades typed on malformed
complete lines: each bad record becomes a
:class:`~repro.workload.trace.TraceIngestError` carrying the feed path,
line number and byte offset, returned to the caller rather than raised,
so one corrupt record never stops the stream.

:class:`MemorySource` replays a pre-chunked sample list — the property
tests' deterministic stand-in.

:func:`append_feed` is the producer-side helper (used by tests, the
serve smoke and the README quickstart); it honours the
``feed-torn-write`` fault site by leaving its final record half-written.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from .. import faults
from ..workload.trace import TraceIngestError

__all__ = [
    "FeedChunk",
    "TailFileSource",
    "MemorySource",
    "append_feed",
    "END_SENTINEL",
]

#: Feed-completion marker: a line holding exactly this token.
END_SENTINEL = "END"


class FeedChunk:
    """One poll's worth of feed: samples, rejected records, end flag."""

    __slots__ = ("samples", "rejected", "finished")

    def __init__(
        self,
        samples: List[float],
        rejected: List[TraceIngestError],
        finished: bool,
    ):
        self.samples = samples
        self.rejected = rejected
        self.finished = finished

    def __bool__(self) -> bool:
        return bool(self.samples or self.rejected or self.finished)


def _parse_line(
    raw: str, path: Path, line_no: int, offset: int
) -> Tuple[Optional[float], Optional[TraceIngestError]]:
    """One complete feed line -> (sample, None) | (None, typed error) |
    (None, None) for skippable lines."""
    text = raw.strip()
    if not text or text.startswith("#"):
        return None, None
    try:
        value = float(text)
    except ValueError:
        return None, TraceIngestError(
            f"{path}: malformed feed record {text!r} "
            f"(line {line_no}, byte offset {offset})"
        )
    if not (value == value) or value in (float("inf"), float("-inf")):
        return None, TraceIngestError(
            f"{path}: non-finite rate {text!r} "
            f"(line {line_no}, byte offset {offset})"
        )
    if value < 0:
        return None, TraceIngestError(
            f"{path}: negative rate {text!r} "
            f"(line {line_no}, byte offset {offset})"
        )
    return value, None


class TailFileSource:
    """Follow a growing line feed from a (checkpointable) byte offset."""

    def __init__(
        self,
        path: Union[str, Path],
        offset: int = 0,
        line_no: int = 0,
        name: str = "serve",
    ):
        self.path = Path(path)
        self.offset = int(offset)
        self.line_no = int(line_no)  # complete lines consumed (diagnostics)
        self.name = name
        self.finished = False
        self._polls = 0

    def state(self) -> dict:
        return {"offset": self.offset, "line_no": self.line_no}

    def poll(self) -> FeedChunk:
        """Read every *complete* line appended since the last poll.

        A torn trailing line (no newline yet) is left for a later poll;
        the offset only ever advances past complete lines.  A feed file
        shrinking below the offset is a producer bug the daemon cannot
        reason about — typed, raised.
        """
        poll_index = self._polls
        self._polls += 1
        if self.finished:
            return FeedChunk([], [], True)
        if faults.check("feed-stall", self.name, attempt=poll_index):
            return FeedChunk([], [], False)  # the feed "produced" nothing
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return FeedChunk([], [], False)  # producer not started yet
        if size < self.offset:
            raise TraceIngestError(
                f"{self.path}: feed truncated below byte offset "
                f"{self.offset} (now {size} bytes)"
            )
        if size == self.offset:
            return FeedChunk([], [], False)
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            data = fh.read(size - self.offset)
        samples: List[float] = []
        rejected: List[TraceIngestError] = []
        pos = 0
        while True:
            nl = data.find(b"\n", pos)
            if nl < 0:
                break  # incomplete trailing record: wait for its newline
            raw = data[pos:nl].decode("utf-8", errors="replace")
            line_offset = self.offset + pos
            pos = nl + 1
            self.line_no += 1
            if raw.strip() == END_SENTINEL:
                self.finished = True
                self.offset += pos
                return FeedChunk(samples, rejected, True)
            value, err = _parse_line(raw, self.path, self.line_no, line_offset)
            if err is not None:
                rejected.append(err)
            elif value is not None:
                samples.append(value)
        self.offset += pos
        return FeedChunk(samples, rejected, False)


class MemorySource:
    """Replay pre-chunked samples — the deterministic test double.

    Each poll yields the next chunk; after the last chunk the source
    reports completion (``end=True``, the default) or keeps returning
    empty chunks like a stalled feed.
    """

    def __init__(
        self,
        chunks: Sequence[Sequence[float]],
        end: bool = True,
        name: str = "serve",
    ):
        self._chunks = [list(c) for c in chunks]
        self._end = end
        self._next = 0
        self.name = name
        self.finished = False
        self._polls = 0

    def state(self) -> dict:
        return {"offset": self._next, "line_no": self._next}

    def poll(self) -> FeedChunk:
        poll_index = self._polls
        self._polls += 1
        if self.finished:
            return FeedChunk([], [], True)
        if faults.check("feed-stall", self.name, attempt=poll_index):
            return FeedChunk([], [], False)
        if self._next < len(self._chunks):
            chunk = self._chunks[self._next]
            self._next += 1
            return FeedChunk(list(chunk), [], False)
        if self._end:
            self.finished = True
            return FeedChunk([], [], True)
        return FeedChunk([], [], False)


def append_feed(
    path: Union[str, Path],
    values: Sequence[float],
    end: bool = False,
    attempt: int = 0,
) -> int:
    """Append rate records (and optionally the ``END`` marker) to a feed.

    Returns the bytes written.  Honours the ``feed-torn-write`` fault
    site (keyed by the feed path): when armed, the final record of this
    call is cut in half mid-line with no newline — the torn write a
    crashed producer leaves behind.
    """
    path = Path(path)
    lines = [f"{float(v):.6f}\n" for v in values]
    if end:
        lines.append(END_SENTINEL + "\n")
    data = "".join(lines).encode("ascii")
    if lines and faults.check("feed-torn-write", str(path), attempt=attempt):
        keep = len(data) - len(lines[-1].encode("ascii")) // 2 - 1
        data = data[:max(keep, 0)]
    with open(path, "ab") as fh:
        fh.write(data)
        fh.flush()
    return len(data)
