"""The ``repro serve`` daemon: poll, predict, decide, journal, checkpoint.

One loop wires the pieces together: a feed source
(:class:`~repro.serve.source.TailFileSource`) is polled for newly
complete records, the streaming engine
(:class:`~repro.serve.engine.StreamingProvisioner`) turns them into
reconfiguration decisions, every decision is appended to the crash-safe
journal (:class:`~repro.serve.journal.DecisionJournal`) **before** the
engine+source state is checkpointed through the
:class:`~repro.results.store.RunStore` — the ordering that makes
``--resume`` after ``kill -9`` byte-identical to an uninterrupted run
(re-derived decisions verify against already-journaled bytes instead of
re-appending).

Failure model:

* **feed stall** — no new data past ``stall_timeout_s``: the daemon
  holds the last plan, flips its health file to ``stalled`` (one event,
  not one per poll) and keeps polling; fresh data flips it back.
* **malformed / torn records** — typed
  :class:`~repro.workload.trace.TraceIngestError` per bad record with
  byte offsets, counted and surfaced in health; the stream continues.
* **SIGTERM / SIGINT** — finish the in-flight chunk, flush journal +
  checkpoint, mark health ``stopped``, exit cleanly; a later
  ``--resume`` continues exactly.
* **crash (``kill -9`` / ``serve-crash`` fault)** — nothing to do at
  crash time, by construction: the journal holds every acknowledged
  decision, the checkpoint holds a consistent (engine, source) cut at
  or behind it.

Health is a heartbeat JSON file next to the journal (``repro serve
--status`` reads it): status, generation, counters, and the most recent
events.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .. import faults
from ..results.store import RunStore
from .engine import Decision, StreamingProvisioner
from .journal import DecisionJournal
from .source import TailFileSource

__all__ = ["ServeConfig", "ServeDaemon", "ServeError", "read_health"]

JOURNAL_FILE = "journal.bin"
HEALTH_FILE = "health.json"
_MAX_EVENTS = 20


class ServeError(RuntimeError):
    """Raised for daemon misuse: bad resume, config drift, missing state."""


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serve run is parameterised by.

    The decision-relevant fields (``window``, ``max_rate``, ``method``,
    ``profiles``) are pinned into the checkpoint: a ``--resume`` under a
    different configuration would silently fork the decision stream, so
    it refuses instead.
    """

    feed: Path
    state_dir: Path
    window: int = 378
    max_rate: float = 5000.0
    method: str = "greedy"
    profiles: str = "table1"
    name: str = "serve"
    poll_s: float = 0.05
    stall_timeout_s: float = 5.0
    checkpoint_every: int = 3600  # samples between periodic checkpoints

    def decision_key(self) -> Dict[str, object]:
        """The config fields a checkpoint must match to be resumable."""
        return {
            "feed": str(self.feed),
            "window": self.window,
            "max_rate": self.max_rate,
            "method": self.method,
            "profiles": self.profiles,
        }


def read_health(state_dir: Union[str, Path]) -> Optional[Dict[str, object]]:
    """The daemon's last heartbeat, or ``None`` if it never wrote one."""
    path = Path(state_dir) / HEALTH_FILE
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except ValueError:
        return None  # torn heartbeat: the next beat overwrites it


def _build_table(config: ServeConfig):
    from ..core.bml import design
    from ..core.profiles import illustrative_profiles, table_i_profiles

    builders = {"table1": table_i_profiles, "illustrative": illustrative_profiles}
    try:
        profs = builders[config.profiles]()
    except KeyError:
        raise ServeError(
            f"unknown profile set {config.profiles!r} "
            f"(expected one of {sorted(builders)})"
        )
    return design(profs).table(config.max_rate, config.method)


class ServeDaemon:
    """One streaming provisioning run over one feed."""

    def __init__(
        self,
        config: ServeConfig,
        resume: bool = False,
        table=None,
        source=None,
    ):
        self.config = config
        self.name = config.name
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.store = RunStore(self.state_dir)
        self.table = table if table is not None else _build_table(config)
        self.engine = StreamingProvisioner(self.table, window=config.window)
        self.generation = 0
        self.rejected = 0
        self._events: List[str] = []
        self._status = "starting"
        self._stop_signum: Optional[int] = None
        self._samples_since_ckpt = 0

        checkpoint = self.store.load_state(self.name)
        if not resume and checkpoint is not None:
            raise ServeError(
                f"{self.state_dir} already holds serve state for "
                f"{self.name!r}; pass --resume to continue it or remove "
                "the directory to start over"
            )
        # Journal open runs recovery: torn tails truncate here, mid-file
        # corruption raises JournalCorruptError before any work happens.
        self.journal = DecisionJournal(self.state_dir / JOURNAL_FILE)
        if resume:
            if checkpoint is None:
                raise ServeError(
                    f"nothing to resume: no serve checkpoint for "
                    f"{self.name!r} in {self.state_dir}"
                )
            self._restore(checkpoint, source)
        else:
            if self.journal.count:
                raise ServeError(
                    f"{self.state_dir} holds a journal with "
                    f"{self.journal.count} record(s) but no checkpoint; "
                    "refusing to overwrite it"
                )
            self.source = (
                source
                if source is not None
                else TailFileSource(config.feed, name=self.name)
            )
        self._decision_index = self.engine.decisions_out

    def _restore(self, checkpoint: Dict[str, object], source) -> None:
        stored_key = checkpoint.get("config")
        if stored_key != self.config.decision_key():
            raise ServeError(
                "resume refused: checkpoint was taken under a different "
                f"configuration ({stored_key} != {self.config.decision_key()})"
            )
        self.engine.restore(checkpoint["engine"])
        if self.journal.count < self.engine.decisions_out:
            raise ServeError(
                f"journal holds {self.journal.count} record(s) but the "
                f"checkpoint acknowledged {self.engine.decisions_out}; "
                "acknowledged decisions are missing — refusing to resume"
            )
        self.generation = int(checkpoint.get("generation", 0)) + 1
        self.rejected = int(checkpoint.get("rejected", 0))
        src_state = checkpoint.get("source", {})
        if source is not None:
            self.source = source
        else:
            self.source = TailFileSource(
                self.config.feed,
                offset=int(src_state.get("offset", 0)),
                line_no=int(src_state.get("line_no", 0)),
                name=self.name,
            )

    # -- health -------------------------------------------------------------
    def _event(self, message: str) -> None:
        self._events.append(message)
        del self._events[:-_MAX_EVENTS]

    def _write_health(self) -> None:
        payload = {
            "name": self.name,
            "pid": os.getpid(),
            "status": self._status,
            "generation": self.generation,
            "samples_in": self.engine.samples_in,
            "decisions": self.engine.decisions_out,
            "journal_records": self.journal.count,
            "rejected": self.rejected,
            "feed": str(self.config.feed),
            "events": list(self._events),
            "updated_at": time.time(),
        }
        tmp = self.state_dir / (HEALTH_FILE + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, self.state_dir / HEALTH_FILE)

    # -- persistence --------------------------------------------------------
    def _commit(self, decisions: List[Decision]) -> None:
        """Journal decisions durably, then crash-test, then nothing.

        A resumed generation re-derives decisions the crashed one
        already journaled: ``append`` verifies those byte-for-byte and
        writes nothing, so the final file is identical either way.
        """
        appended = 0
        for decision in decisions:
            if self.journal.append(self._decision_index, decision.to_payload()):
                appended += 1
            self._decision_index += 1
        if appended:
            # The nastiest instant: decisions journaled, checkpoint not
            # yet taken.  attempt = generation, so a transient fault
            # crashes the first run and lets --resume finish.
            faults.fire("serve-crash", self.name, attempt=self.generation)

    def _checkpoint(self) -> None:
        self.store.save_state(
            self.name,
            {
                "config": self.config.decision_key(),
                "engine": self.engine.state_dict(),
                "source": self.source.state(),
                "generation": self.generation,
                "rejected": self.rejected,
                "journal_records": self.journal.count,
                "status": self._status,
            },
        )
        self._samples_since_ckpt = 0

    # -- the loop -----------------------------------------------------------
    def _handle_signal(self, signum, frame) -> None:
        self._stop_signum = signum

    def run(self, max_polls: Optional[int] = None) -> str:
        """Drive the feed to completion (or signal/poll budget).

        Returns the terminal status: ``"done"`` (feed END reached),
        ``"stopped"`` (SIGTERM/SIGINT or ``max_polls`` — state flushed,
        resumable).
        """
        previous = {}
        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                previous[sig] = signal.signal(sig, self._handle_signal)
        except ValueError:
            previous = {}  # not the main thread (tests): run unguarded
        last_data = time.monotonic()
        stalled = False
        polls = 0
        self._status = "running"
        # A checkpoint exists from the first instant: a crash before the
        # first periodic checkpoint must still leave a resumable base.
        self._checkpoint()
        self._write_health()
        try:
            while True:
                if self._stop_signum is not None:
                    self._status = "stopped"
                    self._event(
                        f"signal {self._stop_signum}: flushed journal + "
                        "checkpoint"
                    )
                    self._checkpoint()
                    self._write_health()
                    return "stopped"
                chunk = self.source.poll()
                polls += 1
                for err in chunk.rejected:
                    self.rejected += 1
                    self._event(f"rejected: {err}")
                if chunk.samples:
                    last_data = time.monotonic()
                    if stalled:
                        stalled = False
                        self._status = "running"
                        self._event("feed resumed after stall")
                    self._commit(self.engine.feed(chunk.samples))
                    self._samples_since_ckpt += len(chunk.samples)
                    if self._samples_since_ckpt >= self.config.checkpoint_every:
                        self._checkpoint()
                    self._write_health()
                if chunk.finished:
                    self._commit(self.engine.finalize())
                    self._status = "done"
                    self._event(
                        f"feed complete: {self.engine.samples_in} samples, "
                        f"{self.journal.count} decisions"
                    )
                    self._checkpoint()
                    self._write_health()
                    return "done"
                if not chunk.samples:
                    idle_for = time.monotonic() - last_data
                    if not stalled and idle_for >= self.config.stall_timeout_s:
                        # Graceful degradation: hold the last plan, say
                        # so once, keep listening.
                        stalled = True
                        self._status = "stalled"
                        self._event(
                            f"feed stalled for {idle_for:.2f}s: holding "
                            "last plan"
                        )
                        self._checkpoint()
                        self._write_health()
                    if max_polls is not None and polls >= max_polls:
                        self._status = "stopped"
                        self._event(f"poll budget ({max_polls}) exhausted")
                        self._checkpoint()
                        self._write_health()
                        return "stopped"
                    time.sleep(self.config.poll_s)
                elif max_polls is not None and polls >= max_polls:
                    self._status = "stopped"
                    self._event(f"poll budget ({max_polls}) exhausted")
                    self._checkpoint()
                    self._write_health()
                    return "stopped"
        finally:
            self.journal.close()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
