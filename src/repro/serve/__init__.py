"""Streaming provisioning: the batch replay's decision rule, online.

``repro serve`` (PR 10) turns the two-phase replay from batch-offline
into a long-running daemon: a tail reader follows a growing rate feed,
a windowed streaming core re-derives the batch engine's reconfiguration
decisions incrementally with bounded memory, a crash-safe journal makes
every decision durable before it is acknowledged, and periodic
checkpoints through the :class:`~repro.results.store.RunStore` let
``--resume`` continue *exactly* after any crash.

The contract (pinned by ``tests/properties/test_prop_serve.py``): for
any chunking of the feed, with or without crashes and resumes, the
journal is byte-identical to the one an uninterrupted batch-equivalent
run writes, and each journaled decision equals the batch engine's
:class:`~repro.core.reconfiguration.Reconfiguration` field for field.

Layout::

    source.py    tail-reader + in-memory feed sources, feed writer
    engine.py    incremental sliding-max predictor + decision walk
    journal.py   CRC-framed fsync'd append log with torn-tail repair
    daemon.py    the poll loop: health, stalls, signals, checkpoints
"""

from .daemon import ServeConfig, ServeDaemon, ServeError, read_health
from .engine import Decision, EngineStateError, StreamingProvisioner
from .journal import DecisionJournal, JournalCorruptError, JournalError
from .source import (
    END_SENTINEL,
    FeedChunk,
    MemorySource,
    TailFileSource,
    append_feed,
)

__all__ = [
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "read_health",
    "Decision",
    "EngineStateError",
    "StreamingProvisioner",
    "DecisionJournal",
    "JournalCorruptError",
    "JournalError",
    "END_SENTINEL",
    "FeedChunk",
    "MemorySource",
    "TailFileSource",
    "append_feed",
]
