"""Energy-proportionality metrics.

Implements the two metrics of Varsamopoulos et al. the related-work
section leans on, plus the comparative statistics the paper reports:

* **IPR** (Idle-to-Peak Ratio) — ``idle_power / peak_power``; the *lower*
  the better (0 = no idle draw).  The paper phrases the problem as "idle
  consumption can amount up to 50 % of peak", i.e. IPR = 0.5.
* **LDR** (Linear Deviation Ratio) — maximum relative deviation of the
  actual power curve from the straight line between the idle and peak
  points; 0 = perfectly linear, positive = bulges above the line
  (sub-proportional), negative = below.
* **proportionality gap** — mean over the rate axis of
  ``(P(r) - P_ideal(r)) / P_peak`` where ``P_ideal`` is the through-origin
  proportional line; 0 for a perfectly proportional system.
* per-day **overhead vs a reference** (used for "BML consumes 32 % more
  than the lower bound on average, min 6.8 %, max 161.4 %").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Union

import numpy as np

__all__ = [
    "ipr",
    "ldr",
    "proportionality_gap",
    "OverheadStats",
    "overhead_stats",
    "energy_savings",
]


def _curve(powers: Sequence[float]) -> np.ndarray:
    arr = np.asarray(powers, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need a 1-D power curve with at least 2 points")
    return arr


def ipr(powers: Sequence[float]) -> float:
    """Idle-to-Peak Ratio of a power curve sampled from rate 0 to max.

    ``powers[0]`` is the idle draw, ``powers[-1]`` the peak draw.
    """
    arr = _curve(powers)
    if arr[-1] <= 0:
        raise ValueError("peak power must be > 0")
    return float(arr[0] / arr[-1])


def ldr(powers: Sequence[float]) -> float:
    """Linear Deviation Ratio: max relative deviation from the idle-peak line.

    Positive values mean the curve bulges above the line (consumes more
    than the linear interpolation at intermediate rates).
    """
    arr = _curve(powers)
    x = np.linspace(0.0, 1.0, len(arr))
    line = arr[0] + (arr[-1] - arr[0]) * x
    with np.errstate(divide="ignore", invalid="ignore"):
        dev = np.where(line > 0, (arr - line) / np.where(line > 0, line, 1.0), 0.0)
    idx = int(np.argmax(np.abs(dev)))
    return float(dev[idx])


def proportionality_gap(powers: Sequence[float]) -> float:
    """Mean normalised distance to the through-origin proportional line.

    The ideal energy-proportional system draws ``P_peak * r / r_max`` at
    rate ``r``; the gap averages the (signed) excess over the rate axis,
    normalised by peak power.  0 = perfectly proportional; the BML
    combination's gap shrinks toward the *BML linear* reference as more
    heterogeneity is added.
    """
    arr = _curve(powers)
    if arr[-1] <= 0:
        raise ValueError("peak power must be > 0")
    ideal = arr[-1] * np.linspace(0.0, 1.0, len(arr))
    return float(np.mean((arr - ideal) / arr[-1]))


@dataclass(frozen=True)
class OverheadStats:
    """Per-day relative overhead statistics vs a reference scenario."""

    mean: float
    minimum: float
    maximum: float
    median: float
    per_day: np.ndarray

    def describe(self) -> str:
        return (
            f"avg {100 * self.mean:.1f}% / min {100 * self.minimum:.1f}% / "
            f"max {100 * self.maximum:.1f}%"
        )


def overhead_stats(
    energy: Sequence[float], reference: Sequence[float]
) -> OverheadStats:
    """Relative per-day overhead of ``energy`` vs ``reference``.

    This is the statistic of the paper's headline result: "on average over
    86 days, [BML] consumes 32 % more energy than the lower bound, minimum
    6.8 % and maximum 161.4 %".
    """
    e = np.asarray(energy, dtype=float)
    r = np.asarray(reference, dtype=float)
    if e.shape != r.shape or e.ndim != 1 or e.size == 0:
        raise ValueError("energy and reference must be equal-length 1-D series")
    if np.any(r <= 0):
        raise ValueError("reference energies must be > 0")
    ov = e / r - 1.0
    return OverheadStats(
        mean=float(np.mean(ov)),
        minimum=float(np.min(ov)),
        maximum=float(np.max(ov)),
        median=float(np.median(ov)),
        per_day=ov,
    )


def energy_savings(energy: float, baseline: float) -> float:
    """Fractional savings of ``energy`` relative to ``baseline`` (0..1)."""
    if baseline <= 0:
        raise ValueError("baseline energy must be > 0")
    return 1.0 - energy / baseline
