"""Series builders for every figure of the paper.

Each ``figN_series`` function returns the exact data a plot of that figure
needs — benchmarks print them as tables and dump CSVs, and any plotting
front-end can consume them unchanged.  Keeping figure *data* generation in
the library (rather than in the benchmark scripts) makes the
reproductions testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.bml import BMLInfrastructure
from ..core.combination import ideal_table
from ..core.profiles import ArchitectureProfile
from ..sim.results import SimulationResult
from .metrics import OverheadStats, overhead_stats

__all__ = [
    "FigureSeries",
    "fig1_series",
    "fig2_series",
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "scenario_series",
    "suite_series",
]


@dataclass
class FigureSeries:
    """One reproducible figure: named (x, y) series plus annotations."""

    figure: str
    x_label: str
    y_label: str
    series: Dict[str, Tuple[np.ndarray, np.ndarray]]
    annotations: Dict[str, object] = field(default_factory=dict)

    def rows(self, step: int = 1) -> List[Dict[str, object]]:
        """Long-format rows (series, x, y) for tables/CSV, downsampled."""
        out: List[Dict[str, object]] = []
        for name, (x, y) in self.series.items():
            for i in range(0, len(x), step):
                out.append(
                    {"series": name, "x": float(x[i]), "y": float(y[i])}
                )
        return out


def _stack_curve(
    prof: ArchitectureProfile, max_rate: float, resolution: float = 1.0
) -> Tuple[np.ndarray, np.ndarray]:
    rates = np.arange(0.0, max_rate + resolution / 2, resolution)
    return rates, np.asarray(prof.stack_power(rates), dtype=float)


def fig1_series(
    profiles: Sequence[ArchitectureProfile],
    kept: Sequence[str],
    removed: Mapping[str, str],
    max_rate: Optional[float] = None,
) -> FigureSeries:
    """Fig. 1: repeated power profiles of candidate architectures.

    Every architecture's homogeneous-stack power over the rate axis, with
    the Step 2 verdict (kept as BML candidate / removed with reason) in
    the annotations.
    """
    max_rate = max_rate or max(p.max_perf for p in profiles) * 1.2
    series = {p.name: _stack_curve(p, max_rate) for p in profiles}
    return FigureSeries(
        figure="fig1",
        x_label="performance rate (application metric)",
        y_label="power (W)",
        series=series,
        annotations={"kept": list(kept), "removed": dict(removed)},
    )


def fig2_series(
    infra: BMLInfrastructure,
    max_rate: Optional[float] = None,
) -> FigureSeries:
    """Fig. 2: crossing points, Step 3 (left) and Step 4 (right).

    Series: each surviving architecture's single-node power line, the
    homogeneous stack of the next-smaller architecture (Step 3 adversary)
    and the ideal mixed combination of all smaller architectures (Step 4
    adversary).  Thresholds land where the big line dips under the
    adversary curves.
    """
    ordered = infra.ordered
    max_rate = max_rate or ordered[0].max_perf
    rates = np.arange(0.0, max_rate + infra.resolution / 2, infra.resolution)
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for i, prof in enumerate(ordered):
        ok = rates <= prof.max_perf
        series[f"{prof.name} (single node)"] = (
            rates[ok],
            prof.idle_power + prof.slope * rates[ok],
        )
        if i < len(ordered) - 1:
            nxt = ordered[i + 1]
            series[f"{nxt.name} stack (step3 adversary of {prof.name})"] = (
                rates[ok],
                np.asarray(nxt.stack_power(rates[ok]), dtype=float),
            )
            smaller = ordered[i + 1 :]
            tbl = ideal_table(smaller, float(rates[ok][-1]), infra.resolution)
            idx = np.ceil(rates[ok] / infra.resolution - 1e-9).astype(int)
            series[f"ideal mix below {prof.name} (step4 adversary)"] = (
                rates[ok],
                tbl[np.clip(idx, 0, len(tbl) - 1)],
            )
    return FigureSeries(
        figure="fig2",
        x_label="performance rate (application metric)",
        y_label="power (W)",
        series=series,
        annotations={
            "step3_thresholds": dict(infra.step3_thresholds),
            "step4_thresholds": dict(infra.thresholds),
        },
    )


def fig3_series(
    profiles: Sequence[ArchitectureProfile],
    points_per_profile: int = 50,
) -> FigureSeries:
    """Fig. 3: measured power/performance profile of each architecture.

    Single-node linear profiles from idle to (maxPerf, maxPower), i.e. the
    Step 1 output plotted for the five machines.
    """
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for p in profiles:
        rates = np.linspace(0.0, p.max_perf, points_per_profile)
        series[p.name] = (rates, p.idle_power + p.slope * rates)
    return FigureSeries(
        figure="fig3",
        x_label="performance (requests/s)",
        y_label="power (W)",
        series=series,
        annotations={
            p.name: {
                "max_perf": p.max_perf,
                "idle_power": p.idle_power,
                "max_power": p.max_power,
            }
            for p in profiles
        },
    )


def fig4_series(
    infra: BMLInfrastructure,
    max_rate: Optional[float] = None,
    method: str = "greedy",
) -> FigureSeries:
    """Fig. 4: BML combination power vs Big-only vs the BML-linear goal.

    The combination curve is evaluated up to ``maxPerf_Big`` (the paper's
    range) by default.
    """
    max_rate = max_rate or infra.big.max_perf
    rates = np.arange(0.0, max_rate + infra.resolution / 2, infra.resolution)
    bml_power = infra.power_curve(rates, method=method)
    big_power = np.asarray(infra.big.stack_power(rates), dtype=float)
    linear = np.asarray(infra.bml_linear_power(rates), dtype=float)
    return FigureSeries(
        figure="fig4",
        x_label="performance rate (requests/s)",
        y_label="power (W)",
        series={
            "BML combination": (rates, bml_power),
            "Big only": (rates, big_power),
            "BML linear": (rates, linear),
        },
        annotations={"thresholds": dict(infra.thresholds), "method": method},
    )


def scenario_series(runs: Sequence) -> FigureSeries:
    """Per-day energy of a scenario-suite run (Fig. 5 generalised).

    ``runs`` are :class:`repro.scenarios.runner.ScenarioRun` objects
    (duck-typed on ``.spec``/``.result``/``.qos()`` to keep this module
    free of a scenarios dependency).  Unlike :func:`fig5_series`, the
    scenarios may cover different day counts — each series keeps its own
    x axis.
    """
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    annotations: Dict[str, object] = {}
    for run in runs:
        daily = run.result.per_day_energy_kwh()
        series[run.spec.name] = (np.arange(len(daily)), daily)
        annotations[run.spec.name] = {
            "label": run.result.scenario,
            "total_kwh": run.result.total_energy_kwh,
            "reconfigurations": run.result.n_reconfigurations,
            "served_fraction": run.qos().served_fraction,
        }
    return FigureSeries(
        figure="scenario-suite",
        x_label="day",
        y_label="energy (kWh)",
        series=series,
        annotations=annotations,
    )


def suite_series(report) -> FigureSeries:
    """Per-day energy of a :class:`~repro.results.report.SuiteReport`.

    The stored-record counterpart of :func:`scenario_series`: series come
    from :class:`~repro.results.record.ScenarioResult` records (live suite
    runs or a :class:`~repro.results.store.RunStore` query), so figures
    can be re-rendered from persisted artifacts without replaying
    anything.  Duck-typed on ``report.results`` to keep this module free
    of a results dependency.
    """
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    annotations: Dict[str, object] = {}
    for rec in report.results:
        daily = rec.per_day_energy_kwh()
        series[rec.name] = (np.arange(len(daily)), daily)
        annotations[rec.name] = {
            "label": rec.label,
            "total_kwh": rec.total_energy_kwh,
            "reconfigurations": rec.n_reconfigurations,
            "served_fraction": rec.served_fraction,
        }
    return FigureSeries(
        figure="scenario-suite",
        x_label="day",
        y_label="energy (kWh)",
        series=series,
        annotations=annotations,
    )


def fig5_series(
    results: Sequence[SimulationResult],
    reference: Optional[SimulationResult] = None,
) -> FigureSeries:
    """Fig. 5: per-day energy of every scenario over the replayed days.

    ``reference`` (the theoretical lower bound) adds the paper's headline
    overhead statistics to the annotations.
    """
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for r in results:
        daily = r.per_day_energy_kwh()
        days = np.arange(len(daily))
        series[r.scenario] = (days, daily)
    annotations: Dict[str, object] = {
        r.scenario: {
            "total_kwh": r.total_energy_kwh,
            "reconfigurations": r.n_reconfigurations,
            "violation_seconds": r.qos().violation_seconds,
        }
        for r in results
    }
    if reference is not None:
        ref_daily = reference.per_day_energy()
        for r in results:
            if r is reference:
                continue
            stats = overhead_stats(r.per_day_energy(), ref_daily)
            annotations[f"{r.scenario} vs {reference.scenario}"] = {
                "avg_overhead": stats.mean,
                "min_overhead": stats.minimum,
                "max_overhead": stats.maximum,
            }
    return FigureSeries(
        figure="fig5",
        x_label="day",
        y_label="energy (kWh)",
        series=series,
        annotations=annotations,
    )
