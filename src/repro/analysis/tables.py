"""Plain-text table rendering for benchmark and CLI reports.

No plotting dependencies are assumed offline; every figure reproduction
emits its series as aligned ASCII tables and (optionally) CSV files that
can be re-plotted anywhere.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = ["render_table", "render_suite", "write_csv", "format_value"]

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 3) -> str:
    """Human-friendly cell formatting (compact floats, em-dash for None)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render dict-rows as an aligned monospace table.

    Column order follows ``columns`` when given, else the keys of the
    first row.  Numeric columns are right-aligned.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [
        [format_value(row.get(c), precision) for c in cols] for row in rows
    ]
    numeric = [
        all(isinstance(row.get(c), (int, float)) or row.get(c) is None for row in rows)
        for c in cols
    ]
    widths = [
        max(len(cols[i]), *(len(r[i]) for r in rendered)) for i in range(len(cols))
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(
        c.rjust(w) if num else c.ljust(w)
        for c, w, num in zip(cols, widths, numeric)
    )
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rendered:
        out.write(
            "  ".join(
                cell.rjust(w) if num else cell.ljust(w)
                for cell, w, num in zip(r, widths, numeric)
            )
            + "\n"
        )
    return out.getvalue().rstrip("\n")


def render_suite(report, title: Optional[str] = "scenario suite") -> str:
    """Render a :class:`~repro.results.report.SuiteReport` summary table.

    Duck-typed on ``report.rows()`` (this module stays free of a results
    dependency); the report contributes the row shape — including the
    ``saved_vs_baseline`` column when a baseline is set — and this module
    contributes the alignment rules shared by every CLI table.
    """
    return render_table(report.rows(), title=title)


def write_csv(
    path: Union[str, Path],
    rows: Sequence[Mapping[str, Cell]],
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Dump dict-rows to CSV (same column rules as :func:`render_table`)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    cols = list(columns) if columns is not None else list(rows[0].keys())
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c) for c in cols})
