"""Terminal charts: sparklines and multi-series line plots in plain text.

No plotting stack is available offline, so the CLI and the benchmark
reports render figure series directly in the terminal: single-line
sparklines (Unicode block elements) for compact summaries, and a braille-
free ASCII canvas for full figures like Fig. 4/5.  Everything degrades to
pure ASCII with ``unicode=False``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_ASCII = ".:-=+*#%@"


def sparkline(
    values: Sequence[float],
    width: Optional[int] = None,
    unicode: bool = True,
) -> str:
    """One-line chart of a series (resampled to ``width`` columns).

    Values map linearly from the series' min..max to block heights; a
    constant series renders mid-height.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("sparkline needs a non-empty 1-D series")
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        # max-pool into `width` buckets so peaks stay visible
        idx = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].max() if b > a else arr[min(a, arr.size - 1)]
             for a, b in zip(idx[:-1], idx[1:])]
        )
    glyphs = _BLOCKS if unicode else _ASCII
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return glyphs[len(glyphs) // 2] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(glyphs) - 1)
    return "".join(glyphs[int(round(v))] for v in scaled)


def line_chart(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series ASCII chart (one marker character per series).

    ``series`` maps names to ``(x, y)`` pairs — the same structure as
    :class:`~repro.analysis.figures.FigureSeries.series` — so any paper
    figure can be eyeballed straight from the terminal.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    markers = "*o+x@#%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if xs_all.size == 0:
        raise ValueError("empty series")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for (name, (x, y)), marker in zip(series.items(), markers):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        cols = ((x - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int)
        rows = ((y - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker
        legend.append(f"{marker} {name}")

    lines = []
    if y_label:
        lines.append(y_label)
    top = f"{y_hi:.6g}"
    bottom = f"{y_lo:.6g}"
    pad = max(len(top), len(bottom))
    for i, row in enumerate(canvas):
        label = top if i == 0 else (bottom if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    xspan = f"{x_lo:.6g}{' ' * max(1, width - len(f'{x_lo:.6g}') - len(f'{x_hi:.6g}'))}{x_hi:.6g}"
    lines.append(" " * (pad + 2) + xspan)
    if x_label:
        lines.append(" " * (pad + 2) + x_label)
    lines.append("  ".join(legend))
    return "\n".join(lines)
