"""Analysis helpers: proportionality metrics, figure series, tables, charts."""

from .charts import line_chart, sparkline
from .figures import (
    FigureSeries,
    fig1_series,
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
    scenario_series,
    suite_series,
)
from .metrics import (
    OverheadStats,
    energy_savings,
    ipr,
    ldr,
    overhead_stats,
    proportionality_gap,
)
from .tables import format_value, render_suite, render_table, write_csv

__all__ = [
    "ipr",
    "ldr",
    "proportionality_gap",
    "OverheadStats",
    "overhead_stats",
    "energy_savings",
    "FigureSeries",
    "fig1_series",
    "fig2_series",
    "fig3_series",
    "fig4_series",
    "fig5_series",
    "scenario_series",
    "suite_series",
    "render_table",
    "render_suite",
    "write_csv",
    "format_value",
    "sparkline",
    "line_chart",
]
