"""Machine model: a single server with power states and transition costs.

The finite state machine mirrors what the paper measures on real hardware
(Table I's On/Off durations and energies)::

    OFF --power_on()--> BOOTING --(on_time elapses)--> ON
    ON --power_off()--> STOPPING --(off_time elapses)--> OFF

Power draw per state:

* ``OFF`` — 0 W;
* ``BOOTING`` — ``on_energy / ceil(on_time)`` W, so the integral over the
  (integer-second) boot window equals the measured ``on_energy`` exactly;
* ``ON`` — the linear model ``idle + slope * load``;
* ``STOPPING`` — ``off_energy / ceil(off_time)`` W, same convention.

State changes and load assignments are reported to an
:class:`~repro.sim.energy.EnergyMeter` so energy is integrated exactly
over arbitrary (non-integer) intervals.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.profiles import ArchitectureProfile
from .energy import EnergyMeter

__all__ = ["MachineState", "Machine", "MachineError"]


class MachineError(RuntimeError):
    """Raised on invalid state transitions or load assignments."""


class MachineState(enum.Enum):
    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    STOPPING = "stopping"


def _ceil_s(x: float) -> int:
    return int(math.ceil(x - 1e-9))


@dataclass
class Machine:
    """One physical server of a given architecture."""

    machine_id: str
    profile: ArchitectureProfile
    meter: EnergyMeter
    state: MachineState = MachineState.OFF
    load: float = 0.0
    #: time the current transition completes (boot/stop), else None
    transition_ends: Optional[float] = None
    boots: int = 0
    shutdowns: int = 0

    def __post_init__(self) -> None:
        # The transition draws are pure profile constants; precomputing
        # them keeps the replay's plan-building off the ceil/div path.
        self._boot_draw = self.profile.on_energy / max(
            _ceil_s(self.profile.on_time), 1
        )
        self._stop_draw = self.profile.off_energy / max(
            _ceil_s(self.profile.off_time), 1
        )
        self.meter.set_power(self.machine_id, 0.0, 0.0)

    # -- state queries ------------------------------------------------------
    @property
    def is_serving_capable(self) -> bool:
        return self.state is MachineState.ON

    @property
    def power_draw(self) -> float:
        """Instantaneous draw implied by state and load."""
        if self.state is MachineState.OFF:
            return 0.0
        if self.state is MachineState.BOOTING:
            return self._boot_draw
        if self.state is MachineState.STOPPING:
            return self._stop_draw
        return self.profile.idle_power + self.profile.slope * self.load

    # -- transitions ----------------------------------------------------------
    def power_on(self, now: float) -> float:
        """Begin booting; returns the completion time."""
        if self.state is not MachineState.OFF:
            raise MachineError(
                f"{self.machine_id}: power_on from {self.state.name}"
            )
        self.state = MachineState.BOOTING
        self.load = 0.0
        self.transition_ends = now + _ceil_s(self.profile.on_time)
        self.boots += 1
        self.meter.set_power(self.machine_id, self.power_draw, now)
        return self.transition_ends

    def complete_boot(self, now: float) -> None:
        """Boot finished: the machine is ON and idle."""
        if self.state is not MachineState.BOOTING:
            raise MachineError(
                f"{self.machine_id}: complete_boot from {self.state.name}"
            )
        self.state = MachineState.ON
        self.transition_ends = None
        self.load = 0.0
        self.meter.set_power(self.machine_id, self.power_draw, now)

    def power_off(self, now: float) -> float:
        """Begin shutting down (load must have been drained)."""
        if self.state is not MachineState.ON:
            raise MachineError(
                f"{self.machine_id}: power_off from {self.state.name}"
            )
        if self.load > 1e-9:
            raise MachineError(
                f"{self.machine_id}: power_off while serving {self.load}"
            )
        self.state = MachineState.STOPPING
        self.transition_ends = now + _ceil_s(self.profile.off_time)
        self.shutdowns += 1
        self.meter.set_power(self.machine_id, self.power_draw, now)
        return self.transition_ends

    def complete_shutdown(self, now: float) -> None:
        """Shutdown finished: the machine draws nothing."""
        if self.state is not MachineState.STOPPING:
            raise MachineError(
                f"{self.machine_id}: complete_shutdown from {self.state.name}"
            )
        self.state = MachineState.OFF
        self.transition_ends = None
        self.meter.set_power(self.machine_id, 0.0, now)

    # -- serving ---------------------------------------------------------------
    def assign_load_series(self, rates: "np.ndarray", t_start: int) -> "np.ndarray":
        """Assign one serving rate per second from ``t_start``; returns draws.

        Batch counterpart of calling :meth:`assign_load` once per second
        over a window in which the machine stays ON: the whole window's
        draws (``idle + slope * rate``, the exact float expression of
        :attr:`power_draw`) are written to the meter in one
        :meth:`~repro.sim.energy.EnergyMeter.record_series` call and the
        machine is left holding the window's last load.  ``rates`` must
        already respect the capacity bounds (the vectorised load balancer
        guarantees this by construction).
        """
        if self.state is not MachineState.ON:
            raise MachineError(
                f"{self.machine_id}: assign_load_series in {self.state.name}"
            )
        rates = np.asarray(rates, dtype=float)
        if len(rates) == 0:
            raise MachineError(f"{self.machine_id}: empty load series")
        if np.any(rates < -1e-9) or np.any(
            rates > self.profile.max_perf * (1 + 1e-9)
        ):
            raise MachineError(
                f"{self.machine_id}: load series outside [0, {self.profile.max_perf}]"
            )
        draws = self.profile.idle_power + self.profile.slope * rates
        self.meter.record_series(self.machine_id, draws, t_start)
        self.load = float(min(max(float(rates[-1]), 0.0), self.profile.max_perf))
        return draws

    def assign_load(self, rate: float, now: float) -> None:
        """Assign a serving rate (ON machines only, within capacity)."""
        if self.state is not MachineState.ON:
            raise MachineError(
                f"{self.machine_id}: assign_load in {self.state.name}"
            )
        if rate < -1e-9 or rate > self.profile.max_perf * (1 + 1e-9):
            raise MachineError(
                f"{self.machine_id}: load {rate} outside [0, {self.profile.max_perf}]"
            )
        self.load = min(max(rate, 0.0), self.profile.max_perf)
        self.meter.set_power(self.machine_id, self.power_draw, now)
