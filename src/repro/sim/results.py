"""Simulation results: energy, QoS and reconfiguration accounting.

A :class:`SimulationResult` holds the per-second power series of one
scenario replay plus everything the paper's evaluation reports: per-day
energy (Fig. 5 series), switching overheads, and QoS (unserved demand)
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.reconfiguration import Reconfiguration
from ..workload.trace import SECONDS_PER_DAY, LoadTrace

__all__ = ["SimulationResult", "QoSReport"]


@dataclass(frozen=True)
class QoSReport:
    """Quality-of-service summary of a replay.

    ``unserved_demand`` is the integral of load exceeding online capacity
    (requests that could not be processed); ``violation_seconds`` counts
    seconds with any unserved demand.
    """

    total_demand: float
    unserved_demand: float
    violation_seconds: int
    worst_deficit: float

    @property
    def served_fraction(self) -> float:
        """Fraction of the total demand that was served (1.0 = perfect)."""
        if self.total_demand <= 0:
            return 1.0
        return 1.0 - self.unserved_demand / self.total_demand


@dataclass
class SimulationResult:
    """Outcome of replaying one scenario against a load trace."""

    scenario: str
    trace_name: str
    timestep: float
    power: np.ndarray
    unserved: np.ndarray
    reconfigurations: List[Reconfiguration] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.power = np.asarray(self.power, dtype=float)
        self.unserved = np.asarray(self.unserved, dtype=float)
        if self.power.shape != self.unserved.shape:
            raise ValueError("power and unserved series must align")
        if self.timestep <= 0:
            raise ValueError("timestep must be > 0")

    # -- energy ------------------------------------------------------------
    @property
    def total_energy(self) -> float:
        """Total energy in Joules over the replay."""
        return float(np.sum(self.power) * self.timestep)

    @property
    def total_energy_kwh(self) -> float:
        """Total energy in kWh."""
        return self.total_energy / 3.6e6

    @property
    def mean_power(self) -> float:
        """Average power draw in Watts."""
        return float(np.mean(self.power))

    def per_day_energy(self) -> np.ndarray:
        """Energy per day in Joules (the Fig. 5 series).

        The last day may be partial; its energy covers the remaining
        samples only.
        """
        spd = SECONDS_PER_DAY / self.timestep
        if abs(spd - round(spd)) > 1e-9:
            raise ValueError("timestep does not divide a day")
        spd = int(round(spd))
        n = len(self.power)
        full = n // spd
        out: List[float] = []
        if full:
            out.extend(
                self.power[: full * spd].reshape(full, spd).sum(axis=1) * self.timestep
            )
        if n % spd:
            out.append(float(self.power[full * spd :].sum() * self.timestep))
        return np.asarray(out)

    def per_day_energy_kwh(self) -> np.ndarray:
        """Per-day energy in kWh."""
        return self.per_day_energy() / 3.6e6

    @property
    def switch_energy(self) -> float:
        """Total On/Off overhead energy (Joules) across reconfigurations."""
        return sum(r.switch_energy for r in self.reconfigurations)

    @property
    def n_reconfigurations(self) -> int:
        return len(self.reconfigurations)

    @property
    def engine(self) -> Optional[str]:
        """Which replay engine produced this result, when recorded.

        ``"segments"``/``"reference"`` for the event-driven replay (see
        :class:`repro.sim.loop.EventDrivenReplay`); ``None`` for results
        whose producer predates or does not tag an engine.
        """
        value = self.meta.get("engine")
        return str(value) if value is not None else None

    @property
    def n_segments(self) -> Optional[int]:
        """Steady segments evaluated by the segment-compressed replay."""
        value = self.meta.get("segments")
        return int(value) if value is not None else None

    # -- QoS --------------------------------------------------------------
    def qos(self, trace: Optional[LoadTrace] = None) -> QoSReport:
        """QoS summary; pass the trace to compute the served fraction."""
        total = (
            trace.total_demand
            if trace is not None
            else float(np.sum(self.unserved) * self.timestep)
        )
        return QoSReport(
            total_demand=total,
            unserved_demand=float(np.sum(self.unserved) * self.timestep),
            violation_seconds=int(np.count_nonzero(self.unserved > 1e-9)),
            worst_deficit=float(np.max(self.unserved)) if self.unserved.size else 0.0,
        )

    # -- comparisons -------------------------------------------------------
    def overhead_vs(self, other: "SimulationResult") -> np.ndarray:
        """Per-day relative energy overhead vs a reference result.

        ``overhead[d] = energy[d] / reference_energy[d] - 1`` — the paper
        reports BML at +32 % average (min 6.8 %, max 161.4 %) against the
        theoretical lower bound.
        """
        mine = self.per_day_energy()
        ref = other.per_day_energy()
        if mine.shape != ref.shape:
            raise ValueError("results cover different day counts")
        if np.any(ref <= 0):
            raise ValueError("reference has non-positive daily energy")
        return mine / ref - 1.0

    def summary(self) -> Dict[str, float]:
        """Flat dict used by report tables."""
        qos = self.qos()
        return {
            "scenario": self.scenario,
            "total_energy_kwh": self.total_energy_kwh,
            "mean_power_w": self.mean_power,
            "reconfigurations": float(self.n_reconfigurations),
            "switch_energy_kwh": self.switch_energy / 3.6e6,
            "unserved_demand": qos.unserved_demand,
            "violation_seconds": float(qos.violation_seconds),
        }
