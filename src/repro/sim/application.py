"""Application model: stateless service instances and their migration.

Sec. III classifies applications by QoS strictness, migratability and
malleability.  The evaluation's web server is the easy case — stateless
and malleable — but the model keeps the general knobs so other services
can be expressed:

* ``malleable`` — can run any number of instances behind the balancer;
  non-malleable services pin ``min_instances == max_instances``;
* migration = stop the instance, start a replacement on the target
  machine, update the load balancer; ``stop_time``/``start_time`` model
  the (small) service interruption, during which the instance serves
  nothing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .machine import Machine, MachineState

__all__ = ["ApplicationSpec", "AppInstance", "Application", "ApplicationError"]


class ApplicationError(RuntimeError):
    """Raised on invalid instance management operations."""


@dataclass(frozen=True)
class ApplicationSpec:
    """Static characterisation of a service (Sec. III).

    ``qos_class`` is free-form ("critical", "tolerant", ...); the replay
    reports unserved demand and leaves the tolerance judgement to the
    operator, as the paper does.
    """

    name: str = "webserver"
    qos_class: str = "tolerant"
    malleable: bool = True
    min_instances: int = 1
    max_instances: Optional[int] = None
    stop_time: float = 0.5
    start_time: float = 0.5

    def __post_init__(self) -> None:
        if self.min_instances < 1:
            raise ApplicationError("min_instances must be >= 1")
        if self.max_instances is not None and self.max_instances < self.min_instances:
            raise ApplicationError("max_instances < min_instances")
        if self.stop_time < 0 or self.start_time < 0:
            raise ApplicationError("migration times must be >= 0")
        if not self.malleable and self.max_instances is None:
            raise ApplicationError(
                "non-malleable applications must bound max_instances"
            )

    @property
    def migration_time(self) -> float:
        """Total service interruption of one instance migration."""
        return self.stop_time + self.start_time


@dataclass
class AppInstance:
    """One running copy of the application on one machine."""

    instance_id: str
    machine: Machine
    started_at: float
    ready_at: float

    def is_ready(self, now: float) -> bool:
        """Instance has finished starting and its machine is ON."""
        return now >= self.ready_at and self.machine.state is MachineState.ON


class Application:
    """Instance manager: deploy, retire and migrate instances."""

    def __init__(self, spec: ApplicationSpec) -> None:
        self.spec = spec
        self._instances: Dict[str, AppInstance] = {}
        self._by_machine: Dict[str, str] = {}
        self._ids = itertools.count()

    # -- queries ------------------------------------------------------------
    @property
    def instances(self) -> List[AppInstance]:
        return list(self._instances.values())

    def instance_on(self, machine: Machine) -> Optional[AppInstance]:
        """The instance hosted on ``machine``, if any."""
        iid = self._by_machine.get(machine.machine_id)
        return self._instances.get(iid) if iid else None

    def ready_machines(self, now: float) -> List[Machine]:
        """Machines whose instance can serve traffic right now."""
        return [i.machine for i in self._instances.values() if i.is_ready(now)]

    # -- lifecycle ----------------------------------------------------------
    def deploy(self, machine: Machine, now: float) -> AppInstance:
        """Start an instance on an ON machine."""
        if machine.state is not MachineState.ON:
            raise ApplicationError(
                f"cannot deploy on {machine.machine_id} ({machine.state.name})"
            )
        if machine.machine_id in self._by_machine:
            raise ApplicationError(f"{machine.machine_id} already hosts an instance")
        if (
            self.spec.max_instances is not None
            and len(self._instances) >= self.spec.max_instances
        ):
            raise ApplicationError(
                f"instance limit {self.spec.max_instances} reached"
            )
        if not self.spec.malleable and self._instances:
            raise ApplicationError("application is not malleable")
        inst = AppInstance(
            instance_id=f"{self.spec.name}-{next(self._ids)}",
            machine=machine,
            started_at=now,
            ready_at=now + self.spec.start_time,
        )
        self._instances[inst.instance_id] = inst
        self._by_machine[machine.machine_id] = inst.instance_id
        return inst

    def retire(self, machine: Machine, now: float) -> None:
        """Stop the instance on ``machine`` (before the machine stops)."""
        iid = self._by_machine.pop(machine.machine_id, None)
        if iid is None:
            raise ApplicationError(f"no instance on {machine.machine_id}")
        del self._instances[iid]
        machine.assign_load(0.0, now)

    def migrate(self, source: Machine, target: Machine, now: float) -> AppInstance:
        """Stateless migration: stop on source, start on target.

        Returns the new instance, ready after ``stop_time + start_time``
        (the paper: "stopping a server instance and launching a new one on
        the destination machine, and then updating the load balancer").
        """
        self.retire(source, now)
        inst = self.deploy(target, now)
        inst.ready_at = now + self.spec.migration_time
        return inst
