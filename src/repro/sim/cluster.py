"""Cluster: machine pools per architecture, with optional inventory limits.

The paper assumes "enough machines of each type are available ... which
enables creating ideal combinations" and notes that, with minor changes,
limited inventories can be handled.  :class:`Cluster` supports both: an
unbounded pool lazily instantiates machines on demand; a bounded pool
raises (or reports infeasibility) when a combination needs more nodes of
a type than the data center owns (ablation A4 exercises this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.combination import Combination
from ..core.profiles import ArchitectureProfile
from .energy import EnergyMeter
from .machine import Machine, MachineError, MachineState

__all__ = ["Cluster", "InventoryError"]


class InventoryError(RuntimeError):
    """Raised when a bounded pool cannot supply the requested machines."""


class Cluster:
    """All machines of the data center, grouped by architecture."""

    def __init__(
        self,
        profiles: Sequence[ArchitectureProfile],
        meter: Optional[EnergyMeter] = None,
        inventory: Optional[Mapping[str, int]] = None,
    ) -> None:
        if not profiles:
            raise ValueError("cluster needs at least one architecture")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate architectures: {names}")
        self.meter = meter if meter is not None else EnergyMeter()
        self._profiles: Dict[str, ArchitectureProfile] = {
            p.name: p for p in profiles
        }
        self._pools: Dict[str, List[Machine]] = {p.name: [] for p in profiles}
        #: total machines ever materialised; pools only grow, so this is a
        #: cheap change detector for cached pool-order machine lists.
        self.n_machines = 0
        self._inventory = dict(inventory) if inventory is not None else None
        if self._inventory is not None:
            unknown = set(self._inventory) - set(self._profiles)
            if unknown:
                raise ValueError(f"inventory for unknown architectures: {unknown}")

    # -- introspection -----------------------------------------------------
    @property
    def is_bounded(self) -> bool:
        """Whether this cluster's machine pools have inventory limits."""
        return self._inventory is not None

    @property
    def profiles(self) -> Dict[str, ArchitectureProfile]:
        return dict(self._profiles)

    def profile(self, arch: str) -> ArchitectureProfile:
        """One architecture's profile (no dict copy — hot-path accessor)."""
        return self._profiles[arch]

    def machines(self, arch: Optional[str] = None) -> List[Machine]:
        """All machines (of one architecture, if given)."""
        if arch is not None:
            return list(self._pools[arch])
        return [m for pool in self._pools.values() for m in pool]

    def count(self, arch: str, state: MachineState) -> int:
        """Number of machines of ``arch`` currently in ``state``."""
        return sum(1 for m in self._pools[arch] if m.state is state)

    def n_in_state(self, state: MachineState) -> int:
        """Number of machines in ``state`` across all architectures."""
        return sum(
            1 for pool in self._pools.values() for m in pool if m.state is state
        )

    def machines_in_state(self, state: MachineState) -> List[Machine]:
        """All machines currently in ``state``, in pool order."""
        return [
            m for pool in self._pools.values() for m in pool if m.state is state
        ]

    def on_machines(self, arch: str) -> List[Machine]:
        """ON machines of an architecture (serving-capable)."""
        return [m for m in self._pools[arch] if m.state is MachineState.ON]

    def online_capacity(self) -> float:
        """Total max_perf of all ON machines."""
        return sum(
            m.profile.max_perf
            for pool in self._pools.values()
            for m in pool
            if m.state is MachineState.ON
        )

    def total_power(self) -> float:
        """Instantaneous draw of the whole cluster."""
        return sum(m.power_draw for pool in self._pools.values() for m in pool)

    def state_counts(self) -> Dict[str, Dict[str, int]]:
        """``arch -> state name -> count`` snapshot (reporting)."""
        out: Dict[str, Dict[str, int]] = {}
        for arch, pool in self._pools.items():
            counts: Dict[str, int] = {}
            for m in pool:
                counts[m.state.value] = counts.get(m.state.value, 0) + 1
            out[arch] = counts
        return out

    # -- allocation --------------------------------------------------------
    def can_provide(self, combo: Combination) -> bool:
        """Whether the inventory could ever host ``combo``."""
        if self._inventory is None:
            return all(name in self._profiles for name in combo.counts)
        return all(
            self._inventory.get(name, 0) >= cnt and name in self._profiles
            for name, cnt in combo.counts.items()
        )

    def acquire_off_machine(self, arch: str, now: float) -> Machine:
        """An OFF machine of ``arch``, instantiating one if allowed."""
        if arch not in self._pools:
            raise InventoryError(f"unknown architecture {arch!r}")
        for m in self._pools[arch]:
            if m.state is MachineState.OFF:
                return m
        limit = None if self._inventory is None else self._inventory.get(arch, 0)
        if limit is not None and len(self._pools[arch]) >= limit:
            raise InventoryError(
                f"no OFF {arch} machine available (inventory {limit})"
            )
        machine = Machine(
            machine_id=f"{arch}-{len(self._pools[arch])}",
            profile=self._profiles[arch],
            meter=self.meter,
        )
        # Late joiners start metering from the current clock, not t=0.
        self.meter.set_power(machine.machine_id, 0.0, now)
        self._pools[arch].append(machine)
        self.n_machines += 1
        return machine

    def boot(self, arch: str, count: int, now: float) -> List[Machine]:
        """Start booting ``count`` machines of ``arch``; returns them."""
        started = []
        for _ in range(count):
            m = self.acquire_off_machine(arch, now)
            m.power_on(now)
            started.append(m)
        return started

    def pick_shutdown_victims(self, arch: str, count: int) -> List[Machine]:
        """Choose ON machines to stop (least-loaded first)."""
        candidates = sorted(self.on_machines(arch), key=lambda m: m.load)
        if len(candidates) < count:
            raise MachineError(
                f"cannot stop {count} {arch} machines, only "
                f"{len(candidates)} are ON"
            )
        return candidates[:count]
