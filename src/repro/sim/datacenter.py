"""Fast data-center replay: integrate a :class:`SchedulePlan` over a trace.

The planner (scheduler or baseline policy) produces segments with constant
serving combination and constant overhead power; this module turns them
into per-second power and unserved-demand series with pure numpy slicing —
replaying the paper's 87-day World Cup scenario takes a fraction of a
second instead of a 7.5-million-iteration Python loop.

The event-driven machine-level simulator in :mod:`repro.sim.machine` /
:mod:`repro.sim.cluster` computes the same quantities from first
principles; the test suite cross-checks both paths on shorter traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.combination import CombinationTable
from ..core.reconfiguration import SchedulePlan
from ..workload.trace import LoadTrace
from .energy import combination_power
from .results import SimulationResult

__all__ = ["execute_plan", "lower_bound_result"]


def execute_plan(
    plan: SchedulePlan,
    trace: LoadTrace,
    scenario: str = "plan",
) -> SimulationResult:
    """Replay ``plan`` against ``trace`` and account energy and QoS.

    The plan horizon must match the trace length (both count seconds when
    the trace is sampled at 1 Hz; generally, plan times are in samples).
    """
    n = len(trace)
    if plan.horizon != n:
        raise ValueError(f"plan horizon {plan.horizon} != trace length {n}")
    power = np.empty(n)
    unserved = np.zeros(n)
    # Group segments by serving combination: each distinct combination's
    # piecewise-linear power curve is evaluated with a single np.interp
    # over all its samples (plans with heavy reconfiguration churn revisit
    # the same few combinations thousands of times).  Per group, one
    # gather/scatter index pass replaces the per-segment Python loop: the
    # timeline positions of all the group's samples are built with a
    # single np.repeat over the segment starts, so loads are gathered,
    # overheads broadcast and results stored with fancy indexing only.
    groups: dict = {}
    for seg in plan.segments:
        groups.setdefault(seg.serving, []).append(seg)
    for combo, segs in groups.items():
        starts = np.fromiter((s.t_start for s in segs), np.int64, len(segs))
        sizes = np.fromiter((s.t_end for s in segs), np.int64, len(segs)) - starts
        total = int(sizes.sum())
        if total == 0:
            continue
        # concatenated-position -> timeline-position map for every sample
        offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        idx = np.repeat(starts - offsets, sizes) + np.arange(total)
        loads = trace.values[idx]
        served = np.minimum(loads, combo.capacity)
        powers = combination_power(combo, served)
        overheads = np.fromiter(
            (s.overhead_power for s in segs), np.float64, len(segs)
        )
        power[idx] = powers + np.repeat(overheads, sizes)
        # Only materialise deficits: well-provisioned groups leave the
        # zeros array untouched (keeping its pages copy-on-write keeps
        # later QoS scans cheap).
        deficit = loads - served
        if np.any(deficit > 0):
            unserved[idx] = deficit
    return SimulationResult(
        scenario=scenario,
        trace_name=trace.name,
        timestep=trace.timestep,
        power=power,
        unserved=unserved,
        reconfigurations=list(plan.reconfigurations),
        meta={
            "segments": len(plan.segments),
            "switch_energy_j": plan.total_switch_energy,
            "max_nodes": max(
                (seg.serving.total_nodes for seg in plan.segments), default=0
            ),
        },
    )


def lower_bound_result(
    trace: LoadTrace,
    table: CombinationTable,
    scenario: str = "LowerBound Theoretical",
) -> SimulationResult:
    """The paper's unreachable lower bound.

    The infrastructure is re-dimensioned **every second** with the ideal
    BML combination for the instantaneous load, with **no switching latency
    or energy** — "picturing the best energy proportionality we could
    reach".  The combination is sized on the table's grid (1 req/s by
    default, like the scheduler) but its power is charged at the actual
    instantaneous load, so the bound is a true floor for any executed plan.
    """
    power = np.asarray(table.power_at_load(trace.values), dtype=float)
    return SimulationResult(
        scenario=scenario,
        trace_name=trace.name,
        timestep=trace.timestep,
        power=power,
        unserved=np.zeros(len(trace)),
        reconfigurations=[],
        meta={"table_method": table.method},
    )
