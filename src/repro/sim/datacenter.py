"""Fast data-center replay: integrate a :class:`SchedulePlan` over a trace.

The planner (scheduler or baseline policy) produces segments with constant
serving combination and constant overhead power; this module turns them
into per-second power and unserved-demand series with pure numpy slicing —
replaying the paper's 87-day World Cup scenario takes a fraction of a
second instead of a 7.5-million-iteration Python loop.

The event-driven machine-level simulator in :mod:`repro.sim.machine` /
:mod:`repro.sim.cluster` computes the same quantities from first
principles; the test suite cross-checks both paths on shorter traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.combination import CombinationTable
from ..core.reconfiguration import SchedulePlan
from ..workload.trace import LoadTrace
from .energy import combination_power
from .results import SimulationResult

__all__ = ["execute_plan", "lower_bound_result"]


def execute_plan(
    plan: SchedulePlan,
    trace: LoadTrace,
    scenario: str = "plan",
) -> SimulationResult:
    """Replay ``plan`` against ``trace`` and account energy and QoS.

    The plan horizon must match the trace length (both count seconds when
    the trace is sampled at 1 Hz; generally, plan times are in samples).
    """
    n = len(trace)
    if plan.horizon != n:
        raise ValueError(f"plan horizon {plan.horizon} != trace length {n}")
    power = np.empty(n)
    unserved = np.zeros(n)
    # Group segments by serving combination: each distinct combination's
    # piecewise-linear power curve is evaluated with a single np.interp
    # over all its samples (plans with heavy reconfiguration churn revisit
    # the same few combinations thousands of times).
    groups: dict = {}
    for seg in plan.segments:
        groups.setdefault(seg.serving, []).append(seg)
    for combo, segs in groups.items():
        capacity = combo.capacity
        pieces = [trace.values[s.t_start : s.t_end] for s in segs]
        loads = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        served = np.minimum(loads, capacity)
        powers = combination_power(combo, served)
        offset = 0
        for seg, piece in zip(segs, pieces):
            size = seg.t_end - seg.t_start
            power[seg.t_start : seg.t_end] = (
                powers[offset : offset + size] + seg.overhead_power
            )
            deficit = piece - served[offset : offset + size]
            if np.any(deficit > 0):
                unserved[seg.t_start : seg.t_end] = deficit
            offset += size
    return SimulationResult(
        scenario=scenario,
        trace_name=trace.name,
        timestep=trace.timestep,
        power=power,
        unserved=unserved,
        reconfigurations=list(plan.reconfigurations),
        meta={
            "segments": len(plan.segments),
            "switch_energy_j": plan.total_switch_energy,
        },
    )


def lower_bound_result(
    trace: LoadTrace,
    table: CombinationTable,
    scenario: str = "LowerBound Theoretical",
) -> SimulationResult:
    """The paper's unreachable lower bound.

    The infrastructure is re-dimensioned **every second** with the ideal
    BML combination for the instantaneous load, with **no switching latency
    or energy** — "picturing the best energy proportionality we could
    reach".  The combination is sized on the table's grid (1 req/s by
    default, like the scheduler) but its power is charged at the actual
    instantaneous load, so the bound is a true floor for any executed plan.
    """
    power = np.asarray(table.power_at_load(trace.values), dtype=float)
    return SimulationResult(
        scenario=scenario,
        trace_name=trace.name,
        timestep=trace.timestep,
        power=power,
        unserved=np.zeros(len(trace)),
        reconfigurations=[],
        meta={"table_method": table.method},
    )
