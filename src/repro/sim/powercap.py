"""RAPL-style power capping (the Sec. II counterpoint).

Related work (Sec. II) discusses Intel RAPL: "via this mechanism a user
can specify a power consumption threshold that the processor will not
exceed ... This power capping tool offers better energy proportionality,
but does not help reducing idle consumption."  The BML argument rests on
that observation — capping shrinks the dynamic range from the top, while
heterogeneity attacks the idle floor.

This module models a capped machine so the argument can be *measured*:
under the linear power model, a cap ``P_cap`` on a machine translates to
a performance ceiling (the rate where the linear law hits the cap), so a
capped homogeneous data center trades peak capacity for a flatter power
profile while its idle draw — and therefore its IPR — stays put.  The A6
benchmark quantifies this against the BML combination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..core.profiles import ArchitectureProfile, ProfileError

__all__ = ["CappedMachine", "capped_profile", "capped_stack_power"]


@dataclass(frozen=True)
class CappedMachine:
    """A machine whose draw is limited to ``cap`` Watts (RAPL-like).

    The cap must lie in ``[idle_power, max_power]``: RAPL throttles the
    processor's *active* consumption; it cannot push a machine below its
    idle draw (the crux of the Sec. II argument).
    """

    profile: ArchitectureProfile
    cap: float

    def __post_init__(self) -> None:
        if not self.profile.idle_power <= self.cap <= self.profile.max_power:
            raise ProfileError(
                f"cap {self.cap} W outside "
                f"[{self.profile.idle_power}, {self.profile.max_power}] — "
                "RAPL cannot cap below idle power"
            )

    @property
    def max_perf(self) -> float:
        """Performance ceiling the cap imposes (linear model inverse)."""
        p = self.profile
        if p.slope == 0:
            return p.max_perf
        return min((self.cap - p.idle_power) / p.slope, p.max_perf)

    def power(self, rate: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Draw while serving ``rate`` (requests beyond the ceiling are
        the QoS accounting's business, like everywhere else)."""
        r = np.minimum(np.asarray(rate, dtype=float), self.max_perf)
        out = np.minimum(self.profile.idle_power + self.profile.slope * r, self.cap)
        return float(out) if np.ndim(rate) == 0 else out

    @property
    def ipr(self) -> float:
        """Idle-to-Peak Ratio under the cap — never better than uncapped
        at full machine utilisation, because idle is untouched."""
        return self.profile.idle_power / self.cap


def capped_profile(
    profile: ArchitectureProfile, cap: float, name: Optional[str] = None
) -> ArchitectureProfile:
    """An :class:`ArchitectureProfile` view of the capped machine.

    Useful to push capped machines through the regular BML pipeline
    (filtering, crossing points, combinations).
    """
    machine = CappedMachine(profile, cap)
    return ArchitectureProfile(
        name=name or f"{profile.name}@{cap:g}W",
        max_perf=machine.max_perf,
        idle_power=profile.idle_power,
        max_power=cap,
        on_time=profile.on_time,
        on_energy=profile.on_energy,
        off_time=profile.off_time,
        off_energy=profile.off_energy,
    )


def capped_stack_power(
    profile: ArchitectureProfile,
    cap: float,
    rate: Union[float, np.ndarray],
    nodes: int,
) -> Union[float, np.ndarray]:
    """Power of ``nodes`` always-on capped machines sharing ``rate``.

    The classical deployment RAPL targets: a fixed homogeneous fleet, all
    machines on, load spread evenly, caps keeping the peak in check.
    Rates beyond the capped fleet's ceiling saturate at ``nodes * cap``.
    """
    if nodes < 1:
        raise ProfileError("need at least one machine")
    machine = CappedMachine(profile, cap)
    share = np.asarray(rate, dtype=float) / nodes
    out = nodes * np.asarray(machine.power(share))
    return float(out) if np.ndim(rate) == 0 else out
