"""Load balancer: distributes the request rate over running instances.

The paper's target application is a stateless web server behind a load
balancer, so "the load [can] be distributed among several web server
instances".  Two strategies are provided:

* ``"efficient"`` (default) — fill machines by increasing marginal power
  cost (the slope of their linear model); this is the assignment the
  analytical power model assumes, so the event-driven simulator and the
  vectorised fast path agree exactly;
* ``"proportional"`` — classic capacity-weighted spreading (every machine
  gets the same utilisation fraction); under the linear model the *group*
  power is identical for homogeneous groups, slightly higher for
  heterogeneous mixes, which the ablation benches quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.profiles import ArchitectureProfile
from .energy import TelemetryLRU
from .machine import Machine

__all__ = [
    "LoadBalancer",
    "Assignment",
    "WindowAssignment",
    "ServingSetKernel",
    "KernelWindow",
    "serving_set_kernel",
    "serving_kernel_cache_stats",
]


#: Widest integer rate span the bincount-based unique fast path will
#: allocate a lookup table for (8 MB of int64); wider spans fall back to
#: the sort-based ``np.unique``.
_BINCOUNT_SPAN_LIMIT = 1 << 20


def _unique_inverse(rates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(rates, return_inverse=True)`` with an O(n) fast path.

    Request-rate traces are integral counts (WC98 requests/second, rounded
    synthetic series), so for year-scale windows the sort inside
    ``np.unique`` dominates the whole evaluation phase.  When every rate
    is a non-negative integer in a bounded span, the unique values and the
    inverse map come straight out of ``np.bincount`` + a lookup table —
    same sorted unique array, same inverse indices, bit-for-bit (integral
    float64 values round-trip through int64 exactly; rates are validated
    non-negative so there is no ``-0.0`` to lose a sign bit on).
    """
    iv = rates.astype(np.int64)
    if rates.size and np.array_equal(iv, rates):
        lo = int(iv.min())
        hi = int(iv.max())
        if (
            0 <= lo
            and hi - lo <= _BINCOUNT_SPAN_LIMIT
            and (lo > 0 or not np.signbit(rates).any())
        ):
            shifted = iv if lo == 0 else iv - lo
            counts = np.bincount(shifted, minlength=hi - lo + 1)
            present = counts > 0
            uniq = (np.flatnonzero(present) + lo).astype(float)
            lut = np.zeros(hi - lo + 1, dtype=np.intp)
            lut[present] = np.arange(len(uniq), dtype=np.intp)
            return uniq, lut[shifted]
    return np.unique(rates, return_inverse=True)


@dataclass(frozen=True)
class Assignment:
    """Outcome of one balancing round."""

    shares: Dict[str, float]  # machine_id -> rate
    served: float
    unserved: float


class LoadBalancer:
    """Stateless request-rate splitter over ON machines."""

    def __init__(self, strategy: str = "efficient") -> None:
        if strategy not in ("efficient", "proportional"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy

    def balance(self, rate: float, machines: Sequence[Machine]) -> Assignment:
        """Split ``rate`` over ``machines``; excess demand is unserved."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        capacity = sum(m.profile.max_perf for m in machines)
        served = min(rate, capacity)
        shares: Dict[str, float] = {m.machine_id: 0.0 for m in machines}
        if served > 0 and machines:
            if self.strategy == "efficient":
                remaining = served
                for m in sorted(machines, key=lambda m: m.profile.slope):
                    take = min(remaining, m.profile.max_perf)
                    shares[m.machine_id] = take
                    remaining -= take
                    if remaining <= 1e-12:
                        break
            else:  # proportional
                frac = served / capacity
                for m in machines:
                    shares[m.machine_id] = frac * m.profile.max_perf
        return Assignment(
            shares=shares, served=served, unserved=max(rate - served, 0.0)
        )

    def apply(
        self, rate: float, machines: Sequence[Machine], now: float
    ) -> Assignment:
        """Balance and push the shares onto the machines (metered)."""
        assignment = self.balance(rate, machines)
        for m in machines:
            m.assign_load(assignment.shares[m.machine_id], now)
        return assignment

    # -- windowed balancing (segment-compressed replay) --------------------
    def balance_series(
        self, rates: np.ndarray, machines: Sequence[Machine]
    ) -> "WindowAssignment":
        """Vectorised :meth:`balance` over a window of per-second rates.

        The machine set must be constant across the window (the replay's
        steady segments guarantee this).  Every float operation mirrors the
        scalar loop — same fill order (stable sort by slope), same running
        ``remaining`` subtraction chain, same ``1e-12`` early-exit mask —
        so each window column is bit-identical to one :meth:`balance` call.
        """
        rates = np.asarray(rates, dtype=float)
        if np.any(rates < 0):
            raise ValueError("rate must be >= 0")
        capacity = sum(m.profile.max_perf for m in machines)
        served = np.minimum(rates, capacity)
        n = len(rates)
        loads: Dict[str, np.ndarray] = {}
        if machines:
            if self.strategy == "efficient":
                remaining = served.copy()
                # The scalar loop runs only when served > 0 and breaks once
                # remaining <= 1e-12; ``active`` tracks both conditions.
                active = served > 0
                for m in sorted(machines, key=lambda m: m.profile.slope):
                    take = np.where(
                        active,
                        np.minimum(remaining, m.profile.max_perf),
                        0.0,
                    )
                    loads[m.machine_id] = take
                    remaining = remaining - take
                    active = active & (remaining > 1e-12)
            elif capacity > 0:  # proportional (served > 0 implies capacity > 0)
                frac = served / capacity
                for m in machines:
                    loads[m.machine_id] = frac * m.profile.max_perf
        # Degenerate sets (no machines / zero capacity) serve nothing.
        for m in machines:
            if m.machine_id not in loads:
                loads[m.machine_id] = np.zeros(n)
        return WindowAssignment(
            loads=loads,
            served=served,
            unserved=np.maximum(rates - served, 0.0),
        )

    def apply_series(
        self, rates: np.ndarray, machines: Sequence[Machine], t_start: int
    ) -> "WindowAssignment":
        """Balance a window and push per-second loads onto the machines.

        Batch counterpart of calling :meth:`apply` once per second: each
        machine receives its whole load series in one
        :meth:`~repro.sim.machine.Machine.assign_load_series` call (one
        meter write per machine per window) and is left holding the
        window's final load.  The returned assignment carries each
        machine's per-second power draw series.
        """
        assignment = self.balance_series(rates, machines)
        draws = {
            m.machine_id: m.assign_load_series(
                assignment.loads[m.machine_id], t_start
            )
            for m in machines
        }
        return WindowAssignment(
            loads=assignment.loads,
            served=assignment.served,
            unserved=assignment.unserved,
            draws=draws,
        )


@dataclass(frozen=True)
class WindowAssignment:
    """Outcome of balancing a whole window of per-second rates.

    ``draws`` is filled by :meth:`LoadBalancer.apply_series` only (the
    per-machine power series implied by the assigned loads).
    """

    loads: Dict[str, np.ndarray]  # machine_id -> per-second rate series
    served: np.ndarray
    unserved: np.ndarray
    draws: Optional[Dict[str, np.ndarray]] = None  # machine_id -> power series


# ---------------------------------------------------------------------------
# Serving-set composite kernels (O(1)-per-segment replay)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelWindow:
    """One steady segment evaluated on a serving-set kernel.

    Everything is stored on the window's **unique** rates plus the
    gather index back to per-second order: ``X_unique[inverse]`` is the
    per-second series for any of the unique-indexed arrays (``inverse``
    of ``None`` means the window did not compress — the unique arrays
    *are* per-second).  Per-machine per-second series are *not*
    materialised up front — the replay's hot loop only needs the
    unique-indexed arrays plus ``inverse`` (the deferred energy ledger
    buffers the same gather pairs) — they are built lazily by
    :meth:`draw_series`/:meth:`load_series` when a consumer (QoS
    attribution, per-machine diff series) asks.
    """

    kernel: "ServingSetKernel"
    inverse: Optional[np.ndarray]  #: per-second gather index, or None
    loads: Tuple[np.ndarray, ...]  #: per machine, unique-indexed
    draws: Tuple[np.ndarray, ...]  #: per machine, unique-indexed
    served: np.ndarray  #: unique-indexed
    unserved: np.ndarray  #: unique-indexed

    @property
    def n_unique(self) -> int:
        return len(self.served)

    def gather(self, values: np.ndarray) -> np.ndarray:
        """Scatter a unique-indexed array back to per-second order.

        Internal zero-copy accessor: when the window did not compress,
        the *backing buffer itself* comes back — the replay's hot loop
        only reads it.  The public ``*_series`` accessors below return
        independent arrays instead, because the deferred energy ledger
        may still hold references to these buffers until it settles.
        """
        return values if self.inverse is None else values[self.inverse]

    def _materialise(self, values: np.ndarray) -> np.ndarray:
        return values.copy() if self.inverse is None else values[self.inverse]

    def unserved_series(self) -> np.ndarray:
        """Per-second unserved mass of the window (caller-owned array)."""
        return self._materialise(self.unserved)

    def draw_series(self, machine_id: str) -> np.ndarray:
        """One machine's per-second power draw series (caller-owned)."""
        return self._materialise(self.draws[self.kernel.index_of(machine_id)])

    def load_series(self, machine_id: str) -> np.ndarray:
        """One machine's per-second assigned-rate series (caller-owned)."""
        return self._materialise(self.loads[self.kernel.index_of(machine_id)])

    def materialise_draws(self) -> Dict[str, np.ndarray]:
        """Full per-machine draw dict, shaped like ``WindowAssignment.draws``."""
        return {
            mid: self._materialise(self.draws[i])
            for i, mid in enumerate(self.kernel.machine_ids)
        }


class ServingSetKernel:
    """Composite balance/power evaluator for one frozen serving set.

    Collapses the per-machine chain of
    :meth:`LoadBalancer.balance_series` + ``idle + slope * load`` draws
    into one object whose per-set constants (capacity sum, stable
    slope-sort order, per-machine linear-model coefficients) are computed
    once and reused across every segment served by the same set —
    typically hundreds of segments per replay, since the replay cycles
    through a handful of combinations.  ``evaluate`` runs the **exact**
    scalar float-operation chain, but only on the window's unique rates;
    equal inputs get equal outputs by construction, so gathering the
    results back to per-second order is bit-identical to the full-window
    (and the per-second) evaluation.
    """

    __slots__ = (
        "strategy",
        "machine_ids",
        "capacity",
        "_order",
        "_max_perfs",
        "_slopes",
        "_idles",
        "_index",
    )

    def __init__(
        self,
        strategy: str,
        members: Sequence[Tuple[str, ArchitectureProfile]],
    ) -> None:
        self.strategy = strategy
        self.machine_ids: Tuple[str, ...] = tuple(mid for mid, _ in members)
        profiles = [prof for _, prof in members]
        # Same Python-sum order as LoadBalancer.balance's capacity.
        self.capacity = sum(p.max_perf for p in profiles)
        # Stable sort by slope = the scalar fill order.
        self._order = sorted(range(len(profiles)), key=lambda i: profiles[i].slope)
        self._max_perfs = [p.max_perf for p in profiles]
        self._slopes = [p.slope for p in profiles]
        self._idles = [p.idle_power for p in profiles]
        self._index = {mid: i for i, mid in enumerate(self.machine_ids)}

    def index_of(self, machine_id: str) -> int:
        return self._index[machine_id]

    def evaluate(
        self,
        rates: np.ndarray,
        pre_validated: bool = False,
        compress: Optional[bool] = None,
    ) -> KernelWindow:
        """Evaluate a whole steady window through the composite chain.

        ``pre_validated=True`` skips the non-negativity check — for
        callers that validated the full series once up front (the replay
        checks the whole trace before segmenting it into windows).

        ``compress`` controls the unique-rate gather compression:
        evaluating only the window's unique rates pays off on traces that
        repeat rates (integer request-count traces like WC98) and is pure
        overhead on continuous synthetic traces.  ``None`` probes the
        window head per call; the replay decides once per run on the
        whole trace and passes the verdict in.  Both paths run the
        identical elementwise chain, so the choice never changes a
        single bit of the output.
        """
        rates = np.asarray(rates, dtype=float)
        if not pre_validated and np.any(rates < 0):
            raise ValueError("rate must be >= 0")
        inverse: Optional[np.ndarray] = None
        uniq = rates
        if compress is None:
            compress = len(rates) > 64 and len(np.unique(rates[:64])) <= 48
        if compress and len(rates) > 1:
            uniq, inverse = _unique_inverse(rates)
        served = np.minimum(uniq, self.capacity)
        n = len(self.machine_ids)
        loads: List[Optional[np.ndarray]] = [None] * n
        draws: List[Optional[np.ndarray]] = [None] * n
        if n:
            if self.strategy == "efficient":
                loads, draws = self._evaluate_efficient(uniq, served, inverse)
            elif self.capacity > 0:  # proportional
                frac = served / self.capacity
                loads = [frac * mp for mp in self._max_perfs]
                draws = [
                    self._idles[i] + self._slopes[i] * loads[i]
                    for i in range(n)
                ]
            else:  # degenerate set: nothing can be served
                loads = [np.zeros(len(uniq)) for _ in range(n)]
                draws = [np.full(len(uniq), self._idles[i]) for i in range(n)]
        return KernelWindow(
            kernel=self,
            inverse=inverse,
            loads=tuple(loads),
            draws=tuple(draws),
            served=served,
            unserved=np.maximum(uniq - served, 0.0),
        )

    def _evaluate_efficient(
        self,
        uniq: np.ndarray,
        served: np.ndarray,
        inverse: Optional[np.ndarray],
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """The ``"efficient"`` fill chain with constant-column elision.

        The masked per-machine chain (``take = where(active,
        min(remaining, cap), 0)``; ``remaining -= take``; ``active &=
        remaining > 1e-12``) is monotone non-decreasing in the input rate
        at every step: ``min``, subtraction by a constant and the
        ``> 1e-12`` threshold all preserve order, and while an element is
        active it follows the pure chain.  Two consequences anchor the
        shortcut below (both are exact statements about the float chain,
        not approximations):

        * while the **minimum**-rate element is still active, every
          element is active and its ``remaining`` is bounded below by the
          minimum element's — so if the minimum element's remainder
          covers a machine's capacity, *every* element takes exactly
          ``max_perf`` there and the whole column is one constant;
        * once the **maximum**-rate element goes inactive, every element
          is inactive — the machine (and all later ones in fill order)
          takes exactly ``0.0`` and draws exactly ``idle``.

        Only machines whose capacity boundary the window's rate band
        actually straddles ("marginal" machines — typically one or two
        per window) run the elementwise masked chain; constant columns
        are emitted as zero-copy broadcast views.  Equal inputs get equal
        outputs through identical float ops, so the result is
        bit-identical to the full masked chain (pinned by the kernel and
        replay property suites).
        """
        nu = len(uniq)
        mps, slopes, idles = self._max_perfs, self._slopes, self._idles
        n = len(self.machine_ids)
        loads: List[Optional[np.ndarray]] = [None] * n
        draws: List[Optional[np.ndarray]] = [None] * n
        if nu:
            # np.unique sorts, so a compressed window's extremes are its ends.
            lo = float(uniq[0]) if inverse is not None else float(uniq.min())
            hi = float(uniq[-1]) if inverse is not None else float(uniq.max())
        else:
            lo = hi = 0.0
        cap = self.capacity
        # Scalar mirrors of the chain at the two extreme rates.  These are
        # real window elements, so each mirror is exact by construction.
        r_lo = lo if lo < cap else cap
        r_hi = hi if hi < cap else cap
        act_lo = r_lo > 0 and nu > 0
        act_hi = r_hi > 0 and nu > 0
        last = self._order[-1]
        pending: List[float] = []  # constant takes not yet applied to arrays
        remaining: Optional[np.ndarray] = None  # materialised lazily
        active: Optional[np.ndarray] = None  # None == "every element active"
        zeros: Optional[np.ndarray] = None
        for i in self._order:
            c = mps[i]
            if not act_hi:
                # Max-rate element broke out => all elements broke out:
                # the scalar chain's take is 0.0 everywhere, so load 0 and
                # the exact idle draw (idle + slope * 0.0 == idle) follow
                # without running the masked chain; no state updates occur.
                if zeros is None:
                    zeros = np.broadcast_to(np.float64(0.0), nu)
                loads[i] = zeros
                draws[i] = np.broadcast_to(np.float64(idles[i]), nu)
                continue
            if act_lo and r_lo >= c:
                # Min-rate element still active with remainder >= capacity
                # => every element is active with remainder >= capacity:
                # take == max_perf exactly, one constant column.
                loads[i] = np.broadcast_to(np.float64(c), nu)
                draws[i] = np.broadcast_to(np.float64(idles[i] + slopes[i] * c), nu)
                if i != last:
                    if remaining is None:
                        pending.append(c)
                    else:
                        remaining = remaining - c
                        act_arr = remaining > 1e-12
                        active = act_arr if active is None else active & act_arr
                    r_lo -= c
                    act_lo = r_lo > 1e-12
                    r_hi -= c
                    act_hi = r_hi > 1e-12
                continue
            # Marginal machine: the rate band straddles this capacity
            # boundary (or the break threshold) — run the masked chain.
            if remaining is None:
                remaining = served.copy()
                if pending:
                    # Every element was provably active through each
                    # pending full-capacity take, so only the last
                    # subtraction can have dropped anyone from the mask.
                    for pc in pending:
                        remaining = remaining - pc
                    pending.clear()
                    if not act_lo:
                        active = remaining > 1e-12
                elif not act_lo:
                    active = served > 0
            if active is None:
                # All elements active: where(all_true, x, 0) == x, and on
                # the first fill inactive elements have remaining == 0.0
                # so min(0, cap) is already the masked 0.0.
                take = np.minimum(remaining, c)
            else:
                take = np.where(active, np.minimum(remaining, c), 0.0)
            loads[i] = take
            draws[i] = idles[i] + slopes[i] * take
            if i != last:
                remaining = remaining - take
                act_arr = remaining > 1e-12
                active = act_arr if active is None else active & act_arr
                if act_lo:
                    t = r_lo if r_lo < c else c
                    r_lo -= t
                    act_lo = r_lo > 1e-12
                if act_hi:
                    t = r_hi if r_hi < c else c
                    r_hi -= t
                    act_hi = r_hi > 1e-12
        return loads, draws

    def loads_at(self, rate: float) -> List[float]:
        """Final per-machine loads of one scalar balance at ``rate``.

        The exact float chain of :meth:`LoadBalancer.balance` (same stable
        fill order, same running subtraction, same ``1e-12`` break) on the
        kernel's cached constants, returned as a list aligned with
        ``machine_ids`` — no sort, no dict, no Assignment.  The replay's
        control pass uses this to refresh FSM-visible machine loads at
        decision/handover boundaries.
        """
        if rate < 0:
            raise ValueError("rate must be >= 0")
        cap = self.capacity
        served = rate if rate < cap else cap
        shares = [0.0] * len(self.machine_ids)
        if served > 0 and shares:
            if self.strategy == "efficient":
                remaining = served
                for i in self._order:
                    take = remaining if remaining < self._max_perfs[i] else self._max_perfs[i]
                    shares[i] = take
                    remaining -= take
                    if remaining <= 1e-12:
                        break
            else:  # proportional
                frac = served / cap
                for i, mp in enumerate(self._max_perfs):
                    shares[i] = frac * mp
        return shares

    def evaluate_small(
        self, rates: np.ndarray
    ) -> Tuple[List[List[float]], List[List[float]], List[float]]:
        """Scalar chain for tiny windows (``"efficient"`` strategy only).

        Transition windows (boot/shutdown ceilings) are typically a few
        seconds long; for those the numpy dispatch overhead of
        :meth:`evaluate` dwarfs the work, so the replay runs the exact
        per-second scalar chain instead — the same float ops
        :meth:`LoadBalancer.balance` performs, which is what makes the
        two paths bit-identical (pinned by the replay property suite).
        Returns ``(loads, draws, unserved)`` as per-machine per-second
        Python lists (loads/draws) and a per-second list (unserved).
        """
        n = len(self.machine_ids)
        n_sec = len(rates)
        cap = self.capacity
        mps, slopes, idles = self._max_perfs, self._slopes, self._idles
        loads = [[0.0] * n_sec for _ in range(n)]
        draws = [[idles[i]] * n_sec for i in range(n)]
        unserved = [0.0] * n_sec
        for k, rate in enumerate(rates.tolist()):
            served = rate if rate < cap else cap
            if served > 0:
                remaining = served
                for i in self._order:
                    mp = mps[i]
                    take = remaining if remaining < mp else mp
                    loads[i][k] = take
                    draws[i][k] = idles[i] + slopes[i] * take
                    remaining -= take
                    if remaining <= 1e-12:
                        break
            over = rate - served
            if over > 0:
                unserved[k] = over
        return loads, draws, unserved


#: Process-wide kernel LRU.  Keys carry the full frozen profiles (not just
#: machine ids), so reuse across replays — even replays built on different
#: infrastructures that happen to repeat machine names — is always safe.
_KERNEL_CACHE = TelemetryLRU(maxsize=256)


def serving_set_kernel(
    strategy: str, machines: Sequence[Machine]
) -> ServingSetKernel:
    """The memoised composite kernel for a serving set (order-sensitive)."""
    key = (strategy, tuple((m.machine_id, m.profile) for m in machines))
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        kernel = ServingSetKernel(strategy, key[1])
        _KERNEL_CACHE.put(key, kernel)
    return kernel


def serving_kernel_cache_stats() -> Dict[str, int]:
    """Hit/miss/size telemetry of the serving-set kernel LRU."""
    return _KERNEL_CACHE.stats()
