"""Load balancer: distributes the request rate over running instances.

The paper's target application is a stateless web server behind a load
balancer, so "the load [can] be distributed among several web server
instances".  Two strategies are provided:

* ``"efficient"`` (default) — fill machines by increasing marginal power
  cost (the slope of their linear model); this is the assignment the
  analytical power model assumes, so the event-driven simulator and the
  vectorised fast path agree exactly;
* ``"proportional"`` — classic capacity-weighted spreading (every machine
  gets the same utilisation fraction); under the linear model the *group*
  power is identical for homogeneous groups, slightly higher for
  heterogeneous mixes, which the ablation benches quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .machine import Machine

__all__ = ["LoadBalancer", "Assignment", "WindowAssignment"]


@dataclass(frozen=True)
class Assignment:
    """Outcome of one balancing round."""

    shares: Dict[str, float]  # machine_id -> rate
    served: float
    unserved: float


class LoadBalancer:
    """Stateless request-rate splitter over ON machines."""

    def __init__(self, strategy: str = "efficient") -> None:
        if strategy not in ("efficient", "proportional"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy

    def balance(self, rate: float, machines: Sequence[Machine]) -> Assignment:
        """Split ``rate`` over ``machines``; excess demand is unserved."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        capacity = sum(m.profile.max_perf for m in machines)
        served = min(rate, capacity)
        shares: Dict[str, float] = {m.machine_id: 0.0 for m in machines}
        if served > 0 and machines:
            if self.strategy == "efficient":
                remaining = served
                for m in sorted(machines, key=lambda m: m.profile.slope):
                    take = min(remaining, m.profile.max_perf)
                    shares[m.machine_id] = take
                    remaining -= take
                    if remaining <= 1e-12:
                        break
            else:  # proportional
                frac = served / capacity
                for m in machines:
                    shares[m.machine_id] = frac * m.profile.max_perf
        return Assignment(
            shares=shares, served=served, unserved=max(rate - served, 0.0)
        )

    def apply(
        self, rate: float, machines: Sequence[Machine], now: float
    ) -> Assignment:
        """Balance and push the shares onto the machines (metered)."""
        assignment = self.balance(rate, machines)
        for m in machines:
            m.assign_load(assignment.shares[m.machine_id], now)
        return assignment

    # -- windowed balancing (segment-compressed replay) --------------------
    def balance_series(
        self, rates: np.ndarray, machines: Sequence[Machine]
    ) -> "WindowAssignment":
        """Vectorised :meth:`balance` over a window of per-second rates.

        The machine set must be constant across the window (the replay's
        steady segments guarantee this).  Every float operation mirrors the
        scalar loop — same fill order (stable sort by slope), same running
        ``remaining`` subtraction chain, same ``1e-12`` early-exit mask —
        so each window column is bit-identical to one :meth:`balance` call.
        """
        rates = np.asarray(rates, dtype=float)
        if np.any(rates < 0):
            raise ValueError("rate must be >= 0")
        capacity = sum(m.profile.max_perf for m in machines)
        served = np.minimum(rates, capacity)
        n = len(rates)
        loads: Dict[str, np.ndarray] = {}
        if machines:
            if self.strategy == "efficient":
                remaining = served.copy()
                # The scalar loop runs only when served > 0 and breaks once
                # remaining <= 1e-12; ``active`` tracks both conditions.
                active = served > 0
                for m in sorted(machines, key=lambda m: m.profile.slope):
                    take = np.where(
                        active,
                        np.minimum(remaining, m.profile.max_perf),
                        0.0,
                    )
                    loads[m.machine_id] = take
                    remaining = remaining - take
                    active = active & (remaining > 1e-12)
            elif capacity > 0:  # proportional (served > 0 implies capacity > 0)
                frac = served / capacity
                for m in machines:
                    loads[m.machine_id] = frac * m.profile.max_perf
        # Degenerate sets (no machines / zero capacity) serve nothing.
        for m in machines:
            if m.machine_id not in loads:
                loads[m.machine_id] = np.zeros(n)
        return WindowAssignment(
            loads=loads,
            served=served,
            unserved=np.maximum(rates - served, 0.0),
        )

    def apply_series(
        self, rates: np.ndarray, machines: Sequence[Machine], t_start: int
    ) -> "WindowAssignment":
        """Balance a window and push per-second loads onto the machines.

        Batch counterpart of calling :meth:`apply` once per second: each
        machine receives its whole load series in one
        :meth:`~repro.sim.machine.Machine.assign_load_series` call (one
        meter write per machine per window) and is left holding the
        window's final load.  The returned assignment carries each
        machine's per-second power draw series.
        """
        assignment = self.balance_series(rates, machines)
        draws = {
            m.machine_id: m.assign_load_series(
                assignment.loads[m.machine_id], t_start
            )
            for m in machines
        }
        return WindowAssignment(
            loads=assignment.loads,
            served=assignment.served,
            unserved=assignment.unserved,
            draws=draws,
        )


@dataclass(frozen=True)
class WindowAssignment:
    """Outcome of balancing a whole window of per-second rates.

    ``draws`` is filled by :meth:`LoadBalancer.apply_series` only (the
    per-machine power series implied by the assigned loads).
    """

    loads: Dict[str, np.ndarray]  # machine_id -> per-second rate series
    served: np.ndarray
    unserved: np.ndarray
    draws: Optional[Dict[str, np.ndarray]] = None  # machine_id -> power series
