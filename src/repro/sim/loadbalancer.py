"""Load balancer: distributes the request rate over running instances.

The paper's target application is a stateless web server behind a load
balancer, so "the load [can] be distributed among several web server
instances".  Two strategies are provided:

* ``"efficient"`` (default) — fill machines by increasing marginal power
  cost (the slope of their linear model); this is the assignment the
  analytical power model assumes, so the event-driven simulator and the
  vectorised fast path agree exactly;
* ``"proportional"`` — classic capacity-weighted spreading (every machine
  gets the same utilisation fraction); under the linear model the *group*
  power is identical for homogeneous groups, slightly higher for
  heterogeneous mixes, which the ablation benches quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .machine import Machine

__all__ = ["LoadBalancer", "Assignment"]


@dataclass(frozen=True)
class Assignment:
    """Outcome of one balancing round."""

    shares: Dict[str, float]  # machine_id -> rate
    served: float
    unserved: float


class LoadBalancer:
    """Stateless request-rate splitter over ON machines."""

    def __init__(self, strategy: str = "efficient") -> None:
        if strategy not in ("efficient", "proportional"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy

    def balance(self, rate: float, machines: Sequence[Machine]) -> Assignment:
        """Split ``rate`` over ``machines``; excess demand is unserved."""
        if rate < 0:
            raise ValueError("rate must be >= 0")
        capacity = sum(m.profile.max_perf for m in machines)
        served = min(rate, capacity)
        shares: Dict[str, float] = {m.machine_id: 0.0 for m in machines}
        if served > 0 and machines:
            if self.strategy == "efficient":
                remaining = served
                for m in sorted(machines, key=lambda m: m.profile.slope):
                    take = min(remaining, m.profile.max_perf)
                    shares[m.machine_id] = take
                    remaining -= take
                    if remaining <= 1e-12:
                        break
            else:  # proportional
                frac = served / capacity
                for m in machines:
                    shares[m.machine_id] = frac * m.profile.max_perf
        return Assignment(
            shares=shares, served=served, unserved=max(rate - served, 0.0)
        )

    def apply(
        self, rate: float, machines: Sequence[Machine], now: float
    ) -> Assignment:
        """Balance and push the shares onto the machines (metered)."""
        assignment = self.balance(rate, machines)
        for m in machines:
            m.assign_load(assignment.shares[m.machine_id], now)
        return assignment
