"""Event-driven data-center replay (reference implementation).

This is the from-first-principles counterpart of the vectorised
:func:`repro.sim.datacenter.execute_plan`: every machine is a real
:class:`~repro.sim.machine.Machine` FSM, boots and shutdowns are events in
an :class:`~repro.sim.events.EventQueue`, application instances are
deployed/retired/migrated explicitly, and a
:class:`~repro.sim.loadbalancer.LoadBalancer` re-splits the request rate
every second.  Energy comes out of the per-machine
:class:`~repro.sim.energy.EnergyMeter` ledger.

It runs in O(seconds x machines) Python, so it is meant for hours-long
traces: validation tests cross-check it against the fast path (they agree
exactly when instance start/stop times are zero), examples use it to show
machine-level state timelines.

Decision rule (identical to :class:`~repro.core.scheduler.BMLScheduler`):
at every second outside a reconfiguration window, look up the combination
for the predicted rate; when it differs from the current one, boot the
missing machines, hand over the serving set once the slowest boot
completes (migrating instances off retiring machines), then shut the
surplus machines down.  No decision is taken before the window completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.combination import Combination, CombinationTable
from ..core.prediction import LookAheadMaxPredictor, Predictor
from ..core.reconfiguration import Reconfiguration
from ..workload.trace import LoadTrace
from .application import Application, ApplicationSpec
from .cluster import Cluster
from .energy import EnergyMeter
from .events import EventQueue
from .loadbalancer import LoadBalancer
from .machine import Machine, MachineState
from .results import SimulationResult

__all__ = ["EventDrivenReplay", "ReplayStats"]


@dataclass
class ReplayStats:
    """Machine-level counters the fast path cannot produce."""

    boots: Dict[str, int] = field(default_factory=dict)
    shutdowns: Dict[str, int] = field(default_factory=dict)
    migrations: int = 0
    peak_machines_on: int = 0


class EventDrivenReplay:
    """Replay a trace with explicit machines, instances and events."""

    def __init__(
        self,
        table: CombinationTable,
        trace: LoadTrace,
        predictor: Optional[Predictor] = None,
        app_spec: Optional[ApplicationSpec] = None,
        balancer: Optional[LoadBalancer] = None,
        inventory: Optional[Dict[str, int]] = None,
    ) -> None:
        if abs(trace.timestep - 1.0) > 1e-12:
            raise ValueError("the event-driven replay expects a 1 Hz trace")
        self.table = table
        self.trace = trace
        self.predictor = predictor or LookAheadMaxPredictor()
        self.app = Application(app_spec or ApplicationSpec(stop_time=0.0, start_time=0.0))
        self.balancer = balancer or LoadBalancer()
        self.meter = EnergyMeter()
        self.cluster = Cluster(
            list(table.profiles), meter=self.meter, inventory=inventory
        )
        self.queue = EventQueue()
        self.stats = ReplayStats()
        self._serving: List[Machine] = []
        self._reconfig_until = 0
        self._current = Combination.empty()
        self._events: List[Reconfiguration] = []

    # -- setup -----------------------------------------------------------
    def _materialise_initial(self, combo: Combination, now: float) -> None:
        """Bring the initial combination ON instantly (steady-state start)."""
        for prof, count in combo.items:
            for _ in range(count):
                m = self.cluster.acquire_off_machine(prof.name, now)
                # Skip the boot: the replay starts in steady state, like the
                # paper's scenarios (and the fast path's initial segment).
                m.state = MachineState.ON
                m.transition_ends = None
                self.meter.set_power(m.machine_id, m.power_draw, now)
                self.app.deploy(m, now)
                inst = self.app.instance_on(m)
                assert inst is not None
                inst.ready_at = now  # pre-warmed
        self._current = combo
        self._serving = self.cluster.machines()

    # -- reconfiguration ---------------------------------------------------
    def _start_reconfiguration(self, t: int, target: Combination) -> None:
        delta = self._current.diff(target)
        starts = {n: d for n, d in delta.items() if d > 0}
        stops = {n: -d for n, d in delta.items() if d < 0}
        booted: List[Machine] = []
        boot_dur = 0
        for name, cnt in starts.items():
            machines = self.cluster.boot(name, cnt, t)
            booted.extend(machines)
            for m in machines:
                assert m.transition_ends is not None
                boot_dur = max(boot_dur, int(m.transition_ends - t))
                self.queue.schedule(m.transition_ends, m.complete_boot, m.transition_ends)
                self.stats.boots[name] = self.stats.boots.get(name, 0) + 1
        handover = t + boot_dur
        off_dur = 0
        profs = self.cluster.profiles
        for name in stops:
            p = profs[name]
            off_dur = max(off_dur, int(np.ceil(p.off_time - 1e-9)))
        if boot_dur == 0:
            # Pure scale-down: the hand-over happens at the decision itself
            # (the queue only drains at the next loop step).
            self._handover(float(t), target, stops, booted)
        else:
            self.queue.schedule(handover, self._handover, handover, target, stops, booted)
        self._reconfig_until = handover + off_dur
        self._events.append(
            Reconfiguration(
                decided_at=t,
                completes_at=self._reconfig_until,
                before=self._current,
                after=target,
                boot_duration=boot_dur,
                off_duration=off_dur,
                on_energy=sum(
                    cnt * profs[n].on_energy for n, cnt in starts.items()
                ),
                off_energy=sum(
                    cnt * profs[n].off_energy for n, cnt in stops.items()
                ),
            )
        )
        self._current = target

    def _handover(
        self,
        now: float,
        target: Combination,
        stops: Dict[str, int],
        booted: List[Machine],
    ) -> None:
        """Hand the serving role to the target set; drain and stop surplus."""
        # Retire instances from victims and stop the machines.
        for name, cnt in stops.items():
            victims = self.cluster.pick_shutdown_victims(name, cnt)
            for m in victims:
                if self.app.instance_on(m) is not None:
                    if booted:
                        # Stateless migration onto one of the new machines
                        # (round robin); pure scale-downs just retire.
                        tgt = booted[self.stats.migrations % len(booted)]
                        if self.app.instance_on(tgt) is None:
                            self.app.migrate(m, tgt, now)
                            self.stats.migrations += 1
                        else:
                            self.app.retire(m, now)
                    else:
                        self.app.retire(m, now)
                else:  # machine had no instance (drained earlier)
                    m.assign_load(0.0, now)
                end = m.power_off(now)
                self.queue.schedule(end, m.complete_shutdown, end)
                self.stats.shutdowns[name] = self.stats.shutdowns.get(name, 0) + 1
        # Ensure every ON machine of the target set hosts an instance.
        for m in self.cluster.machines():
            if m.state is MachineState.ON and self.app.instance_on(m) is None:
                self.app.deploy(m, now)
        self._serving = [
            m for m in self.cluster.machines() if m.state is MachineState.ON
        ]

    # -- main loop ------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Replay the full trace; returns the same result type as the fast path."""
        trace = self.trace
        horizon = len(trace)
        pred = self.predictor.series(trace)
        power = np.empty(horizon)
        unserved = np.zeros(horizon)

        initial = self.table.combination_for(float(pred[0]))
        self._materialise_initial(initial, 0.0)

        for t in range(horizon):
            self.queue.run_until(t)
            if t >= self._reconfig_until:
                target = self.table.combination_for(float(pred[t]))
                if target != self._current:
                    self._start_reconfiguration(t, target)
            ready = [
                m
                for m in self._serving
                if m.state is MachineState.ON
                and (inst := self.app.instance_on(m)) is not None
                and inst.is_ready(t)
            ]
            assignment = self.balancer.apply(float(trace.values[t]), ready, t)
            unserved[t] = assignment.unserved
            power[t] = self.cluster.total_power()
            n_on = sum(
                1 for m in self.cluster.machines() if m.state is MachineState.ON
            )
            self.stats.peak_machines_on = max(self.stats.peak_machines_on, n_on)
        # Let in-flight transitions finish for exact energy accounting.
        self.queue.run_until(horizon)
        self.meter.finalize(horizon)
        return SimulationResult(
            scenario="event-driven BML",
            trace_name=trace.name,
            timestep=trace.timestep,
            power=power,
            unserved=unserved,
            reconfigurations=self._events,
            meta={
                "meter_energy_j": self.meter.total_energy,
                "migrations": self.stats.migrations,
                "peak_machines_on": self.stats.peak_machines_on,
            },
        )
