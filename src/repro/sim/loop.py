"""Event-driven data-center replay (segment-compressed + reference engines).

This is the from-first-principles counterpart of the vectorised
:func:`repro.sim.datacenter.execute_plan`: every machine is a real
:class:`~repro.sim.machine.Machine` FSM, boots and shutdowns are events in
an :class:`~repro.sim.events.EventQueue`, application instances are
deployed/retired/migrated explicitly, and a
:class:`~repro.sim.loadbalancer.LoadBalancer` re-splits the request rate
every second.  Energy comes out of the per-machine
:class:`~repro.sim.energy.EnergyMeter` ledger.

Decision rule (identical to :class:`~repro.core.scheduler.BMLScheduler`):
at every second outside a reconfiguration window, look up the combination
for the predicted rate; when it differs from the current one, boot the
missing machines, hand over the serving set once the slowest boot
completes (migrating instances off retiring machines), then shut the
surplus machines down.  No decision is taken before the window completes.

Three engines replay that rule:

* ``engine="reference"`` — the original O(seconds x machines) Python loop:
  one load-balancer round, one ledger write per machine, and one cluster
  power scan per second.  Kept as the executable specification.
* ``engine="segments"`` — the PR 5 segment-compressed engine.  Between
  events the serving set is piecewise-constant, so the replay advances
  boundary to boundary (machine-state events, instance-ready times,
  decision points found by scanning the predictor series against
  mixed-radix table row ids, exactly like the scheduler) and evaluates
  each steady segment with the memoised **serving-set kernel**
  (:func:`~repro.sim.loadbalancer.serving_set_kernel`): the exact
  per-machine balance/draw chain runs once over the window's *unique*
  rates, results are scattered back through the gather index, and the
  per-machine ledger writes are buffered by the **deferred array
  ledger** (:meth:`~repro.sim.energy.EnergyMeter.record_gather`) and
  settled in one ``np.cumsum`` pass per machine.  Every kernel mirrors
  the per-second float-operation order exactly — equal inputs get equal
  outputs by construction — so the produced series, ledger totals and
  counters are **bit-identical** to the reference engine (pinned by
  ``tests/properties/test_prop_replay.py``), while day-scale replays
  run orders of magnitude faster.
* ``engine="twophase"`` (default) — the two-phase control/evaluate
  engine.  The **control pass** is the same boundary-to-boundary walk,
  but pure and allocation-light: it runs the FSM/event bookkeeping and
  emits one ``(serving set, window)`` descriptor per steady segment —
  no kernel math, no energy settling (ledger transitions are journaled
  by the meter's batch mode).  The **evaluate pass** then groups *all*
  windows sharing a frozen serving set across the whole run — not just
  consecutive ones — concatenates their rate windows and runs each
  group through **one** kernel invocation, scattering results back
  through a run-level gather plan; the journal is settled afterwards by
  :meth:`~repro.sim.energy.EnergyMeter.record_batch`, so each machine's
  full contribution stream collapses to a handful of ``np.cumsum``
  passes over the whole run.  The kernel chain is elementwise over the
  rate values, so evaluating a group's concatenation is bit-identical
  to evaluating its windows one by one — the same property suite pins
  all three engines against each other.  Per-segment cost drops from
  O(serving machines) kernel work to emitting one descriptor, which is
  what makes year-scale replays a seconds-scale operation.

Reconfigurations themselves still run through the real FSM/event-queue
machinery in both engines: booting, migration round-robin, shutdown victim
selection and the energy ledger writes they imply are shared code, not
re-derived.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.combination import Combination, CombinationTable
from ..core.prediction import (
    LookAheadMaxPredictor,
    Predictor,
    cached_prediction_series,
)
from ..core.reconfiguration import Reconfiguration
from ..core.scheduler import _next_decision, _row_ids
from ..workload.trace import LoadTrace
from .application import Application, ApplicationSpec
from .cluster import Cluster
from .energy import EnergyMeter
from .events import EventQueue
from .loadbalancer import LoadBalancer, ServingSetKernel, serving_set_kernel
from .machine import Machine, MachineState, _ceil_s
from .results import SimulationResult

__all__ = ["EventDrivenReplay", "ReplayStats"]


@dataclass
class ReplayStats:
    """Machine-level counters the fast path cannot produce.

    Engine-shape telemetry (segment, serving-set and batch counts) lives
    in ``SimulationResult.meta`` instead: these counters are part of the
    cross-engine bit-identity contract (``ref.stats == seg.stats``), and
    the reference engine has no segments to count.
    """

    boots: Dict[str, int] = field(default_factory=dict)
    shutdowns: Dict[str, int] = field(default_factory=dict)
    migrations: int = 0
    peak_machines_on: int = 0


@dataclass
class _ControlPlan:
    """Everything the control pass emits for the evaluate pass.

    ``descs[j] = (t, b, kernel_idx, plan_idx)`` describes steady segment
    ``[t, b)`` served by ``kernels[kernel_idx]`` under power-accumulation
    plan ``plans[plan_idx]`` (the ``(draw key | None, constant)`` pairs of
    the segment engine, deduplicated by content).  The meter holds the
    matching journal; descriptor ``j``'s marker is the integer ``j``.
    """

    descs: List[Tuple[int, int, int, int]]
    kernels: List[object]
    plans: List[Tuple[Tuple[Optional[str], float], ...]]
    compress: bool
    horizon: int


class EventDrivenReplay:
    """Replay a trace with explicit machines, instances and events."""

    def __init__(
        self,
        table: CombinationTable,
        trace: LoadTrace,
        predictor: Optional[Predictor] = None,
        app_spec: Optional[ApplicationSpec] = None,
        balancer: Optional[LoadBalancer] = None,
        inventory: Optional[Dict[str, int]] = None,
    ) -> None:
        if abs(trace.timestep - 1.0) > 1e-12:
            raise ValueError("the event-driven replay expects a 1 Hz trace")
        self.table = table
        self.trace = trace
        self.predictor = predictor or LookAheadMaxPredictor()
        self.app = Application(app_spec or ApplicationSpec(stop_time=0.0, start_time=0.0))
        self.balancer = balancer or LoadBalancer()
        self.meter = EnergyMeter()
        self.cluster = Cluster(
            list(table.profiles), meter=self.meter, inventory=inventory
        )
        self.queue = EventQueue()
        self.stats = ReplayStats()
        self._serving: List[Machine] = []
        self._reconfig_until = 0
        self._current = Combination.empty()
        self._events: List[Reconfiguration] = []
        self._twophase_plan: Optional[_ControlPlan] = None
        #: time of the scheduled (not yet executed) hand-over, if any —
        #: the only queued event kind whose callback reads machine loads.
        self._pending_handover: Optional[float] = None
        #: wall-time per phase (predict / control / evaluate / settle),
        #: surfaced as ``meta["phase_s"]`` for the CLI's ``--stats`` table.
        self._phase_s: Dict[str, float] = {}

    # -- setup -----------------------------------------------------------
    def _materialise_initial(self, combo: Combination, now: float) -> None:
        """Bring the initial combination ON instantly (steady-state start)."""
        for prof, count in combo.items:
            for _ in range(count):
                m = self.cluster.acquire_off_machine(prof.name, now)
                # Skip the boot: the replay starts in steady state, like the
                # paper's scenarios (and the fast path's initial segment).
                m.state = MachineState.ON
                m.transition_ends = None
                self.meter.set_power(m.machine_id, m.power_draw, now)
                self.app.deploy(m, now)
                inst = self.app.instance_on(m)
                assert inst is not None
                inst.ready_at = now  # pre-warmed
        self._current = combo
        self._serving = self.cluster.machines()

    # -- reconfiguration ---------------------------------------------------
    def _start_reconfiguration(self, t: int, target: Combination) -> None:
        delta = self._current.diff(target)
        starts = {n: d for n, d in delta.items() if d > 0}
        stops = {n: -d for n, d in delta.items() if d < 0}
        booted: List[Machine] = []
        boot_dur = 0
        for name, cnt in starts.items():
            machines = self.cluster.boot(name, cnt, t)
            booted.extend(machines)
            for m in machines:
                assert m.transition_ends is not None
                boot_dur = max(boot_dur, int(m.transition_ends - t))
                self.queue.schedule(m.transition_ends, m.complete_boot, m.transition_ends)
                self.stats.boots[name] = self.stats.boots.get(name, 0) + 1
        handover = t + boot_dur
        off_dur = 0
        profs = {
            name: self.cluster.profile(name)
            for name in (*starts, *stops)
        }
        for name in stops:
            p = profs[name]
            off_dur = max(off_dur, int(math.ceil(p.off_time - 1e-9)))
        if boot_dur == 0:
            # Pure scale-down: the hand-over happens at the decision itself
            # (the queue only drains at the next loop step).
            self._handover(float(t), target, stops, booted)
        else:
            self._pending_handover = handover
            self.queue.schedule(handover, self._handover, handover, target, stops, booted)
        self._reconfig_until = handover + off_dur
        self._events.append(
            Reconfiguration(
                decided_at=t,
                completes_at=self._reconfig_until,
                before=self._current,
                after=target,
                boot_duration=boot_dur,
                off_duration=off_dur,
                on_energy=sum(
                    cnt * profs[n].on_energy for n, cnt in starts.items()
                ),
                off_energy=sum(
                    cnt * profs[n].off_energy for n, cnt in stops.items()
                ),
            )
        )
        self._current = target

    def _handover(
        self,
        now: float,
        target: Combination,
        stops: Dict[str, int],
        booted: List[Machine],
    ) -> None:
        """Hand the serving role to the target set; drain and stop surplus."""
        self._pending_handover = None
        # Retire instances from victims and stop the machines.
        for name, cnt in stops.items():
            victims = self.cluster.pick_shutdown_victims(name, cnt)
            for m in victims:
                if self.app.instance_on(m) is not None:
                    if booted:
                        # Stateless migration onto one of the new machines
                        # (round robin); pure scale-downs just retire.
                        tgt = booted[self.stats.migrations % len(booted)]
                        if self.app.instance_on(tgt) is None:
                            self.app.migrate(m, tgt, now)
                            self.stats.migrations += 1
                        else:
                            self.app.retire(m, now)
                    else:
                        self.app.retire(m, now)
                else:  # machine had no instance (drained earlier)
                    m.assign_load(0.0, now)
                end = m.power_off(now)
                self.queue.schedule(end, m.complete_shutdown, end)
                self.stats.shutdowns[name] = self.stats.shutdowns.get(name, 0) + 1
        # Ensure every ON machine of the target set hosts an instance
        # (one cluster scan serves both the deploy check and the new
        # serving list).
        serving = self.cluster.machines_in_state(MachineState.ON)
        for m in serving:
            if self.app.instance_on(m) is None:
                self.app.deploy(m, now)
        self._serving = serving

    # -- precomputed reconfiguration schedule (two-phase control pass) ------
    def _reconfig_schedule(
        self,
        pred: np.ndarray,
        cid: np.ndarray,
        changes: np.ndarray,
        grid_idx: np.ndarray,
        initial: Combination,
    ) -> List[tuple]:
        """Resolve every reconfiguration the decision series implies.

        One compact pass over the *genuine* serving-set transitions —
        not the per-segment walk — replays the scheduler's decision rule
        symbolically: from each decision time the next one is the first
        second at or after the reconfiguration window's end whose
        combination id differs, exactly the ``_next_decision`` scan the
        walk used to run per segment.  Boot/off durations are pure
        profile math (``power_on`` sets ``transition_ends = now +
        _ceil_s(on_time)``, so the FSM walk's ``int(transition_ends -
        t)`` *is* ``_ceil_s(on_time)``), which lets every window,
        duration and energy figure of the
        :class:`~repro.core.reconfiguration.Reconfiguration` record be
        fixed here; :meth:`_start_scheduled` later performs only the
        irreducible FSM/event work.  Deltas between combination ids
        repeat heavily under periodic traces, so they are memoised per
        ``(from_id, to_id)`` pair.

        Entries: ``(t, target, starts, stops, boot_dur, off_dur, until,
        on_energy, off_energy)`` with ``starts``/``stops`` as ``(name,
        count)`` tuples in ``Combination.diff`` iteration order (the
        journal and energy-sum order of the FSM walk).
        """
        table = self.table
        profile = self.cluster.profile
        horizon = len(cid)
        sched: List[tuple] = []
        delta_memo: Dict[Tuple[int, int], tuple] = {}
        cur = initial
        cur_id = int(cid[0])
        d_from = 1
        pos = 0
        n_changes = len(changes)
        while d_from < horizon:
            if cid[d_from] != cur_id:
                td = d_from
            else:
                while pos < n_changes and changes[pos] <= d_from:
                    pos += 1
                td = None
                while pos < n_changes:
                    c = int(changes[pos])
                    if cid[c] != cur_id:
                        td = c
                        break
                    pos += 1
                if td is None:
                    break
            td = int(td)
            if cid[td] == -1:
                # Raises for rates beyond the table, like the walk would
                # at this decision second.
                table.combination_for(float(pred[td]))
            new_id = int(cid[td])
            info = delta_memo.get((cur_id, new_id))
            if info is None:
                target = table.combo_at(int(grid_idx[td]))
                delta = cur.diff(target)
                starts = tuple((n, d) for n, d in delta.items() if d > 0)
                stops = tuple((n, -d) for n, d in delta.items() if d < 0)
                boot_dur = 0
                on_energy = 0
                for name, cnt in starts:
                    p = profile(name)
                    dur = _ceil_s(p.on_time)
                    if dur > boot_dur:
                        boot_dur = dur
                    on_energy = on_energy + cnt * p.on_energy
                off_dur = 0
                off_energy = 0
                for name, cnt in stops:
                    p = profile(name)
                    dur = int(math.ceil(p.off_time - 1e-9))
                    if dur > off_dur:
                        off_dur = dur
                    off_energy = off_energy + cnt * p.off_energy
                info = (
                    target, starts, stops, boot_dur, off_dur,
                    on_energy, off_energy,
                )
                delta_memo[(cur_id, new_id)] = info
            target, starts, stops, boot_dur, off_dur, on_e, off_e = info
            until = td + boot_dur + off_dur
            sched.append(
                (td, target, starts, stops, boot_dur, off_dur, until,
                 on_e, off_e)
            )
            cur = target
            cur_id = new_id
            d_from = until if until > td else td + 1
        return sched

    def _start_scheduled(self, entry: tuple) -> None:
        """Execute one precomputed reconfiguration through the real FSM.

        The boot/hand-over/shutdown event machinery is shared with
        :meth:`_start_reconfiguration` — only the delta/duration/energy
        bookkeeping is skipped, because the schedule already fixed it.
        """
        (t, target, starts, stops, boot_dur, off_dur, until,
         on_energy, off_energy) = entry
        booted: List[Machine] = []
        boots = self.stats.boots
        for name, cnt in starts:
            machines = self.cluster.boot(name, cnt, t)
            booted.extend(machines)
            boots[name] = boots.get(name, 0) + cnt
            for m in machines:
                self.queue.schedule(
                    m.transition_ends, m.complete_boot, m.transition_ends
                )
        stops_d = dict(stops)
        if boot_dur == 0:
            # Pure scale-down: the hand-over happens at the decision
            # itself (the queue only drains at the next loop step).
            self._handover(float(t), target, stops_d, booted)
        else:
            handover = t + boot_dur
            self._pending_handover = handover
            self.queue.schedule(
                handover, self._handover, handover, target, stops_d, booted
            )
        self._reconfig_until = until
        self._events.append(
            Reconfiguration(
                decided_at=t,
                completes_at=until,
                before=self._current,
                after=target,
                boot_duration=boot_dur,
                off_duration=off_dur,
                on_energy=on_energy,
                off_energy=off_energy,
            )
        )
        self._current = target

    # -- shared pieces ------------------------------------------------------
    def _prediction_series(self, trace: LoadTrace) -> np.ndarray:
        """The predictor's series, inventory-clamped like the planner's.

        With bounded machine pools the scheduler clamps predictions to
        the owned capacity and builds the table no larger (the shortfall
        surfaces as unserved demand); the replay applies the same clamp,
        so demand beyond the data center's capacity selects the table's
        largest combination instead of raising an out-of-range lookup.
        Unbounded clusters get the raw series — their table always
        covers the trace peak, and a genuine overshoot should still
        raise.

        Served through the process-wide series cache
        (:func:`repro.core.prediction.cached_prediction_series`): replays
        and sweep grid points sharing a workload pay the sliding-maximum
        filter once; the clamp is part of the cache key, so bounded and
        unbounded runs over the same trace never collide.
        """
        clamp = self.table.max_rate if self.cluster.is_bounded else None
        return cached_prediction_series(self.predictor, trace, clamp=clamp)

    def _decision_ids(
        self, pred: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mixed-radix combination id per second, change points and indices.

        Rates beyond the table get the sentinel id ``-1``: the first such
        second that is checked for a decision triggers a table lookup and
        raises exactly where the per-second reference would (seconds inside
        reconfiguration windows are never checked by either engine).  The
        returned grid indices let decision points fetch their combination
        with ``table.combo_at`` instead of re-deriving the lookup.
        """
        # Ids are encoded on the table's few thousand rows once, then
        # gathered per second through the table's own (non-raising) grid
        # rounding — O(T) int64, no (T, n_arch) intermediate.
        idx, oob = self.table.clipped_index(pred)
        table_ids = _row_ids(self.table.counts_array)
        cid = table_ids[idx]
        cid[oob] = -1
        changes = np.flatnonzero(cid[1:] != cid[:-1]) + 1
        return cid, changes, idx

    def _ready_serving(self, t: int) -> List[Machine]:
        """Serving machines whose instance can take traffic at second ``t``."""
        return [
            m
            for m in self._serving
            if m.state is MachineState.ON
            and (inst := self.app.instance_on(m)) is not None
            and inst.is_ready(t)
        ]

    def _finish(self, horizon: int, power, unserved, extra_meta) -> SimulationResult:
        # Let in-flight transitions finish for exact energy accounting.
        t0 = _time.perf_counter()
        self.queue.run_until(horizon)
        self.meter.finalize(horizon)
        meter_energy = self.meter.total_energy
        self._phase_s["settle"] = (
            self._phase_s.get("settle", 0.0) + _time.perf_counter() - t0
        )
        meta = {
            "meter_energy_j": meter_energy,
            "migrations": self.stats.migrations,
            "peak_machines_on": self.stats.peak_machines_on,
        }
        meta.update(extra_meta)
        # Wall-clock telemetry, deliberately outside the bit-identity
        # surface: ScenarioResult does not persist meta and the property
        # suite compares meter_energy_j only.
        meta["phase_s"] = dict(self._phase_s)
        return SimulationResult(
            scenario="event-driven BML",
            trace_name=self.trace.name,
            timestep=self.trace.timestep,
            power=power,
            unserved=unserved,
            reconfigurations=self._events,
            meta=meta,
        )

    # -- main loop ------------------------------------------------------------
    def run(self, engine: str = "twophase") -> SimulationResult:
        """Replay the full trace; returns the same result type as the fast path.

        ``engine="twophase"`` (default) runs the two-phase
        control/evaluate engine; ``engine="segments"`` the PR 5
        segment-compressed engine; ``engine="reference"`` the original
        per-second Python loop.  All three produce bit-identical results;
        a replay object is single-use either way.
        """
        if engine == "twophase":
            return self._run_twophase()
        if engine == "segments":
            return self._run_segments()
        if engine == "reference":
            return self._run_reference()
        raise ValueError(f"unknown engine {engine!r}")

    def _run_reference(self) -> SimulationResult:
        """The per-second FSM loop — the executable specification."""
        trace = self.trace
        horizon = len(trace)
        t0 = _time.perf_counter()
        pred = self._prediction_series(trace)
        t1 = _time.perf_counter()
        self._phase_s["predict"] = t1 - t0
        power = np.empty(horizon)
        unserved = np.zeros(horizon)

        initial = self.table.combination_for(float(pred[0]))
        self._materialise_initial(initial, 0.0)

        for t in range(horizon):
            self.queue.run_until(t)
            if t >= self._reconfig_until:
                target = self.table.combination_for(float(pred[t]))
                if target != self._current:
                    self._start_reconfiguration(t, target)
            ready = self._ready_serving(t)
            assignment = self.balancer.apply(float(trace.values[t]), ready, t)
            unserved[t] = assignment.unserved
            power[t] = self.cluster.total_power()
            n_on = self.cluster.n_in_state(MachineState.ON)
            self.stats.peak_machines_on = max(self.stats.peak_machines_on, n_on)
        self._phase_s["control"] = _time.perf_counter() - t1
        return self._finish(horizon, power, unserved, {"engine": "reference"})

    def _run_segments(self) -> SimulationResult:
        """Segment-compressed replay: batch every steady window onto numpy.

        The loop advances from boundary to boundary instead of second to
        second.  A boundary is the earliest of: the next event's effect
        time (events fire when the clock *reaches* them, so an event at
        ``tau`` becomes visible at step ``ceil(tau)``), the next decision
        point (first second at or after the reconfiguration window's end
        whose predicted combination id differs from the current one), the
        next instance-ready threshold on a serving machine, and the
        horizon.  Within a segment the serving set, machine states and
        instance readiness are constant, so the whole window collapses
        onto the vectorised balancer/ledger kernels.
        """
        trace = self.trace
        horizon = len(trace)
        t0 = _time.perf_counter()
        pred = self._prediction_series(trace)
        t1 = _time.perf_counter()
        self._phase_s["predict"] = t1 - t0
        power = np.empty(horizon)
        unserved = np.zeros(horizon)

        initial = self.table.combination_for(float(pred[0]))
        self._materialise_initial(initial, 0.0)

        cid, changes, grid_idx = self._decision_ids(pred)
        cur_id = int(cid[0])
        values = trace.values
        # One whole-trace check lets every window skip its own (the
        # reference raises on the first negative rate it balances; the
        # segment engine raises before starting, same user outcome).
        if np.any(values < 0):
            raise ValueError("rate must be >= 0")
        # Decide the unique-rate compression once for the whole trace
        # (rate repetition is a trace property, not a window property):
        # sample the head, compress when it repeats enough to pay for the
        # per-window sort.  Either choice is bit-identical.
        head = values[: min(len(values), 4096)]
        compress = len(np.unique(head)) <= 0.75 * len(head)
        kernel_memo: Dict[Tuple[str, ...], object] = {}
        machine_list: List[Machine] = []
        acc_plan: List[Tuple[Optional[str], float]] = []
        plan_key: Optional[Tuple[str, ...]] = None
        n_segments = 0
        t = 0
        while t < horizon:
            fired = self.queue.run_until(t)
            state_changed = fired > 0 or t == 0
            if t >= self._reconfig_until and cid[t] != cur_id:
                if cid[t] == -1:
                    # Raises for rates beyond the table, like the reference.
                    self.table.combination_for(float(pred[t]))
                # clipped_index applies combination_for's exact rounding,
                # so the precomputed grid index is the same lookup.
                target = self.table.combo_at(int(grid_idx[t]))
                if target != self._current:
                    self._start_reconfiguration(t, target)
                    state_changed = True
                cur_id = int(cid[t])

            # -- next boundary ------------------------------------------------
            b = horizon
            nxt = self.queue.peek_time()
            if nxt is not None:
                b = min(b, max(int(math.ceil(nxt - 1e-9)), t + 1))
            d_from = self._reconfig_until if t < self._reconfig_until else t + 1
            if d_from < b:
                td = _next_decision(cid, changes, d_from, cur_id)
                if td is not None:
                    b = min(b, td)
            if state_changed:
                # The serving list and the instance placement only move
                # inside reconfigurations/events; the machine pool only
                # grows there too.
                serving_pairs = [
                    (m, self.app.instance_on(m)) for m in self._serving
                ]
                machine_list = self.cluster.machines()
            for m, inst in serving_pairs:
                if inst is not None and inst.ready_at > t:
                    b = min(b, max(int(math.ceil(inst.ready_at - 1e-9)), t + 1))

            # -- evaluate the steady segment [t, b) --------------------------
            # The memoised serving-set kernel runs the exact per-machine
            # balance/draw chain on the window's *unique* rates only; the
            # gather index scatters every unique result back to per-second
            # order, so the per-second series stay bit-identical while the
            # window-length work collapses to a constant number of ops.
            ready = [
                m
                for m, inst in serving_pairs
                if m.state is MachineState.ON
                and inst is not None
                and inst.is_ready(t)
            ]
            # Two-level kernel memo: the replay-local dict avoids hashing
            # full profiles per segment (machine ids are stable within one
            # replay); the process-wide LRU underneath provides the
            # cross-replay reuse and the telemetry.
            memo_key = (self.balancer.strategy, *(m.machine_id for m in ready))
            kernel = kernel_memo.get(memo_key)
            if kernel is None:
                kernel = serving_set_kernel(self.balancer.strategy, ready)
                kernel_memo[memo_key] = kernel
            # The accumulation plan — which cluster position contributes a
            # draw series vs a constant — only changes when states move or
            # the ready set does, so it is rebuilt per epoch, not per
            # segment.  OFF machines are dropped from it: adding their
            # 0.0 draw is a float no-op the reference chain performs
            # without effect.
            if state_changed or memo_key != plan_key:
                ready_ids = frozenset(m.machine_id for m in ready)
                # ready machines are ON by construction, so the OFF
                # filter alone decides membership
                acc_plan = [
                    (m.machine_id if m.machine_id in ready_ids else None,
                     m.power_draw)
                    for m in machine_list
                    if m.state is not MachineState.OFF
                ]
                plan_key = memo_key
            if b - t <= 24 and self.balancer.strategy == "efficient":
                # Tiny transition windows: the exact per-second scalar
                # chain beats numpy dispatch overhead (bit-identical by
                # construction — it is the reference chain).
                s_loads, s_draws, s_unserved = kernel.evaluate_small(
                    values[t:b]
                )
                unserved[t:b] = s_unserved
                draw_cols = dict(zip(kernel.machine_ids, s_draws))
                power[t:b] = [
                    sum(
                        const if key is None else draw_cols[key][k]
                        for key, const in acc_plan
                    )
                    for k in range(b - t)
                ]
                for m, loads_c, draws_c in zip(ready, s_loads, s_draws):
                    m.load = float(
                        min(max(loads_c[-1], 0.0), m.profile.max_perf)
                    )
                    self.meter.record_gather(
                        m.machine_id, np.asarray(draws_c), None, t
                    )
            else:
                window = kernel.evaluate(
                    values[t:b], pre_validated=True, compress=compress
                )
                inverse = window.inverse
                unserved[t:b] = window.gather(window.unserved)
                # Power: same machine iteration order (and therefore float
                # accumulation order) as Cluster.total_power, one vector
                # op per machine over the unique rates instead of the
                # window.
                draw_of = dict(zip(kernel.machine_ids, window.draws))
                acc = np.zeros(window.n_unique)
                for draw_key, const in acc_plan:
                    acc += const if draw_key is None else draw_of[draw_key]
                power[t:b] = window.gather(acc)
                # Side effects: leave each serving machine holding the
                # window's final load (shutdown-victim ordering, drain
                # checks) and hand the deferred ledger the same gather
                # pairs — no per-machine per-second series is materialised
                # unless a consumer asks (KernelWindow.draw_series /
                # load_series).
                last = -1 if inverse is None else int(inverse[-1])
                for m, loads_u, draws_u in zip(ready, window.loads, window.draws):
                    m.load = float(
                        min(max(float(loads_u[last]), 0.0), m.profile.max_perf)
                    )
                    self.meter.record_gather(m.machine_id, draws_u, inverse, t)
            if state_changed:
                # Machine states only move when events fired or a
                # reconfiguration started this step; n_on is constant on
                # every other segment, so the peak cannot move either.
                n_on = self.cluster.n_in_state(MachineState.ON)
                self.stats.peak_machines_on = max(
                    self.stats.peak_machines_on, n_on
                )
            n_segments += 1
            t = b
        # The segment engine evaluates inline, so "control" here covers
        # the walk *and* the kernel math (the breakdown the two-phase
        # engine separates).
        self._phase_s["control"] = _time.perf_counter() - t1
        return self._finish(
            horizon, power, unserved,
            {
                "engine": "segments",
                "segments": n_segments,
                "serving_sets": len(kernel_memo),
                # one kernel invocation per segment — the count the
                # two-phase engine collapses to one per serving set
                "batches": n_segments,
            },
        )

    # -- two-phase engine --------------------------------------------------
    def _refresh_loads(
        self,
        ready: List[Machine],
        rate: float,
        kernel: Optional[ServingSetKernel] = None,
    ) -> None:
        """Leave ``ready`` machines holding the previous window's final load.

        The evaluating engines assign loads as a side effect of every window;
        the pure control pass only needs them where the FSM reads them
        (shutdown-victim ordering, drain checks), so it runs one scalar
        balance round there.  The scalar chain is bit-identical to the
        kernel's final column (pinned by the windowed-balancer property),
        and the clamp matches the segment engine's.  Loads are written
        directly — the journal, not this refresh, is what the meter sees.
        When the caller already holds the serving set's kernel, its cached
        fill order is used (:meth:`ServingSetKernel.loads_at`) instead of
        re-sorting machines on every refresh.
        """
        if not ready:
            return
        if kernel is not None:
            for m, share in zip(ready, kernel.loads_at(rate)):
                m.load = share if share <= m.profile.max_perf else m.profile.max_perf
                if m.load < 0.0:
                    m.load = 0.0
            return
        shares = self.balancer.balance(rate, ready).shares
        for m in ready:
            m.load = float(
                min(max(shares[m.machine_id], 0.0), m.profile.max_perf)
            )

    def _control_pass(self) -> _ControlPlan:
        """Phase 1: walk boundaries, emit descriptors, journal the meter.

        The same boundary-to-boundary semantics as ``_run_segments`` —
        events, decision points, instance-ready ceilings, epoch-cached
        serving pairs and accumulation plans — minus all evaluation:
        each steady segment becomes one ``(t, b, kernel, plan)``
        descriptor plus one marker in the meter's journal.  The walk is
        driven by the **precomputed reconfiguration schedule**
        (:meth:`_reconfig_schedule`): decision times, targets, windows
        and record fields are resolved up front in one pass over the
        decision series, so the per-boundary work left here is the
        irreducible FSM/event bookkeeping plus descriptor emission.
        Steady boundaries with no state change and no instance-ready
        threshold crossed reuse the previous segment's kernel/plan
        indices outright.  Machine loads are only refreshed (one scalar
        balance) at boundaries where a hand-over or decision reads them.
        """
        trace = self.trace
        horizon = len(trace)
        t_wall0 = _time.perf_counter()
        pred = self._prediction_series(trace)
        t_wall1 = _time.perf_counter()
        self._phase_s["predict"] = t_wall1 - t_wall0
        values = trace.values
        if np.any(values < 0):
            raise ValueError("rate must be >= 0")
        head = values[: min(len(values), 4096)]
        compress = len(np.unique(head)) <= 0.75 * len(head)
        initial = self.table.combination_for(float(pred[0]))
        self.meter.begin_batch()
        self._materialise_initial(initial, 0.0)

        cid, changes, grid_idx = self._decision_ids(pred)
        sched = self._reconfig_schedule(pred, cid, changes, grid_idx, initial)

        descs: List[Tuple[int, int, int, int]] = []
        kernels: List[object] = []
        kernel_idx: Dict[Tuple[str, ...], int] = {}
        plans: List[Tuple[Tuple[Optional[str], float], ...]] = []
        plan_idx: Dict[Tuple[Tuple[Optional[str], float], ...], int] = {}
        machine_list: List[Machine] = []
        serving_pairs: List[Tuple[Machine, object]] = []
        serving_src: Optional[List[Machine]] = None
        n_mach_seen = -1
        prev_ready: List[Machine] = []
        prev_kernel: Optional[ServingSetKernel] = None
        plan_key: Optional[Tuple[str, ...]] = None
        k_idx = -1
        p_idx = -1
        #: sorted instance-ready thresholds of the current serving epoch;
        #: ``pr_i`` points past every threshold already reached.
        pending_ready: List[float] = []
        pr_i = 0
        #: The ready list is a pure function of (serving epoch, ``pr_i``):
        #: between serving-list replacements a serving machine never
        #: leaves ON (victims are stopped by the hand-over that also
        #: replaces the list) and its instance's ``ready_at`` is fixed,
        #: while ``is_ready`` uses the same ``now >= ready_at``
        #: comparison that advances ``pr_i``.  So the filter only needs
        #: re-running when either input changes — not on every segment.
        ready: List[Machine] = []
        memo_key: Tuple = ()
        ready_stale = True
        queue = self.queue
        heap = queue._heap  # stable list object; run_until mutates in place
        run_until = queue.run_until
        batch_mark = self.meter.batch_mark
        descs_append = descs.append
        instance_on = self.app.instance_on
        cluster = self.cluster
        strategy = self.balancer.strategy
        on_state = MachineState.ON
        off_state = MachineState.OFF
        sched_i = 0
        n_sched = len(sched)
        next_decide = sched[0][0] if n_sched else horizon
        t = 0
        while t < horizon:
            pr_seen = pr_i
            if t == next_decide:
                # Loads are only read by the hand-over path (victim
                # ordering, drain checks) and the decision that may start
                # one — boot/shutdown completions never look at them.
                self._refresh_loads(
                    prev_ready, float(values[t - 1]), prev_kernel
                )
                run_until(t)
                self._start_scheduled(sched[sched_i])
                sched_i += 1
                next_decide = (
                    sched[sched_i][0] if sched_i < n_sched else horizon
                )
                state_changed = True
            elif not heap:
                # Steady stretch: no events, and a pending hand-over
                # always has its event queued, so no load refresh either.
                state_changed = t == 0
            else:
                ph = self._pending_handover
                if ph is not None and ph <= t:
                    self._refresh_loads(
                        prev_ready, float(values[t - 1]), prev_kernel
                    )
                state_changed = run_until(t) > 0 or t == 0

            b = next_decide
            if heap:
                nxt = queue.peek_time()
                if nxt is not None:
                    nb = int(math.ceil(nxt - 1e-9))
                    if nb <= t:
                        nb = t + 1
                    if nb < b:
                        b = nb
            if state_changed:
                # The (machine, instance) pairing only changes when the
                # serving list is replaced (hand-over / initial set) and
                # the pool-order machine list only when a pool grows;
                # boot/shutdown completions mutate machine *state*, which
                # the per-segment ready filter re-reads anyway.
                if serving_src is not self._serving:
                    serving_src = self._serving
                    serving_pairs = [
                        (m, instance_on(m)) for m in serving_src
                    ]
                    pending_ready = sorted(
                        inst.ready_at
                        for _, inst in serving_pairs
                        if inst is not None
                    )
                    pr_i = 0
                    ready_stale = True
                if n_mach_seen != cluster.n_machines:
                    n_mach_seen = cluster.n_machines
                    machine_list = cluster.machines()
            n_pending = len(pending_ready)
            while pr_i < n_pending and pending_ready[pr_i] <= t:
                pr_i += 1
                ready_stale = True
            if pr_i < n_pending:
                nb = int(math.ceil(pending_ready[pr_i] - 1e-9))
                if nb <= t:
                    nb = t + 1
                if nb < b:
                    b = nb

            if not state_changed and pr_i == pr_seen and descs:
                # Nothing moved since the previous segment: same ready
                # set, same kernel, same plan — emit and advance.
                batch_mark(len(descs))
                descs_append((t, b, k_idx, p_idx))
                t = b
                continue

            if ready_stale:
                ready = [
                    m
                    for m, inst in serving_pairs
                    if m.state is on_state
                    and inst is not None
                    and inst.is_ready(t)
                ]
                memo_key = (strategy, *(m.machine_id for m in ready))
                k_idx = kernel_idx.get(memo_key)
                if k_idx is None:
                    k_idx = kernel_idx[memo_key] = len(kernels)
                    kernels.append(serving_set_kernel(strategy, ready))
                ready_stale = False
            if state_changed or memo_key != plan_key:
                # Ready machines contribute their kernel draw column; the
                # constant slot is unused for them (0.0 keeps plans that
                # differ only in stale ready-machine loads deduplicating).
                # The same walk doubles as the ON census for the peak
                # counter — no separate pool scan per state change.
                ready_ids = frozenset(m.machine_id for m in ready)
                n_on = 0
                items = []
                for m in machine_list:
                    state = m.state
                    if state is off_state:
                        continue
                    if state is on_state:
                        n_on += 1
                    items.append(
                        (m.machine_id, 0.0)
                        if m.machine_id in ready_ids
                        else (None, m.power_draw)
                    )
                acc_plan = tuple(items)
                p_idx = plan_idx.get(acc_plan)
                if p_idx is None:
                    p_idx = plan_idx[acc_plan] = len(plans)
                    plans.append(acc_plan)
                plan_key = memo_key
                if state_changed and n_on > self.stats.peak_machines_on:
                    self.stats.peak_machines_on = n_on
            batch_mark(len(descs))
            descs_append((t, b, k_idx, p_idx))
            prev_ready = ready
            prev_kernel = kernels[k_idx]
            t = b
        # Pending handovers may fire inside _finish's run_until and read
        # loads; leave the final window's assignment in place first.
        self._refresh_loads(prev_ready, float(values[horizon - 1]), prev_kernel)
        self.queue.run_until(horizon)
        self._phase_s["control"] = _time.perf_counter() - t_wall1
        return _ControlPlan(
            descs=descs, kernels=kernels, plans=plans,
            compress=compress, horizon=horizon,
        )

    def _evaluate_pass(self, plan: _ControlPlan, values: np.ndarray):
        """Phase 2: one kernel invocation per serving set, per-window scatter.

        All descriptors sharing a kernel are evaluated on the
        concatenation of their rate windows; the kernel chain is
        elementwise over rate values, so each concatenated column equals
        the per-window evaluation bit for bit.  Results scatter back as
        one contiguous slice write per descriptor (``power[t:b]``) from
        the per-plan accumulated series; per-(group, plan) power
        accumulation reuses the segment engine's exact machine order.
        Returns the series plus per-descriptor ``(window, offset,
        length)`` views for the meter journal's resolver.
        """
        horizon = plan.horizon
        descs = plan.descs
        power = np.empty(horizon)
        unserved = np.zeros(horizon)
        groups: Dict[int, List[int]] = {}
        for j, desc in enumerate(descs):
            groups.setdefault(desc[2], []).append(j)
        seg_eval: List[Optional[Tuple[object, int, int]]] = [None] * len(descs)
        for k_idx, desc_ids in groups.items():
            kernel = plan.kernels[k_idx]
            n_segs = len(desc_ids)
            if n_segs == 1:
                cat = values[descs[desc_ids[0]][0]:descs[desc_ids[0]][1]]
            else:
                cat = np.concatenate(
                    [values[descs[j][0]:descs[j][1]] for j in desc_ids]
                )
            window = kernel.evaluate(
                cat, pre_validated=True, compress=plan.compress
            )
            inverse = window.inverse
            has_unserved = bool(window.unserved.any())
            # else: max(rate - served, 0.0) is +0.0 everywhere — exactly
            # the zeros the series was initialised with.
            unserved_u = window.unserved if has_unserved else None
            draw_of = dict(zip(kernel.machine_ids, window.draws))
            # Per-plan accumulated series over the group's unique rates:
            # same machine iteration (= float accumulation) order as
            # Cluster.total_power.  Constant terms — plan constants and
            # the kernel's elided constant columns — fold into a running
            # scalar until the first varying column: the scalar chain
            # performs the identical float adds each element would, so
            # the fold never changes a bit.
            plan_acc: Dict[int, object] = {}

            def _acc_for(p_idx: int):
                got = plan_acc.get(p_idx)
                if got is None:
                    acc: Optional[np.ndarray] = None
                    acc_scalar = 0.0
                    for draw_key, const in plan.plans[p_idx]:
                        if draw_key is None:
                            term = const
                        else:
                            d = draw_of[draw_key]
                            if d.strides == (0,):  # broadcast constant col
                                term = float(d[0]) if len(d) else 0.0
                            else:
                                term = d
                        if acc is not None:
                            acc += term
                        elif isinstance(term, float):
                            acc_scalar += term
                        else:
                            acc = acc_scalar + term
                    got = plan_acc[p_idx] = (
                        acc_scalar if acc is None else acc
                    )
                return got

            # Contiguous per-descriptor writes: power[t:b] is the plan
            # series gathered over the window's slice of the group's
            # inverse map — bit-identical to the run-level fancy scatter
            # (same elements, same positions) without materialising a
            # trace-length index array.
            off = 0
            for pos, j in enumerate(desc_ids):
                desc = descs[j]
                t, b = desc[0], desc[1]
                n = b - t
                acc = _acc_for(desc[3])
                if isinstance(acc, float):
                    power[t:b] = acc
                elif inverse is None:
                    power[t:b] = acc[off:off + n]
                else:
                    power[t:b] = acc[inverse[off:off + n]]
                if has_unserved:
                    if inverse is None:
                        unserved[t:b] = unserved_u[off:off + n]
                    else:
                        unserved[t:b] = unserved_u[inverse[off:off + n]]
                seg_eval[j] = (window, off, n)
                off += n
        return power, unserved, seg_eval, len(groups)

    def _run_twophase(self) -> SimulationResult:
        """Two-phase replay: pure control walk, then grouped evaluation."""
        plan = self._control_pass()
        self._twophase_plan = plan  # introspection (descriptor-purity test)
        t0 = _time.perf_counter()
        power, unserved, seg_eval, n_batches = self._evaluate_pass(
            plan, self.trace.values
        )
        t1 = _time.perf_counter()
        self._phase_s["evaluate"] = t1 - t0
        descs = plan.descs

        def resolve(j: int):
            """Journal marker ``j``'s evaluated gather bundle."""
            window, off, n = seg_eval[j]
            return (
                window.kernel.machine_ids,
                window.draws,
                window.inverse,
                off,
                n,
                descs[j][0],
            )

        self.meter.record_batch_windows(resolve)
        self._phase_s["settle"] = _time.perf_counter() - t1
        return self._finish(
            plan.horizon, power, unserved,
            {
                "engine": "twophase",
                "segments": len(descs),
                "serving_sets": len(plan.kernels),
                "batches": n_batches,
            },
        )
