"""Vectorised power evaluation and energy accounting.

The hot path of every replay is "power of combination C at load L(t)" for
millions of t.  Under the linear model this is a piecewise-linear,
concave-increasing function of the served load (machines are filled by
increasing marginal cost), so each combination reduces to a breakpoint
table evaluated with :func:`numpy.interp`.  Tables are memoised per
combination (combinations are frozen/hashable).

:class:`EnergyMeter` is the per-machine ledger used by the event-driven
validation simulator (:mod:`repro.sim.machine`); the fast path never needs
it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from ..core.combination import Combination

__all__ = [
    "power_breakpoints",
    "combination_power",
    "breakpoint_cache_stats",
    "TelemetryLRU",
    "EnergyMeter",
]

_BreakTable = Tuple[np.ndarray, np.ndarray]


class TelemetryLRU:
    """Bounded LRU memo with ``table_cache_*``-style telemetry.

    Long multi-scenario runs (ablation sweeps, powercap searches) visit an
    unbounded stream of distinct keys; unbounded module-level dicts grew
    without limit.  This cache evicts least-recently-used entries past
    ``maxsize`` and exposes hit/miss counters following the
    ``table_cache_hits``/``table_cache_misses`` telemetry convention of
    :class:`repro.core.bml.BMLInfrastructure`.  It backs both the
    per-combination breakpoint tables here and the per-serving-set
    composite kernels of :mod:`repro.sim.loadbalancer`.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def pop(self, key: Hashable) -> Any:
        """Drop one entry (damaged-entry eviction); counters untouched."""
        return self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {
            "table_cache_hits": self.hits,
            "table_cache_misses": self.misses,
            "table_cache_size": len(self._data),
            "table_cache_maxsize": self.maxsize,
        }


_cache = TelemetryLRU()

#: Deferred-ledger buffer bound: a machine's pending contribution stream
#: is settled early once it holds this many pieces, so month-scale
#: replays don't pin every segment's draw arrays until ``finalize``
#: (partial flushes continue the same sequential chain — bit-identical).
_PENDING_FLUSH_PIECES = 1024


def breakpoint_cache_stats() -> Dict[str, int]:
    """Hit/miss/size telemetry of the breakpoint-table LRU."""
    return _cache.stats()


def power_breakpoints(combo: Combination) -> _BreakTable:
    """Breakpoints ``(loads, powers)`` of the combination's power function.

    ``powers[0]`` is the all-idle draw; subsequent points add each
    architecture group's capacity in increasing-slope order.  Evaluating
    with :func:`numpy.interp` gives the minimal power for any served load
    in ``[0, capacity]``.
    """
    cached = _cache.get(combo)
    if cached is not None:
        return cached
    caps = [0.0]
    powers = [combo.idle_power]
    for prof, count in sorted(combo.items, key=lambda pc: pc[0].slope):
        group_cap = prof.max_perf * count
        caps.append(caps[-1] + group_cap)
        powers.append(powers[-1] + prof.slope * group_cap)
    table = (np.asarray(caps), np.asarray(powers))
    _cache.put(combo, table)
    return table


def combination_power(
    combo: Combination, load: Union[float, np.ndarray]
) -> Union[float, np.ndarray]:
    """Power (W) of ``combo`` serving ``load`` (scalar or vector).

    Loads beyond capacity saturate at peak power (the excess demand is the
    QoS accounting's business, not the power model's).
    """
    caps, powers = power_breakpoints(combo)
    out = np.interp(np.asarray(load, dtype=float), caps, powers)
    return float(out) if np.ndim(load) == 0 else out


@dataclass
class EnergyMeter:
    """Per-machine energy ledger for the event-driven simulator.

    Mimics the role of the paper's wattmeters/Kwapi: every state interval
    of every machine is recorded as (power, duration) and integrated
    exactly.

    Three batch APIs serve the segment-compressed replays:

    * :meth:`record_series` — eager: one ``np.cumsum`` settle per call
      (PR 2's kernel, kept as the executable contract pinned by
      ``tests/properties/test_prop_replay.py``);
    * :meth:`record_gather` — deferred: per-segment windows are buffered
      as ``(values, inverse)`` gather pairs and settled in **one**
      ``np.cumsum`` pass per machine when something needs the totals
      (a ``set_power`` interleave, :meth:`finalize`, or an energy query),
      eliminating the per-machine-per-segment cumsum/concatenate cost.
      The buffered chain replays the exact ``record_series`` call
      sequence float-for-float, so totals stay bit-identical.
    * :meth:`begin_batch` / :meth:`batch_mark` / :meth:`record_batch` —
      the two-phase replay's journal: between ``begin_batch`` and
      ``record_batch`` every ``set_power`` call is *journaled* instead of
      settled, interleaved with window markers (:meth:`batch_mark`), so
      the control pass touches no ledger math at all.  ``record_batch``
      replays the journal in chronological order — transitions through
      the real ``set_power``, markers resolved to the same
      :meth:`record_gather` calls the segment engine would have made —
      which makes batching trivially bit-identical to recording live.
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _power_now: Dict[str, float] = field(default_factory=dict)
    _since: Dict[str, float] = field(default_factory=dict)
    #: machine -> ordered closed contributions awaiting settlement: a
    #: ``float`` is one scalar term (an interval's ``power * duration``),
    #: a ``(values, inverse, n_closed)`` tuple is a window's first
    #: ``n_closed`` per-second powers (``values[inverse]`` order).
    _pending: Dict[str, List] = field(default_factory=dict, repr=False)
    #: Open journal (two-phase control pass), or ``None`` when live.  A
    #: ``(machine_id, power, now)`` tuple is a journaled ``set_power``;
    #: any other entry is an opaque window marker for ``record_batch``'s
    #: resolver.
    _batch: Optional[List] = field(default=None, repr=False)

    # -- journal mode (two-phase replay) ------------------------------------
    def begin_batch(self) -> None:
        """Start journaling: ``set_power`` buffers instead of settling."""
        if self._batch is not None:
            raise RuntimeError("a batch journal is already open")
        self._batch = []

    def batch_mark(self, token) -> None:
        """Append an opaque window marker to the open journal."""
        if self._batch is None:
            raise RuntimeError("no batch journal open")
        self._batch.append(token)

    def record_batch(self, emit) -> None:
        """Close the journal and settle it in chronological order.

        ``emit(token)`` is called for each :meth:`batch_mark` marker and
        must write that window's deferred contributions back to this
        meter — one :meth:`record_gather` call per serving machine (the
        two-phase replay closes over its evaluated windows).  Because the
        journal preserves the exact interleaving of transitions and
        windows the control pass observed, replaying it performs the
        same float operations, in the same order, as recording live
        would have: each machine's full contribution stream still
        settles through the deferred-ledger cumsum chain.
        """
        journal = self._batch
        if journal is None:
            raise RuntimeError("no batch journal open")
        self._batch = None
        set_power = self.set_power
        for entry in journal:
            if type(entry) is tuple:
                set_power(*entry)
            else:
                emit(entry)

    def record_batch_windows(self, resolve) -> None:
        """Close the journal and settle it with run-coalesced gathers.

        Fast path of :meth:`record_batch`: instead of one
        :meth:`record_gather` call per (marker, machine),
        ``resolve(token)`` returns the marker's evaluated gather bundle
        ``(machine_ids, draws, inverse, offset, length, t_start)`` —
        per-machine series ``draws[i][offset:offset+length]``, or
        ``draws[i][inverse[offset:offset+length]]`` when ``inverse`` is
        given — and the meter walks the journal inline, *merging* each
        machine's consecutive windows that share the same evaluation
        buffers and are adjacent in both offset and time into a single
        gather piece.  Between two adjacent windows the unmerged chain
        would append the closing term ``power * 1.0`` — bitwise the same
        float the merged slice already contains at that position — so
        pending streams, and therefore settled totals, stay
        bit-identical to the per-window replay (pinned by
        ``tests/properties/test_prop_replay.py``).
        """
        journal = self._batch
        if journal is None:
            raise RuntimeError("no batch journal open")
        self._batch = None
        totals = self._totals
        power_now = self._power_now
        since = self._since
        pending = self._pending
        # machine -> [power_now, since, pieces, open_tail, run]: one dict
        # probe per journal step instead of one per meter attribute (the
        # year replay walks ~10^6 steps; per-key dict churn was the
        # walk's main cost).  ``run`` is the machine's open gather run
        # ``[values_base, inverse_base, offset, length, t_start]``.
        # ``open_tail`` flags that the last pending piece is a window
        # tuple whose open (unclosed) element still backs the machine's
        # current power — a closing term of duration exactly 1.0 for
        # such a machine is bitwise the open element itself (``x * 1.0``
        # preserves bits for finite x), so the tuple's ``n_closed`` is
        # bumped instead of appending the scalar: same chain floats,
        # one piece fewer.
        st: Dict[str, list] = {}
        st_get = st.get
        pn_get = power_now.get
        sc_get = since.get
        pd_get = pending.get

        def commit(machine_id: str, rec: list, run: list) -> None:
            base, invb, off, n, t0 = run
            prev_power = rec[0]
            pieces = rec[2]
            if prev_power is not None:
                s = rec[1]
                if t0 < s - 1e-9:
                    raise ValueError(f"time went backwards for {machine_id}")
                dur = t0 - s
                if pieces is None:
                    totals[machine_id] = (
                        totals.get(machine_id, 0.0) + prev_power * dur
                    )
                elif dur == 1.0 and rec[3]:
                    values, inv, n_closed = pieces[-1]
                    pieces[-1] = (values, inv, n_closed + 1)
                else:
                    pieces.append(prev_power * dur)
            if pieces is None:
                pieces = rec[2] = []
            if invb is None:
                if n > 1:
                    # Constant-column windows arrive as stride-0 broadcast
                    # slices; when the previous piece is a stride-0 tuple
                    # holding the bitwise-same constant (the dur==1.0 bump
                    # above just absorbed the bridge element), extend its
                    # closed count instead of appending — the chain floats
                    # are identical, one piece fewer.  ``_fill_stream``
                    # only reads ``values[0]`` for stride-0 pieces, so
                    # ``n_closed`` may exceed ``len(values)``.
                    prev = pieces[-1] if pieces else None
                    c = base[off]
                    if (
                        base.strides == (0,)
                        and type(prev) is tuple
                        and prev[0].strides == (0,)
                        and len(prev[0])
                        and prev[0][0] == c
                        and np.signbit(prev[0][0]) == np.signbit(c)
                    ):
                        pieces[-1] = (prev[0], prev[1], prev[2] + n - 1)
                    else:
                        pieces.append((base[off:off + n], None, n - 1))
                    rec[3] = True
                else:
                    rec[3] = False
                rec[0] = float(base[off + n - 1])
            else:
                if n > 1:
                    prev = pieces[-1] if pieces else None
                    if (
                        base.strides == (0,)
                        and type(prev) is tuple
                        and prev[0].strides == (0,)
                        and len(prev[0])
                        and prev[0][0] == base[0]
                        and np.signbit(prev[0][0]) == np.signbit(base[0])
                    ):
                        pieces[-1] = (prev[0], prev[1], prev[2] + n - 1)
                    else:
                        pieces.append((base, invb[off:off + n], n - 1))
                    rec[3] = True
                else:
                    rec[3] = False
                rec[0] = float(base[invb[off + n - 1]])
            rec[1] = t0 + n - 1

        try:
            for entry in journal:
                if type(entry) is tuple:
                    machine_id, power, now = entry
                    if power < 0:
                        raise ValueError("power must be >= 0")
                    rec = st_get(machine_id)
                    if rec is None:
                        rec = st[machine_id] = [
                            pn_get(machine_id), sc_get(machine_id),
                            pd_get(machine_id), False, None,
                        ]
                    run = rec[4]
                    if run is not None:
                        rec[4] = None
                        commit(machine_id, rec, run)
                    prev_power = rec[0]
                    pieces = rec[2]
                    if pieces is None:
                        # Eager machine: settle the closing interval
                        # directly into the totals (``_scalar_settle``
                        # inlined against the state record).
                        if prev_power is not None:
                            s = rec[1]
                            if now < s - 1e-9:
                                raise ValueError(
                                    f"time went backwards for {machine_id}"
                                )
                            totals[machine_id] = (
                                totals.get(machine_id, 0.0)
                                + prev_power * (now - s)
                            )
                    else:
                        s = rec[1]
                        if now < s - 1e-9:
                            raise ValueError(
                                f"time went backwards for {machine_id}"
                            )
                        dur = now - s
                        if dur == 1.0 and rec[3]:
                            values, inv, n_closed = pieces[-1]
                            pieces[-1] = (values, inv, n_closed + 1)
                        else:
                            pieces.append(prev_power * dur)
                    rec[3] = False
                    rec[0] = power
                    rec[1] = now
                else:
                    machine_ids, draws, inverse, off, n, t0 = resolve(entry)
                    if n <= 0:
                        continue
                    for i, machine_id in enumerate(machine_ids):
                        rec = st_get(machine_id)
                        if rec is None:
                            rec = st[machine_id] = [
                                pn_get(machine_id), sc_get(machine_id),
                                pd_get(machine_id), False, None,
                            ]
                        run = rec[4]
                        base = draws[i]
                        if (
                            run is not None
                            and run[0] is base
                            and run[1] is inverse
                            and run[2] + run[3] == off
                            and run[4] + run[3] == t0
                        ):
                            run[3] += n
                        else:
                            if run is not None:
                                commit(machine_id, rec, run)
                            rec[4] = [base, inverse, off, n, t0]
            for machine_id, rec in st.items():
                run = rec[4]
                if run is not None:
                    rec[4] = None
                    commit(machine_id, rec, run)
        finally:
            # Fold the walked state back into the meter (also on error,
            # matching the in-place mutation of the unbatched path).
            for machine_id, rec in st.items():
                if rec[0] is not None:
                    power_now[machine_id] = rec[0]
                    since[machine_id] = rec[1]
                if rec[2] is not None:
                    pending[machine_id] = rec[2]

    def set_power(self, machine_id: str, power: float, now: float) -> None:
        """Machine ``machine_id`` draws ``power`` Watts from ``now`` on."""
        if power < 0:
            raise ValueError("power must be >= 0")
        if self._batch is not None:
            self._batch.append((machine_id, power, now))
            return
        pieces = self._pending.get(machine_id)
        if pieces is None:
            self._scalar_settle(machine_id, now)
        else:
            # Deferred machine: buffer the closing interval's term instead
            # of settling — same ``power * duration`` float op, added in
            # sequence order at flush time.
            since = self._since[machine_id]
            if now < since - 1e-9:
                raise ValueError(f"time went backwards for {machine_id}")
            pieces.append(self._power_now[machine_id] * (now - since))
        self._power_now[machine_id] = power
        self._since[machine_id] = now

    def record_series(
        self, machine_id: str, powers: np.ndarray, t_start: int
    ) -> None:
        """Batch ledger write: one power level per second from ``t_start``.

        Equivalent to ``set_power(machine_id, powers[k], t_start + k)`` for
        every ``k`` — the per-second call pattern of the event-driven
        simulator's load balancer — but with the million-call Python loop
        replaced by one vectorised append per (machine, segment).  The
        closed one-second intervals are accumulated with
        :func:`numpy.cumsum`, whose left-to-right sequential order matches
        the scalar ``_settle`` chain exactly, so the resulting totals are
        bit-identical to the per-call ledger.
        """
        powers = np.asarray(powers, dtype=float)
        n = len(powers)
        if n == 0:
            return
        if np.any(powers < 0):
            raise ValueError("power must be >= 0")
        self._settle(machine_id, t_start)
        if n > 1:
            # Seconds t_start..t_start+n-2 are closed by the next write;
            # each contributes powers[k] * 1.0 in time order.
            base = self._totals.get(machine_id, 0.0)
            self._totals[machine_id] = float(
                np.cumsum(np.concatenate(([base], powers[:-1])))[-1]
            )
        self._power_now[machine_id] = float(powers[-1])
        self._since[machine_id] = t_start + n - 1

    # -- deferred array ledger (serving-set kernel path) -------------------
    def record_gather(
        self,
        machine_id: str,
        values: np.ndarray,
        inverse: Optional[np.ndarray],
        t_start: int,
    ) -> None:
        """Deferred :meth:`record_series`: buffer now, settle lazily.

        The per-second power series of the window is ``values[inverse]``
        (``inverse`` of ``None`` means ``values`` *is* the series) — the
        gather representation the serving-set kernel produces, buffered
        by reference so no per-second array is materialised per segment.
        The window's first ``n - 1`` seconds are closed contributions
        appended to the machine's pending stream; the last second stays
        the open interval, closed by the next write exactly as in the
        eager chain.  Interleaved :meth:`set_power` calls append their
        ``power * duration`` term to the same stream, so nothing settles
        until :meth:`finalize` (or an energy query) runs the machine's
        whole stream through **one** ``np.cumsum`` — whose left-to-right
        order replays the eager per-segment sequence float-for-float.

        Trusted-contract API for the segment engine: ``values`` must be
        non-negative (kernel draws are ``idle + slope * load`` with
        non-negative factors by construction).
        """
        n = len(values) if inverse is None else len(inverse)
        if n == 0:
            return
        pieces = self._pending.get(machine_id)
        prev_power = self._power_now.get(machine_id)
        if prev_power is not None:
            since = self._since[machine_id]
            if t_start < since - 1e-9:
                raise ValueError(f"time went backwards for {machine_id}")
            closing = prev_power * (t_start - since)
            if pieces is None:
                # First deferred write: fold the closing term eagerly
                # (same multiply-add record_series would do) and open the
                # stream.
                self._totals[machine_id] = (
                    self._totals.get(machine_id, 0.0) + closing
                )
            else:
                pieces.append(closing)
        if pieces is None:
            pieces = self._pending[machine_id] = []
        if n > 1:
            pieces.append((values, inverse, n - 1))
        self._power_now[machine_id] = float(
            values[-1] if inverse is None else values[inverse[-1]]
        )
        self._since[machine_id] = t_start + n - 1
        # Bound the buffer: month-scale replays would otherwise pin every
        # segment's draw arrays until finalize.  A partial flush continues
        # the same sequential chain from the settled total, so totals stay
        # bit-identical to one flush at the end.  All machines settle
        # together so the stacked cumsum amortises the pass (other
        # machines' streams flush early, which is equally bit-identical).
        if len(pieces) >= _PENDING_FLUSH_PIECES:
            self._flush_all()

    @staticmethod
    def _stream_length(pieces: List) -> int:
        """Closed contributions in a buffered stream (chain elements)."""
        total = 0
        for piece in pieces:
            total += piece[2] if type(piece) is tuple else 1
        return total

    @staticmethod
    def _fill_stream(chain: np.ndarray, pos: int, pieces: List) -> int:
        """Write a stream's closed contributions into ``chain`` at ``pos``.

        Window tuples become contiguous slice/gather writes straight into
        the destination (no intermediate per-piece arrays); broadcast
        constant columns (stride-0 draws from the kernel's constant-column
        elision) become scalar fills.  Element order is exactly the
        buffered order, so the chain is the same vector
        piece-by-piece concatenation would produce.
        """
        for piece in pieces:
            if type(piece) is tuple:
                values, inverse, n_closed = piece
                end = pos + n_closed
                if values.strides == (0,):
                    chain[pos:end] = values[0] if len(values) else 0.0
                elif inverse is None:
                    chain[pos:end] = values[:n_closed]
                else:
                    np.take(values, inverse[:n_closed], out=chain[pos:end])
                pos = end
            else:
                chain[pos] = piece
                pos += 1
        return pos

    @staticmethod
    def _assemble(pieces: List) -> np.ndarray:
        """A machine's buffered stream as one closed-contribution vector."""
        chain = np.empty(EnergyMeter._stream_length(pieces))
        EnergyMeter._fill_stream(chain, 0, pieces)
        return chain

    def _flush(self, machine_id: str) -> None:
        """Settle a machine's buffered contributions in one cumsum pass."""
        pieces = self._pending.pop(machine_id, None)
        if not pieces:
            return
        # One sequential left-to-right accumulation over every closed
        # contribution — bit-identical to folding them in as they happened.
        chain = np.empty(1 + self._stream_length(pieces))
        chain[0] = self._totals.get(machine_id, 0.0)
        self._fill_stream(chain, 1, pieces)
        np.cumsum(chain, out=chain)
        self._totals[machine_id] = float(chain[-1])

    #: Stacked-settle guard: fall back to per-machine flushes when the
    #: zero-padded matrix would waste more than this many elements (ragged
    #: streams), keeping peak memory bounded.  Both paths are
    #: bit-identical; the rule is purely a resource bound.
    _STACK_WASTE_LIMIT = 1 << 22

    def _flush_all(self) -> None:
        """Settle every machine's buffered stream in one stacked cumsum.

        Each machine's closed-contribution vector becomes one row of a
        zero-padded 2-D matrix — column 0 the machine's settled base
        total, trailing columns zero — settled with a single
        ``np.cumsum(axis=1)``.  ``cumsum`` accumulates strictly
        left-to-right per row, and the trailing ``+ 0.0`` adds cannot
        change a total built from non-negative terms, so every row's
        final column is bit-identical to that machine's
        :meth:`_flush` result.  Severely ragged streams (year-scale
        two-phase settles, where padding would dwarf the payload) fall
        back to per-machine passes — same chains, same bits.
        """
        pending = self._pending
        if not pending:
            return
        if len(pending) == 1:
            for machine_id in list(pending):
                self._flush(machine_id)
            return
        rows = []
        total_len = 0
        max_len = 0
        for machine_id, pieces in pending.items():
            if not pieces:  # opened stream, nothing closed yet
                continue
            length = self._stream_length(pieces)
            rows.append((machine_id, pieces, length))
            total_len += length
            if length > max_len:
                max_len = length
        pending.clear()
        k = len(rows)
        if k == 0:
            return
        if k * max_len - total_len > self._STACK_WASTE_LIMIT:
            chain = np.empty(1 + max_len)
            for machine_id, pieces, length in rows:
                chain[0] = self._totals.get(machine_id, 0.0)
                self._fill_stream(chain, 1, pieces)
                view = chain[: 1 + length]
                np.cumsum(view, out=view)
                self._totals[machine_id] = float(view[-1])
            return
        stacked = np.zeros((k, 1 + max_len))
        for i, (machine_id, pieces, _) in enumerate(rows):
            stacked[i, 0] = self._totals.get(machine_id, 0.0)
            self._fill_stream(stacked[i], 1, pieces)
        settled = np.cumsum(stacked, axis=1)[:, -1]
        for i, (machine_id, _, _) in enumerate(rows):
            self._totals[machine_id] = float(settled[i])

    def _scalar_settle(self, machine_id: str, now: float) -> None:
        prev_power = self._power_now.get(machine_id)
        if prev_power is None:
            return
        since = self._since[machine_id]
        if now < since - 1e-9:
            raise ValueError(f"time went backwards for {machine_id}")
        self._totals[machine_id] = self._totals.get(machine_id, 0.0) + prev_power * (
            now - since
        )

    def _settle(self, machine_id: str, now: float) -> None:
        if machine_id in self._pending:
            self._flush(machine_id)
        self._scalar_settle(machine_id, now)

    def finalize(self, now: float) -> None:
        """Close all open intervals at ``now`` (end of simulation)."""
        self._flush_all()
        for machine_id in list(self._power_now):
            self._settle(machine_id, now)
            self._since[machine_id] = now

    def energy_of(self, machine_id: str) -> float:
        """Energy (J) accumulated so far by one machine."""
        if machine_id in self._pending:
            self._flush(machine_id)
        return self._totals.get(machine_id, 0.0)

    @property
    def total_energy(self) -> float:
        """Energy (J) accumulated by all machines (closed intervals only)."""
        self._flush_all()
        return sum(self._totals.values())
