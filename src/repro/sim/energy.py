"""Vectorised power evaluation and energy accounting.

The hot path of every replay is "power of combination C at load L(t)" for
millions of t.  Under the linear model this is a piecewise-linear,
concave-increasing function of the served load (machines are filled by
increasing marginal cost), so each combination reduces to a breakpoint
table evaluated with :func:`numpy.interp`.  Tables are memoised per
combination (combinations are frozen/hashable).

:class:`EnergyMeter` is the per-machine ledger used by the event-driven
validation simulator (:mod:`repro.sim.machine`); the fast path never needs
it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from ..core.combination import Combination

__all__ = [
    "power_breakpoints",
    "combination_power",
    "breakpoint_cache_stats",
    "TelemetryLRU",
    "EnergyMeter",
]

_BreakTable = Tuple[np.ndarray, np.ndarray]


class TelemetryLRU:
    """Bounded LRU memo with ``table_cache_*``-style telemetry.

    Long multi-scenario runs (ablation sweeps, powercap searches) visit an
    unbounded stream of distinct keys; unbounded module-level dicts grew
    without limit.  This cache evicts least-recently-used entries past
    ``maxsize`` and exposes hit/miss counters following the
    ``table_cache_hits``/``table_cache_misses`` telemetry convention of
    :class:`repro.core.bml.BMLInfrastructure`.  It backs both the
    per-combination breakpoint tables here and the per-serving-set
    composite kernels of :mod:`repro.sim.loadbalancer`.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Any:
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {
            "table_cache_hits": self.hits,
            "table_cache_misses": self.misses,
            "table_cache_size": len(self._data),
            "table_cache_maxsize": self.maxsize,
        }


_cache = TelemetryLRU()

#: Deferred-ledger buffer bound: a machine's pending contribution stream
#: is settled early once it holds this many pieces, so month-scale
#: replays don't pin every segment's draw arrays until ``finalize``
#: (partial flushes continue the same sequential chain — bit-identical).
_PENDING_FLUSH_PIECES = 1024


def breakpoint_cache_stats() -> Dict[str, int]:
    """Hit/miss/size telemetry of the breakpoint-table LRU."""
    return _cache.stats()


def power_breakpoints(combo: Combination) -> _BreakTable:
    """Breakpoints ``(loads, powers)`` of the combination's power function.

    ``powers[0]`` is the all-idle draw; subsequent points add each
    architecture group's capacity in increasing-slope order.  Evaluating
    with :func:`numpy.interp` gives the minimal power for any served load
    in ``[0, capacity]``.
    """
    cached = _cache.get(combo)
    if cached is not None:
        return cached
    caps = [0.0]
    powers = [combo.idle_power]
    for prof, count in sorted(combo.items, key=lambda pc: pc[0].slope):
        group_cap = prof.max_perf * count
        caps.append(caps[-1] + group_cap)
        powers.append(powers[-1] + prof.slope * group_cap)
    table = (np.asarray(caps), np.asarray(powers))
    _cache.put(combo, table)
    return table


def combination_power(
    combo: Combination, load: Union[float, np.ndarray]
) -> Union[float, np.ndarray]:
    """Power (W) of ``combo`` serving ``load`` (scalar or vector).

    Loads beyond capacity saturate at peak power (the excess demand is the
    QoS accounting's business, not the power model's).
    """
    caps, powers = power_breakpoints(combo)
    out = np.interp(np.asarray(load, dtype=float), caps, powers)
    return float(out) if np.ndim(load) == 0 else out


@dataclass
class EnergyMeter:
    """Per-machine energy ledger for the event-driven simulator.

    Mimics the role of the paper's wattmeters/Kwapi: every state interval
    of every machine is recorded as (power, duration) and integrated
    exactly.

    Three batch APIs serve the segment-compressed replays:

    * :meth:`record_series` — eager: one ``np.cumsum`` settle per call
      (PR 2's kernel, kept as the executable contract pinned by
      ``tests/properties/test_prop_replay.py``);
    * :meth:`record_gather` — deferred: per-segment windows are buffered
      as ``(values, inverse)`` gather pairs and settled in **one**
      ``np.cumsum`` pass per machine when something needs the totals
      (a ``set_power`` interleave, :meth:`finalize`, or an energy query),
      eliminating the per-machine-per-segment cumsum/concatenate cost.
      The buffered chain replays the exact ``record_series`` call
      sequence float-for-float, so totals stay bit-identical.
    * :meth:`begin_batch` / :meth:`batch_mark` / :meth:`record_batch` —
      the two-phase replay's journal: between ``begin_batch`` and
      ``record_batch`` every ``set_power`` call is *journaled* instead of
      settled, interleaved with window markers (:meth:`batch_mark`), so
      the control pass touches no ledger math at all.  ``record_batch``
      replays the journal in chronological order — transitions through
      the real ``set_power``, markers resolved to the same
      :meth:`record_gather` calls the segment engine would have made —
      which makes batching trivially bit-identical to recording live.
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _power_now: Dict[str, float] = field(default_factory=dict)
    _since: Dict[str, float] = field(default_factory=dict)
    #: machine -> ordered closed contributions awaiting settlement: a
    #: ``float`` is one scalar term (an interval's ``power * duration``),
    #: a ``(values, inverse, n_closed)`` tuple is a window's first
    #: ``n_closed`` per-second powers (``values[inverse]`` order).
    _pending: Dict[str, List] = field(default_factory=dict, repr=False)
    #: Open journal (two-phase control pass), or ``None`` when live.  A
    #: ``(machine_id, power, now)`` tuple is a journaled ``set_power``;
    #: any other entry is an opaque window marker for ``record_batch``'s
    #: resolver.
    _batch: Optional[List] = field(default=None, repr=False)

    # -- journal mode (two-phase replay) ------------------------------------
    def begin_batch(self) -> None:
        """Start journaling: ``set_power`` buffers instead of settling."""
        if self._batch is not None:
            raise RuntimeError("a batch journal is already open")
        self._batch = []

    def batch_mark(self, token) -> None:
        """Append an opaque window marker to the open journal."""
        if self._batch is None:
            raise RuntimeError("no batch journal open")
        self._batch.append(token)

    def record_batch(self, emit) -> None:
        """Close the journal and settle it in chronological order.

        ``emit(token)`` is called for each :meth:`batch_mark` marker and
        must write that window's deferred contributions back to this
        meter — one :meth:`record_gather` call per serving machine (the
        two-phase replay closes over its evaluated windows).  Because the
        journal preserves the exact interleaving of transitions and
        windows the control pass observed, replaying it performs the
        same float operations, in the same order, as recording live
        would have: each machine's full contribution stream still
        settles through the deferred-ledger cumsum chain.
        """
        journal = self._batch
        if journal is None:
            raise RuntimeError("no batch journal open")
        self._batch = None
        set_power = self.set_power
        for entry in journal:
            if type(entry) is tuple:
                set_power(*entry)
            else:
                emit(entry)

    def set_power(self, machine_id: str, power: float, now: float) -> None:
        """Machine ``machine_id`` draws ``power`` Watts from ``now`` on."""
        if power < 0:
            raise ValueError("power must be >= 0")
        if self._batch is not None:
            self._batch.append((machine_id, power, now))
            return
        pieces = self._pending.get(machine_id)
        if pieces is None:
            self._scalar_settle(machine_id, now)
        else:
            # Deferred machine: buffer the closing interval's term instead
            # of settling — same ``power * duration`` float op, added in
            # sequence order at flush time.
            since = self._since[machine_id]
            if now < since - 1e-9:
                raise ValueError(f"time went backwards for {machine_id}")
            pieces.append(self._power_now[machine_id] * (now - since))
        self._power_now[machine_id] = power
        self._since[machine_id] = now

    def record_series(
        self, machine_id: str, powers: np.ndarray, t_start: int
    ) -> None:
        """Batch ledger write: one power level per second from ``t_start``.

        Equivalent to ``set_power(machine_id, powers[k], t_start + k)`` for
        every ``k`` — the per-second call pattern of the event-driven
        simulator's load balancer — but with the million-call Python loop
        replaced by one vectorised append per (machine, segment).  The
        closed one-second intervals are accumulated with
        :func:`numpy.cumsum`, whose left-to-right sequential order matches
        the scalar ``_settle`` chain exactly, so the resulting totals are
        bit-identical to the per-call ledger.
        """
        powers = np.asarray(powers, dtype=float)
        n = len(powers)
        if n == 0:
            return
        if np.any(powers < 0):
            raise ValueError("power must be >= 0")
        self._settle(machine_id, t_start)
        if n > 1:
            # Seconds t_start..t_start+n-2 are closed by the next write;
            # each contributes powers[k] * 1.0 in time order.
            base = self._totals.get(machine_id, 0.0)
            self._totals[machine_id] = float(
                np.cumsum(np.concatenate(([base], powers[:-1])))[-1]
            )
        self._power_now[machine_id] = float(powers[-1])
        self._since[machine_id] = t_start + n - 1

    # -- deferred array ledger (serving-set kernel path) -------------------
    def record_gather(
        self,
        machine_id: str,
        values: np.ndarray,
        inverse: Optional[np.ndarray],
        t_start: int,
    ) -> None:
        """Deferred :meth:`record_series`: buffer now, settle lazily.

        The per-second power series of the window is ``values[inverse]``
        (``inverse`` of ``None`` means ``values`` *is* the series) — the
        gather representation the serving-set kernel produces, buffered
        by reference so no per-second array is materialised per segment.
        The window's first ``n - 1`` seconds are closed contributions
        appended to the machine's pending stream; the last second stays
        the open interval, closed by the next write exactly as in the
        eager chain.  Interleaved :meth:`set_power` calls append their
        ``power * duration`` term to the same stream, so nothing settles
        until :meth:`finalize` (or an energy query) runs the machine's
        whole stream through **one** ``np.cumsum`` — whose left-to-right
        order replays the eager per-segment sequence float-for-float.

        Trusted-contract API for the segment engine: ``values`` must be
        non-negative (kernel draws are ``idle + slope * load`` with
        non-negative factors by construction).
        """
        n = len(values) if inverse is None else len(inverse)
        if n == 0:
            return
        pieces = self._pending.get(machine_id)
        prev_power = self._power_now.get(machine_id)
        if prev_power is not None:
            since = self._since[machine_id]
            if t_start < since - 1e-9:
                raise ValueError(f"time went backwards for {machine_id}")
            closing = prev_power * (t_start - since)
            if pieces is None:
                # First deferred write: fold the closing term eagerly
                # (same multiply-add record_series would do) and open the
                # stream.
                self._totals[machine_id] = (
                    self._totals.get(machine_id, 0.0) + closing
                )
            else:
                pieces.append(closing)
        if pieces is None:
            pieces = self._pending[machine_id] = []
        if n > 1:
            pieces.append((values, inverse, n - 1))
        self._power_now[machine_id] = float(
            values[-1] if inverse is None else values[inverse[-1]]
        )
        self._since[machine_id] = t_start + n - 1
        # Bound the buffer: month-scale replays would otherwise pin every
        # segment's draw arrays until finalize.  A partial flush continues
        # the same sequential chain from the settled total, so totals stay
        # bit-identical to one flush at the end.
        if len(pieces) >= _PENDING_FLUSH_PIECES:
            self._flush(machine_id)

    def _flush(self, machine_id: str) -> None:
        """Settle a machine's buffered contributions in one cumsum pass."""
        pieces = self._pending.pop(machine_id, None)
        if not pieces:
            return
        parts: List[np.ndarray] = []
        scalars: List[float] = []
        for piece in pieces:
            if isinstance(piece, tuple):
                if scalars:
                    parts.append(np.asarray(scalars))
                    scalars = []
                values, inverse, n_closed = piece
                parts.append(
                    values[:n_closed]
                    if inverse is None
                    else values[inverse[:n_closed]]
                )
            else:
                scalars.append(piece)
        if scalars:
            parts.append(np.asarray(scalars))
        powers = parts[0] if len(parts) == 1 else np.concatenate(parts)
        base = self._totals.get(machine_id, 0.0)
        # One sequential left-to-right accumulation over every closed
        # contribution — bit-identical to folding them in as they happened.
        self._totals[machine_id] = float(
            np.cumsum(np.concatenate(([base], powers)))[-1]
        )

    def _scalar_settle(self, machine_id: str, now: float) -> None:
        prev_power = self._power_now.get(machine_id)
        if prev_power is None:
            return
        since = self._since[machine_id]
        if now < since - 1e-9:
            raise ValueError(f"time went backwards for {machine_id}")
        self._totals[machine_id] = self._totals.get(machine_id, 0.0) + prev_power * (
            now - since
        )

    def _settle(self, machine_id: str, now: float) -> None:
        if machine_id in self._pending:
            self._flush(machine_id)
        self._scalar_settle(machine_id, now)

    def finalize(self, now: float) -> None:
        """Close all open intervals at ``now`` (end of simulation)."""
        for machine_id in list(self._power_now):
            self._settle(machine_id, now)
            self._since[machine_id] = now

    def energy_of(self, machine_id: str) -> float:
        """Energy (J) accumulated so far by one machine."""
        if machine_id in self._pending:
            self._flush(machine_id)
        return self._totals.get(machine_id, 0.0)

    @property
    def total_energy(self) -> float:
        """Energy (J) accumulated by all machines (closed intervals only)."""
        for machine_id in list(self._pending):
            self._flush(machine_id)
        return sum(self._totals.values())
