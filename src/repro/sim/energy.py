"""Vectorised power evaluation and energy accounting.

The hot path of every replay is "power of combination C at load L(t)" for
millions of t.  Under the linear model this is a piecewise-linear,
concave-increasing function of the served load (machines are filled by
increasing marginal cost), so each combination reduces to a breakpoint
table evaluated with :func:`numpy.interp`.  Tables are memoised per
combination (combinations are frozen/hashable).

:class:`EnergyMeter` is the per-machine ledger used by the event-driven
validation simulator (:mod:`repro.sim.machine`); the fast path never needs
it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np

from ..core.combination import Combination

__all__ = [
    "power_breakpoints",
    "combination_power",
    "breakpoint_cache_stats",
    "EnergyMeter",
]

_BreakTable = Tuple[np.ndarray, np.ndarray]


class _BreakTableCache:
    """LRU memo for per-combination breakpoint tables.

    Long multi-scenario runs (ablation sweeps, powercap searches) visit an
    unbounded stream of distinct combinations; the old module-level dict
    grew without limit.  This cache evicts least-recently-used tables past
    ``maxsize`` and exposes hit/miss counters following the
    ``table_cache_hits``/``table_cache_misses`` telemetry convention of
    :class:`repro.core.bml.BMLInfrastructure`.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: "OrderedDict[Combination, _BreakTable]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, combo: Combination) -> Union[_BreakTable, None]:
        table = self._data.get(combo)
        if table is None:
            self.misses += 1
            return None
        self._data.move_to_end(combo)
        self.hits += 1
        return table

    def put(self, combo: Combination, table: _BreakTable) -> None:
        self._data[combo] = table
        self._data.move_to_end(combo)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {
            "table_cache_hits": self.hits,
            "table_cache_misses": self.misses,
            "table_cache_size": len(self._data),
            "table_cache_maxsize": self.maxsize,
        }


_cache = _BreakTableCache()


def breakpoint_cache_stats() -> Dict[str, int]:
    """Hit/miss/size telemetry of the breakpoint-table LRU."""
    return _cache.stats()


def power_breakpoints(combo: Combination) -> _BreakTable:
    """Breakpoints ``(loads, powers)`` of the combination's power function.

    ``powers[0]`` is the all-idle draw; subsequent points add each
    architecture group's capacity in increasing-slope order.  Evaluating
    with :func:`numpy.interp` gives the minimal power for any served load
    in ``[0, capacity]``.
    """
    cached = _cache.get(combo)
    if cached is not None:
        return cached
    caps = [0.0]
    powers = [combo.idle_power]
    for prof, count in sorted(combo.items, key=lambda pc: pc[0].slope):
        group_cap = prof.max_perf * count
        caps.append(caps[-1] + group_cap)
        powers.append(powers[-1] + prof.slope * group_cap)
    table = (np.asarray(caps), np.asarray(powers))
    _cache.put(combo, table)
    return table


def combination_power(
    combo: Combination, load: Union[float, np.ndarray]
) -> Union[float, np.ndarray]:
    """Power (W) of ``combo`` serving ``load`` (scalar or vector).

    Loads beyond capacity saturate at peak power (the excess demand is the
    QoS accounting's business, not the power model's).
    """
    caps, powers = power_breakpoints(combo)
    out = np.interp(np.asarray(load, dtype=float), caps, powers)
    return float(out) if np.ndim(load) == 0 else out


@dataclass
class EnergyMeter:
    """Per-machine energy ledger for the event-driven simulator.

    Mimics the role of the paper's wattmeters/Kwapi: every state interval
    of every machine is recorded as (power, duration) and integrated
    exactly.
    """

    _totals: Dict[str, float] = field(default_factory=dict)
    _power_now: Dict[str, float] = field(default_factory=dict)
    _since: Dict[str, float] = field(default_factory=dict)

    def set_power(self, machine_id: str, power: float, now: float) -> None:
        """Machine ``machine_id`` draws ``power`` Watts from ``now`` on."""
        if power < 0:
            raise ValueError("power must be >= 0")
        self._settle(machine_id, now)
        self._power_now[machine_id] = power
        self._since[machine_id] = now

    def record_series(
        self, machine_id: str, powers: np.ndarray, t_start: int
    ) -> None:
        """Batch ledger write: one power level per second from ``t_start``.

        Equivalent to ``set_power(machine_id, powers[k], t_start + k)`` for
        every ``k`` — the per-second call pattern of the event-driven
        simulator's load balancer — but with the million-call Python loop
        replaced by one vectorised append per (machine, segment).  The
        closed one-second intervals are accumulated with
        :func:`numpy.cumsum`, whose left-to-right sequential order matches
        the scalar ``_settle`` chain exactly, so the resulting totals are
        bit-identical to the per-call ledger.
        """
        powers = np.asarray(powers, dtype=float)
        n = len(powers)
        if n == 0:
            return
        if np.any(powers < 0):
            raise ValueError("power must be >= 0")
        self._settle(machine_id, t_start)
        if n > 1:
            # Seconds t_start..t_start+n-2 are closed by the next write;
            # each contributes powers[k] * 1.0 in time order.
            base = self._totals.get(machine_id, 0.0)
            self._totals[machine_id] = float(
                np.cumsum(np.concatenate(([base], powers[:-1])))[-1]
            )
        self._power_now[machine_id] = float(powers[-1])
        self._since[machine_id] = t_start + n - 1

    def _settle(self, machine_id: str, now: float) -> None:
        prev_power = self._power_now.get(machine_id)
        if prev_power is None:
            return
        since = self._since[machine_id]
        if now < since - 1e-9:
            raise ValueError(f"time went backwards for {machine_id}")
        self._totals[machine_id] = self._totals.get(machine_id, 0.0) + prev_power * (
            now - since
        )

    def finalize(self, now: float) -> None:
        """Close all open intervals at ``now`` (end of simulation)."""
        for machine_id in list(self._power_now):
            self._settle(machine_id, now)
            self._since[machine_id] = now

    def energy_of(self, machine_id: str) -> float:
        """Energy (J) accumulated so far by one machine."""
        return self._totals.get(machine_id, 0.0)

    @property
    def total_energy(self) -> float:
        """Energy (J) accumulated by all machines (closed intervals only)."""
        return sum(self._totals.values())
