"""Deterministic discrete-event queue for the machine-level simulator.

A tiny, dependency-free DES core: events are ``(time, sequence)``-ordered
(FIFO among simultaneous events, so runs are exactly reproducible),
cancellable, and carry an arbitrary callback.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "SimulationClockError"]


class SimulationClockError(RuntimeError):
    """Raised when events are scheduled in the past or popped out of order."""


@dataclass
class Event:
    """A scheduled callback.  ``cancel()`` marks it dead in-place."""

    time: float
    seq: int
    callback: Callable[..., None]
    args: Tuple[Any, ...] = ()
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); it stays in the heap)."""
        self.cancelled = True

    def fire(self) -> None:
        if not self.cancelled:
            self.callback(*self.args)


class EventQueue:
    """Min-heap of :class:`Event` with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self.now = 0.0

    def __len__(self) -> int:
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    @property
    def empty(self) -> bool:
        """O(1) emptiness fast-path for boundary walks.

        A heap holding only cancelled events counts as non-empty here
        (``peek_time``/``run_until`` still skip them); callers use this
        to bypass the queue entirely on long steady stretches, where the
        heap is genuinely empty.
        """
        return not self._heap

    def schedule(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time`` (>= now)."""
        if time < self.now - 1e-9:
            raise SimulationClockError(
                f"cannot schedule at {time}, clock already at {self.now}"
            )
        ev = Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def schedule_in(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule relative to the current clock."""
        return self.schedule(self.now + delay, callback, *args)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Pop and return the next live event, advancing the clock."""
        while self._heap:
            _, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            return ev
        return None

    def run_until(self, time: float) -> int:
        """Fire every event with ``event.time <= time``; returns the count.

        The clock ends at ``time`` even if the queue empties earlier.
        """
        fired = 0
        heap = self._heap
        while heap:
            ev_time, _, ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                continue
            if ev_time > time:
                break
            heapq.heappop(heap)
            self.now = ev_time
            ev.callback(*ev.args)
            fired += 1
        if time > self.now:
            self.now = time
        return fired
