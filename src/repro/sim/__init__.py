"""Data-center simulation substrate.

Two execution paths compute energy and QoS for a scenario:

* the **fast path** (:func:`~repro.sim.datacenter.execute_plan`) integrates
  a :class:`~repro.core.reconfiguration.SchedulePlan` against the trace
  with vectorised numpy — used by all benchmarks;
* the **event-driven path** (:mod:`repro.sim.machine`,
  :mod:`repro.sim.cluster`, :mod:`repro.sim.loop`) simulates every machine
  state transition, application instance and load-balancer update from
  first principles — the reference implementation the tests cross-check
  the fast path against.
"""

from .datacenter import execute_plan, lower_bound_result
from .energy import (
    EnergyMeter,
    breakpoint_cache_stats,
    combination_power,
    power_breakpoints,
)
from .loadbalancer import serving_kernel_cache_stats
from .powercap import CappedMachine, capped_profile, capped_stack_power
from .results import QoSReport, SimulationResult

__all__ = [
    "execute_plan",
    "lower_bound_result",
    "combination_power",
    "power_breakpoints",
    "breakpoint_cache_stats",
    "serving_kernel_cache_stats",
    "EnergyMeter",
    "QoSReport",
    "SimulationResult",
    "CappedMachine",
    "capped_profile",
    "capped_stack_power",
]
