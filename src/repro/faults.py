"""Deterministic fault injection: named failure points behind a no-op default.

Fleet-scale sweeps and long-running drivers turn worker failure from an
anomaly into a statistical certainty, and recovery paths that are never
exercised rot.  This module gives the runner and the results store a
*plan-driven* failure model so every recovery path — retry, pool
resurrection, chunk splitting, checkpoint resume, store quarantine — can
be proven by tests instead of waited for in production.

Design rules:

* **No-op by default.**  With no plan installed, every hook returns
  immediately; the hot paths pay one module-global ``is None`` check.
* **Deterministic.**  A :class:`Fault` fires purely as a function of
  ``(site, key, attempt)`` — no hidden counters that would desynchronise
  across worker processes.  "Transient" vs "persistent" is expressed as
  ``fail_attempts``: a fault fires while ``attempt < fail_attempts``, so
  ``fail_attempts=1`` fails the first attempt and lets the retry
  succeed.
* **Process-portable.**  Plans are small frozen dataclasses: they pickle
  through pool ``initargs`` under ``spawn`` and are inherited by forked
  workers, so parent and workers agree on the failure schedule.

Injection sites (``SITES``):

``spec-error``
    Raise :class:`InjectedFault` inside a scenario execution (the
    transient/persistent exception model); keyed by spec name.
``worker-crash``
    ``os._exit`` the worker process mid-chunk (an OOM kill / segfault
    stand-in); keyed by spec name.  Only armed inside pool workers.
``worker-hang``
    Sleep ``hang_s`` seconds (a stuck worker); keyed by spec name.
    Only armed inside pool workers.
``corrupt-result``
    Truncate ``result.json`` after a :class:`~repro.results.store.RunStore`
    save (a torn write); keyed by scenario name.  Passive: consulted via
    :func:`check`, the store does the corrupting.
``trace-read``
    Raise :class:`InjectedFault` from the WC98 archive reader (a failing
    disk / bad archive); keyed by file path.
``predict-cache``
    Poison a predictor-series cache entry as it is stored (bit rot in
    the process-wide memo); keyed by trace name.  Passive: consulted via
    :func:`check`, :mod:`repro.core.prediction` does the corrupting and
    must later detect the damaged entry and rebuild instead of trusting
    it.

Streaming sites (PR 10, :mod:`repro.serve`):

``feed-stall``
    The tail reader pretends the feed produced nothing (a wedged
    producer / NFS hiccup); keyed by the daemon name, ``attempt`` is the
    poll index so ``fail_attempts=N`` stalls the first N polls.
    Passive: consulted via :func:`check`, the source returns no data.
``feed-torn-write``
    The feed-writer helper leaves its final record half-written without
    a newline (a torn append); keyed by the feed path.  Passive: the
    writer does the tearing, the reader must treat the partial record as
    incomplete (wait) or — once later bytes glue onto it — malformed
    (typed rejection), never crash.
``serve-crash``
    ``os._exit`` the daemon between journal append and checkpoint (the
    ``kill -9`` stand-in at the nastiest instant); keyed by the daemon
    name, ``attempt`` is the daemon's *generation* (0 on first start,
    +1 per ``--resume``), so ``fail_attempts=1`` crashes the first
    generation and lets the resumed one finish.
``journal-corrupt``
    Flip a byte inside a decision record just after it was written
    (disk bit rot); keyed by the journal path, ``attempt`` is the record
    index.  Passive: the journal does the flipping; re-opening must
    truncate a corrupt *tail* record and quarantine a corrupt mid-file
    one with a typed error.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator, Optional, Sequence, Tuple

__all__ = [
    "SITES",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "install",
    "uninstall",
    "active",
    "injected",
    "fire",
    "check",
]

#: Every named injection point wired through the stack.
SITES = (
    "spec-error",
    "worker-crash",
    "worker-hang",
    "corrupt-result",
    "trace-read",
    "predict-cache",
    "feed-stall",
    "feed-torn-write",
    "serve-crash",
    "journal-corrupt",
)

#: ``fail_attempts`` value that outlives any sane retry policy.
ALWAYS = 1_000_000


class InjectedFault(RuntimeError):
    """The exception a ``spec-error``/``trace-read`` fault raises."""

    def __init__(self, site: str, key: str, attempt: int):
        super().__init__(
            f"injected fault at {site!r} for {key!r} (attempt {attempt})"
        )
        self.site = site
        self.key = key
        self.attempt = attempt

    def __reduce__(self):
        # RuntimeError's default reduce replays ``args`` (the formatted
        # message) into ``__init__``, whose signature differs — an
        # unpicklable-on-arrival exception would kill the pool's result
        # thread, the very failure mode this module exists to test.
        return (InjectedFault, (self.site, self.key, self.attempt))


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    ``key`` is an ``fnmatch`` pattern against the site's key (spec name,
    scenario name or file path; ``"*"`` matches everything).  The fault
    fires while ``attempt < fail_attempts``: 1 is a transient failure
    (retry succeeds), :data:`ALWAYS` a persistent one.  ``hang_s`` only
    matters for ``worker-hang``.
    """

    site: str
    key: str = "*"
    fail_attempts: int = 1
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} (expected one of {SITES})"
            )
        if self.fail_attempts < 1:
            raise ValueError("fail_attempts must be >= 1")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be > 0")

    def matches(self, site: str, key: str, attempt: int) -> bool:
        return (
            site == self.site
            and attempt < self.fail_attempts
            and fnmatchcase(key, self.key)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of faults (plus seed provenance for sampled plans)."""

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def find(self, site: str, key: str, attempt: int) -> Optional[Fault]:
        """The first fault scheduled for ``(site, key, attempt)``, if any."""
        for fault in self.faults:
            if fault.matches(site, key, attempt):
                return fault
        return None

    @classmethod
    def seeded(
        cls,
        seed: int,
        keys: Sequence[str],
        sites: Sequence[str] = ("spec-error",),
        rate: float = 0.2,
        fail_attempts: int = 1,
        hang_s: float = 3600.0,
    ) -> "FaultPlan":
        """Sample a deterministic plan: each ``(site, key)`` pair is
        poisoned with probability ``rate`` under a generator seeded with
        ``seed`` — the same seed always yields the same plan."""
        import numpy as np

        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        rng = np.random.default_rng(seed)
        chosen = [
            Fault(site=site, key=key, fail_attempts=fail_attempts, hang_s=hang_s)
            for site in sites
            for key in keys
            if rng.random() < rate
        ]
        return cls(faults=tuple(chosen), seed=seed)


#: The process-wide active plan; ``None`` keeps every hook a no-op.
_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` for this process (workers inherit/receive it via the
    pool, see :mod:`repro.scenarios.runner`)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    """Disarm fault injection (restores the no-op default)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped installation: the previous plan is restored on exit."""
    global _ACTIVE
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def check(site: str, key: str, attempt: int = 0) -> bool:
    """Passive query: is a fault scheduled here?  Never raises — passive
    sites (``corrupt-result``) act on the answer themselves."""
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.find(site, key, attempt) is not None


def fire(site: str, key: str, attempt: int = 0) -> None:
    """Active hook: crash, hang or raise if a fault is scheduled here.

    ``worker-crash`` and ``serve-crash`` exit the process without
    cleanup (``os._exit``, like the OOM killer or ``kill -9`` would);
    ``worker-hang`` sleeps the fault's ``hang_s``; every other site
    raises :class:`InjectedFault`.
    """
    plan = _ACTIVE
    if plan is None:
        return
    fault = plan.find(site, key, attempt)
    if fault is None:
        return
    if site in ("worker-crash", "serve-crash"):
        os._exit(17)
    if site == "worker-hang":
        time.sleep(fault.hang_s)
        return
    raise InjectedFault(site, key, attempt)
