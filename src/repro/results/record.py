"""The one result record every producer distils into.

A :class:`ScenarioResult` is the durable, comparison-ready summary of one
scenario replay: the spec that produced it, the headline metrics the
paper's evaluation reports (energy, QoS, switching overheads), the
per-day energy series behind Fig. 5, and provenance (seed, engine,
elapsed wall time, package version).  It deliberately does *not* carry
the per-second power/unserved arrays of
:class:`~repro.sim.results.SimulationResult` — a record is what survives
the process, travels through a :class:`~repro.results.store.RunStore`,
feeds a :class:`~repro.results.report.SuiteReport` and diffs against
another run; raw series stay with the simulator.

The split serialisation (``to_json_dict`` for spec/metrics/provenance,
``series_arrays`` for the per-day energy) matches the store's on-disk
format: JSON stays greppable, NPZ keeps float64 series bit-exact.  JSON
itself round-trips Python floats exactly (``json.dumps`` emits
``repr``-faithful shortest forms), so a save→load cycle reproduces every
metric bit-identically — pinned by ``tests/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, Mapping, Tuple

import numpy as np

from ..sim.results import QoSReport

__all__ = ["ScenarioResult", "ResultError", "HEADLINE_METRICS"]

#: Format tag written into every serialised record.
RESULT_FORMAT = 1

#: The deterministic headline metrics of a run, in report order.  These
#: are what golden pinning, ``repro scenario diff`` and the round-trip
#: tests compare; provenance (elapsed time, timestamps) is excluded.
HEADLINE_METRICS: Tuple[str, ...] = (
    "total_energy_j",
    "total_energy_kwh",
    "mean_power_w",
    "n_reconfigurations",
    "switch_energy_j",
    "switch_time_s",
    "total_demand",
    "unserved_demand",
    "violation_seconds",
    "worst_deficit",
    "served_fraction",
)


class ResultError(ValueError):
    """Raised for malformed or mismatched result records."""


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class ScenarioResult:
    """Frozen summary of one scenario replay.

    Built with :meth:`from_run` from a
    :class:`~repro.scenarios.runner.ScenarioRun`; energies are Joules,
    times seconds, demand in request-seconds (the trace's units).
    """

    name: str                                #: registry/spec name
    label: str                               #: published scenario label
    spec: Dict[str, object]                  #: ``ScenarioSpec.to_dict()``
    days: int                                #: replayed day count
    timestep: float                          #: replay resolution (s)
    # -- headline energy ---------------------------------------------------
    total_energy_j: float
    mean_power_w: float
    # -- switching overheads (the paper's reconfiguration accounting) ------
    n_reconfigurations: int
    switch_energy_j: float
    switch_time_s: float                     #: summed blocking durations
    # -- QoS ---------------------------------------------------------------
    total_demand: float
    unserved_demand: float
    violation_seconds: int
    worst_deficit: float
    # -- series ------------------------------------------------------------
    per_day_energy_j: Tuple[float, ...]      #: the Fig. 5 series (J/day)
    # -- provenance --------------------------------------------------------
    seed: int
    engine: str
    elapsed_s: float
    version: str
    created_at: str = field(default_factory=_utcnow)

    def __post_init__(self) -> None:
        if not self.name:
            raise ResultError("result name must be non-empty")
        object.__setattr__(
            self,
            "per_day_energy_j",
            tuple(float(v) for v in self.per_day_energy_j),
        )
        object.__setattr__(self, "spec", dict(self.spec))

    # -- construction ------------------------------------------------------
    @classmethod
    def from_run(cls, run) -> "ScenarioResult":
        """Distil a :class:`~repro.scenarios.runner.ScenarioRun`.

        Duck-typed on the run's ``spec``/``result``/``days``/``qos()``/
        ``elapsed_s`` surface so this module needs no scenarios import.
        """
        from .. import __version__

        result = run.result
        qos = run.qos()
        spec = run.spec
        return cls(
            name=spec.name,
            label=result.scenario,
            spec=spec.to_dict(),
            days=int(run.days),
            timestep=float(result.timestep),
            total_energy_j=result.total_energy,
            mean_power_w=result.mean_power,
            n_reconfigurations=int(result.n_reconfigurations),
            switch_energy_j=float(result.switch_energy),
            switch_time_s=float(
                sum(r.duration for r in result.reconfigurations)
            ),
            total_demand=float(qos.total_demand),
            unserved_demand=float(qos.unserved_demand),
            violation_seconds=int(qos.violation_seconds),
            worst_deficit=float(qos.worst_deficit),
            per_day_energy_j=tuple(
                float(v) for v in result.per_day_energy()
            ),
            seed=int(spec.workload.seed),
            engine=result.engine or spec.engine,
            elapsed_s=float(run.elapsed_s),
            version=__version__,
        )

    # -- derived metrics ---------------------------------------------------
    @property
    def total_energy_kwh(self) -> float:
        return self.total_energy_j / 3.6e6

    @property
    def switch_energy_kwh(self) -> float:
        return self.switch_energy_j / 3.6e6

    @property
    def served_fraction(self) -> float:
        return self.qos.served_fraction

    @property
    def qos(self) -> QoSReport:
        """The QoS summary as the simulator's own report type."""
        return QoSReport(
            total_demand=self.total_demand,
            unserved_demand=self.unserved_demand,
            violation_seconds=self.violation_seconds,
            worst_deficit=self.worst_deficit,
        )

    def per_day_energy(self) -> np.ndarray:
        """Per-day energy in Joules (the Fig. 5 series)."""
        return np.asarray(self.per_day_energy_j, dtype=float)

    def per_day_energy_kwh(self) -> np.ndarray:
        return self.per_day_energy() / 3.6e6

    def metrics(self) -> Dict[str, float]:
        """The deterministic headline metrics (see ``HEADLINE_METRICS``)."""
        return {m: getattr(self, m) for m in HEADLINE_METRICS}

    def spec_key(self) -> str:
        """Canonical identity of the producing spec (see
        :meth:`ScenarioSpec.spec_key <repro.scenarios.spec.ScenarioSpec.spec_key>`);
        ``run_suite(..., resume=True)`` matches stored records to suite
        specs on this key."""
        import json

        return json.dumps(self.spec, sort_keys=True, separators=(",", ":"))

    def summary_row(self) -> Dict[str, object]:
        """One report-table row (the suite/CLI summary shape)."""
        return {
            "scenario": self.name,
            "label": self.label,
            "energy_kwh": round(self.total_energy_kwh, 2),
            "mean_power_w": round(self.mean_power_w, 1),
            "reconfigs": self.n_reconfigurations,
            "switch_kwh": round(self.switch_energy_kwh, 3),
            "unserved_s": self.violation_seconds,
            "served_frac": round(self.served_fraction, 6),
            "days": self.days,
            "elapsed_s": round(self.elapsed_s, 2),
        }

    # -- serialisation -----------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Everything but the series, structured for ``result.json``."""
        return {
            "format": RESULT_FORMAT,
            "name": self.name,
            "label": self.label,
            "days": self.days,
            "timestep": self.timestep,
            "spec": self.spec,
            "metrics": {
                "total_energy_j": self.total_energy_j,
                "mean_power_w": self.mean_power_w,
                "n_reconfigurations": self.n_reconfigurations,
                "switch_energy_j": self.switch_energy_j,
                "switch_time_s": self.switch_time_s,
                "total_demand": self.total_demand,
                "unserved_demand": self.unserved_demand,
                "violation_seconds": self.violation_seconds,
                "worst_deficit": self.worst_deficit,
            },
            "provenance": {
                "seed": self.seed,
                "engine": self.engine,
                "elapsed_s": self.elapsed_s,
                "version": self.version,
                "created_at": self.created_at,
            },
        }

    def series_arrays(self) -> Dict[str, np.ndarray]:
        """The NPZ payload (float64, bit-exact round trip)."""
        return {
            "per_day_energy_j": np.asarray(self.per_day_energy_j, dtype=float)
        }

    @classmethod
    def from_parts(
        cls,
        data: Mapping[str, object],
        series: Mapping[str, np.ndarray],
    ) -> "ScenarioResult":
        """Rebuild a record from ``to_json_dict`` + ``series_arrays``."""
        if data.get("format") != RESULT_FORMAT:
            raise ResultError(
                f"unsupported result format {data.get('format')!r} "
                f"(expected {RESULT_FORMAT})"
            )
        try:
            metrics = data["metrics"]
            provenance = data["provenance"]
            per_day = series["per_day_energy_j"]
            return cls(
                name=data["name"],
                label=data["label"],
                spec=dict(data["spec"]),
                days=int(data["days"]),
                timestep=float(data["timestep"]),
                total_energy_j=metrics["total_energy_j"],
                mean_power_w=metrics["mean_power_w"],
                n_reconfigurations=int(metrics["n_reconfigurations"]),
                switch_energy_j=metrics["switch_energy_j"],
                switch_time_s=metrics["switch_time_s"],
                total_demand=metrics["total_demand"],
                unserved_demand=metrics["unserved_demand"],
                violation_seconds=int(metrics["violation_seconds"]),
                worst_deficit=metrics["worst_deficit"],
                per_day_energy_j=tuple(float(v) for v in np.asarray(per_day)),
                seed=int(provenance["seed"]),
                engine=provenance["engine"],
                elapsed_s=provenance["elapsed_s"],
                version=provenance["version"],
                created_at=provenance["created_at"],
            )
        except KeyError as exc:
            raise ResultError(f"result record is missing {exc}") from None

    def load_spec(self):
        """The stored spec as a live :class:`ScenarioSpec` (lazy import)."""
        from ..scenarios.spec import ScenarioSpec

        return ScenarioSpec.from_dict(self.spec)
