"""Suite-level aggregation: many records, one comparable report.

A :class:`SuiteReport` holds the :class:`ScenarioResult` records of one
suite run (or one store query) and answers the cross-scenario questions
the paper's evaluation asks: the summary table, savings vs a baseline
scenario (``energy_savings``), and per-day overhead statistics vs a
reference (``overhead_stats`` — the "+32 % average over the lower
bound" headline).  Suites minted from a sweep additionally answer grid
questions: :meth:`SuiteReport.facet_rows` aggregates along any axis the
records carry in ``spec["axes"]``.  Rendering goes through
:func:`repro.analysis.tables.render_suite` and
:func:`repro.analysis.figures.suite_series` so tables and figures keep a
single source of truth for suite output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.metrics import OverheadStats, energy_savings, overhead_stats
from .record import ResultError, ScenarioResult

__all__ = ["SuiteReport"]


@dataclass(frozen=True)
class SuiteReport:
    """Aggregated view over the records of one scenario suite.

    ``baseline`` names the record other scenarios are compared against
    (for the paper's Fig. 5 that is the over-provisioned
    ``paper-upper-global``); when set, ``rows()`` grows a
    ``saved_vs_baseline`` column and :meth:`savings` becomes available.

    ``failures`` holds the suite's terminal
    :class:`~repro.scenarios.runner.FailedRun` records (from
    ``run_suite(..., keep_going=True)``): every aggregate — savings,
    overheads, summary rows — is computed over the *survivors*, while
    :meth:`failure_rows` and :meth:`render` keep the failures visible.
    """

    results: Tuple[ScenarioResult, ...]
    baseline: Optional[str] = None
    failures: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))
        object.__setattr__(self, "failures", tuple(self.failures))
        if not self.results and not self.failures:
            raise ResultError("a suite report needs at least one result")
        names = [r.name for r in self.results]
        if self.baseline is not None and self.baseline not in names:
            raise ResultError(
                f"baseline {self.baseline!r} is not among {names}"
            )

    @classmethod
    def from_runs(
        cls, runs: Sequence, baseline: Optional[str] = None
    ) -> "SuiteReport":
        """Build from runs, records and failures (mixed inputs are fine).

        Failed runs are recognised by their ``error_type`` attribute
        (duck-typed so this module needs no scenarios import) and land
        in ``failures``; everything else is distilled into ``results``.
        """
        survivors = [r for r in runs if not hasattr(r, "error_type")]
        return cls(
            results=tuple(
                r
                if isinstance(r, ScenarioResult)
                else ScenarioResult.from_run(r)
                for r in survivors
            ),
            baseline=baseline,
            failures=tuple(r for r in runs if hasattr(r, "error_type")),
        )

    # -- access ------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return [r.name for r in self.results]

    def get(self, name: str) -> ScenarioResult:
        for r in self.results:
            if r.name == name:
                return r
        raise ResultError(f"no result named {name!r} (have: {self.names})")

    # -- cross-scenario metrics -------------------------------------------
    def savings(self) -> Dict[str, float]:
        """Fractional energy savings of every scenario vs the baseline."""
        if self.baseline is None:
            raise ResultError("set a baseline to compute savings")
        base = self.get(self.baseline)
        return {
            r.name: energy_savings(r.total_energy_j, base.total_energy_j)
            for r in self.results
        }

    def overhead(self, name: str, reference: str) -> OverheadStats:
        """Per-day overhead of ``name`` vs ``reference`` (paper headline).

        Both records must cover the same day count — this is the
        ``analysis.metrics.overhead_stats`` statistic computed from
        stored series instead of live replays.
        """
        return overhead_stats(
            self.get(name).per_day_energy(),
            self.get(reference).per_day_energy(),
        )

    # -- sweep facets ------------------------------------------------------
    def facet_axes(self) -> List[str]:
        """Grid axes present in this suite's records, first-seen order.

        Specs minted by a :class:`~repro.scenarios.sweep.SweepSpec`
        carry their grid coordinates in ``spec["axes"]``; hand-written
        scenarios carry none and contribute nothing here.
        """
        axes: List[str] = []
        for r in self.results:
            for axis in r.spec.get("axes") or {}:
                if axis not in axes:
                    axes.append(axis)
        return axes

    def facet_rows(self, axis: str) -> List[Dict[str, object]]:
        """Aggregate rows grouped by one grid axis, first-seen order.

        Answers the sweep question "how does energy move along this
        axis?" without exporting anything: each row covers the records
        sharing one value of ``axis`` (records without the axis group
        under ``-``) with count, mean/min/max energy and the served
        fraction of total demand.
        """
        groups: Dict[object, List[ScenarioResult]] = {}
        for r in self.results:
            value = (r.spec.get("axes") or {}).get(axis, "-")
            groups.setdefault(value, []).append(r)
        if set(groups) == {"-"}:
            raise ResultError(
                f"no record carries sweep axis {axis!r} "
                f"(axes present: {self.facet_axes() or 'none'})"
            )
        rows: List[Dict[str, object]] = []
        for value, records in groups.items():
            kwh = [r.total_energy_j / 3.6e6 for r in records]
            demand = sum(r.total_demand for r in records)
            unserved = sum(r.unserved_demand for r in records)
            rows.append(
                {
                    axis: value,
                    "n": len(records),
                    "mean_kwh": round(sum(kwh) / len(kwh), 4),
                    "min_kwh": round(min(kwh), 4),
                    "max_kwh": round(max(kwh), 4),
                    "served": round(
                        1.0 - unserved / demand if demand else 1.0, 6
                    ),
                }
            )
        return rows

    # -- rendering ---------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """Summary-table rows; adds savings vs the baseline when set."""
        rows = [r.summary_row() for r in self.results]
        if self.baseline is not None:
            savings = self.savings()
            for row in rows:
                row["saved_vs_baseline"] = round(savings[row["scenario"]], 4)
        return rows

    def failure_rows(self) -> List[Dict[str, object]]:
        """Failures-table rows (``FailedRun.summary_row`` shapes)."""
        return [f.summary_row() for f in self.failures]

    def render(self, title: str = "scenario suite") -> str:
        """Aligned-table rendering (see ``analysis.tables.render_suite``);
        a failures table follows the summary when any spec failed."""
        from ..analysis.tables import render_suite, render_table

        parts = []
        if self.results:
            parts.append(render_suite(self, title=title))
        if self.failures:
            parts.append(
                render_table(
                    self.failure_rows(),
                    title=f"failures ({len(self.failures)})",
                )
            )
        return "\n\n".join(parts)
