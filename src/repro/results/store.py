"""Persistent run storage: suite runs become durable artifacts.

A :class:`RunStore` is a plain directory of runs, one sub-directory per
saved :class:`~repro.results.record.ScenarioResult`::

    <root>/
      0001-paper-bml/
        result.json    # spec + headline metrics + provenance
        series.npz     # per-day energy series, float64 (bit-exact)
      0002-paper-lower-bound/
        ...

Run ids are ``<seq>-<scenario-name>``: the zero-padded sequence number
keeps ``store.list()`` (and ``ls``) in save order, the name keeps ids
human-addressable.  The format is deliberately boring — JSON and NPZ,
no index file to corrupt; the directory *is* the database.  ``save`` →
``load`` reproduces every metric bit-identically (JSON floats round-trip
exactly, series travel as float64 NPZ), which is what makes stored runs
valid inputs for ``repro scenario diff`` and golden pinning.

Corrupt or truncated run directories (a torn write, a copy that lost
``series.npz``) are **quarantined**, not fatal: ``list()`` and
``load_all()`` skip them and collect :class:`QuarantinedRun` entries —
inspect them via :meth:`RunStore.skipped` — so one bad directory cannot
take a whole checkpointed suite's history hostage.  ``prune`` ignores
quarantined directories (it only ever deletes runs it can read).

Stores **federate** (PR 8): a sweep split across hosts produces one
store per host, and either :meth:`RunStore.merge` folds them into a
single store (conflict policy for duplicate spec keys: newest wins, or
error) or :func:`merged_results` reads several stores side by side
without copying anything — the view ``repro scenario report --store A
--store B`` consumes.  Because records carry their own ``created_at``
and round-trip bit-exactly, a merged store reports identically to the
store a single host would have produced.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .. import faults
from .record import ResultError, ScenarioResult

__all__ = [
    "RunStore",
    "StoredRun",
    "QuarantinedRun",
    "StoreError",
    "load_run_dir",
    "merged_results",
]

RESULT_FILE = "result.json"
SERIES_FILE = "series.npz"
#: Sub-directory for named state checkpoints (``save_state``); its name
#: never matches ``_RUN_ID_RE``, so run listings cannot see it.
STATE_DIR = "_state"

_RUN_ID_RE = re.compile(r"^(\d+)-(.+)$")
_STATE_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class StoreError(ResultError):
    """Raised for missing or malformed stored runs."""


@dataclass(frozen=True)
class StoredRun:
    """One ``store.list()`` entry: enough to pick a run without loading it."""

    run_id: str
    name: str
    label: str
    days: int
    created_at: str
    total_energy_kwh: float
    path: Path

    @property
    def seq(self) -> int:
        m = _RUN_ID_RE.match(self.run_id)
        return int(m.group(1)) if m else 0


@dataclass(frozen=True)
class QuarantinedRun:
    """A run directory the store refused to read, and why.

    Quarantine is passive: the directory stays on disk untouched (the
    bytes may still be salvageable by hand) but it is invisible to
    ``list``/``load_all``/``latest``/``prune``.
    """

    run_id: str
    path: Path
    reason: str


def load_run_dir(path: Union[str, Path]) -> ScenarioResult:
    """Load the record stored in one run directory."""
    path = Path(path)
    result_path = path / RESULT_FILE
    series_path = path / SERIES_FILE
    if not result_path.exists():
        raise StoreError(f"{path} holds no {RESULT_FILE}")
    data = json.loads(result_path.read_text())
    if not series_path.exists():
        raise StoreError(f"{path} holds no {SERIES_FILE}")
    with np.load(series_path) as npz:
        series = {key: npz[key] for key in npz.files}
    return ScenarioResult.from_parts(data, series)


class RunStore:
    """A directory of persisted scenario runs."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._skipped: List[QuarantinedRun] = []

    # -- writing -----------------------------------------------------------
    def save(self, run) -> str:
        """Persist a run; returns its run id.

        Accepts a :class:`ScenarioResult` or anything
        :meth:`ScenarioResult.from_run` understands (a ``ScenarioRun``).
        """
        record = (
            run
            if isinstance(run, ScenarioResult)
            else ScenarioResult.from_run(run)
        )
        self.root.mkdir(parents=True, exist_ok=True)
        # mkdir is the claim on a sequence number: a concurrent saver of
        # the same scenario loses the race, re-derives the next free seq
        # and retries (no check-then-act window on the id itself)
        while True:
            run_id = f"{self._next_seq():04d}-{record.name}"
            run_dir = self.root / run_id
            try:
                run_dir.mkdir()
            except FileExistsError:
                continue
            break
        payload = json.dumps(record.to_json_dict(), indent=2) + "\n"
        if faults.check("corrupt-result", record.name):
            payload = payload[: len(payload) // 2]  # a torn write
        (run_dir / RESULT_FILE).write_text(payload)
        np.savez_compressed(run_dir / SERIES_FILE, **record.series_arrays())
        return run_id

    def _next_seq(self) -> int:
        seqs = [
            int(m.group(1))
            for p in self.root.iterdir()
            if p.is_dir()
            for m in [_RUN_ID_RE.match(p.name)]
            if m
        ]
        return max(seqs, default=0) + 1

    # -- reading -----------------------------------------------------------
    def load(self, run_id: str) -> ScenarioResult:
        """Load one run by id."""
        run_dir = self.root / run_id
        if not run_dir.is_dir():
            known = ", ".join(s.run_id for s in self.list()) or "(store empty)"
            raise StoreError(
                f"no run {run_id!r} in {self.root} (known: {known})"
            )
        return load_run_dir(run_dir)

    def list(self) -> List[StoredRun]:
        """All readable stored runs in save order (reads JSON headers only).

        Corrupt or truncated directories are quarantined (skipped and
        recorded, see :meth:`skipped`) rather than fatal.
        """
        self._skipped = []
        if not self.root.is_dir():
            return []
        out: List[StoredRun] = []
        for p in sorted(self.root.iterdir()):
            if not p.is_dir() or not _RUN_ID_RE.match(p.name):
                continue
            result_path = p / RESULT_FILE
            if not result_path.exists():
                self._quarantine(p, f"missing {RESULT_FILE}")
                continue
            try:
                data = json.loads(result_path.read_text())
                stored = StoredRun(
                    run_id=p.name,
                    name=data.get("name", ""),
                    label=data.get("label", ""),
                    days=int(data.get("days", 0)),
                    created_at=data.get("provenance", {}).get("created_at", ""),
                    total_energy_kwh=float(
                        data.get("metrics", {}).get("total_energy_j", 0.0)
                    )
                    / 3.6e6,
                    path=p,
                )
            except (OSError, ValueError, TypeError, AttributeError) as exc:
                self._quarantine(
                    p, f"unreadable {RESULT_FILE}: {type(exc).__name__}: {exc}"
                )
                continue
            out.append(stored)
        out.sort(key=lambda s: s.seq)
        return out

    def load_all(self, strict: bool = False) -> List[ScenarioResult]:
        """Load every readable stored run in save order.

        Runs whose full payload fails to load (a corrupt ``series.npz``
        behind a healthy header) join the quarantine report; with
        ``strict=True`` the first such run raises instead.
        """
        out: List[ScenarioResult] = []
        for stored in self.list():
            try:
                out.append(load_run_dir(stored.path))
            except Exception as exc:
                if strict:
                    raise
                self._quarantine(
                    stored.path,
                    f"unloadable run: {type(exc).__name__}: {exc}",
                )
        return out

    def skipped(self) -> List[QuarantinedRun]:
        """The directories quarantined by the most recent scan
        (``list``/``load_all``/anything built on them), with reasons."""
        return list(self._skipped)

    def _quarantine(self, path: Path, reason: str) -> None:
        self._skipped.append(
            QuarantinedRun(run_id=path.name, path=path, reason=reason)
        )

    # -- state checkpoints -------------------------------------------------
    def _state_path(self, name: str) -> Path:
        if not _STATE_NAME_RE.match(name):
            raise StoreError(f"invalid state checkpoint name {name!r}")
        return self.root / STATE_DIR / f"{name}.json"

    def save_state(self, name: str, payload: Dict[str, object]) -> Path:
        """Atomically persist a named JSON state checkpoint.

        Checkpoints live under ``<root>/_state/`` — invisible to
        ``list()``/``load_all()``, which only consider ``<seq>-<name>``
        run directories.  The write is crash-safe: tmp file, flush,
        fsync, atomic rename — a ``kill -9`` at any instant leaves
        either the previous checkpoint or the new one, never a torn
        file.  This is what ``repro serve`` resumes from.
        """
        import os

        path = self._state_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        data = json.dumps(payload, sort_keys=True) + "\n"
        with open(tmp, "w") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def load_state(self, name: str) -> Optional[Dict[str, object]]:
        """The named checkpoint, or ``None`` if never saved.

        A malformed checkpoint file raises :class:`StoreError` (the
        atomic writer cannot produce one, so damage means outside
        interference — resuming from it would be a silent fork)."""
        path = self._state_path(name)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            raise StoreError(
                f"corrupt state checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise StoreError(
                f"corrupt state checkpoint {path}: expected a JSON object"
            )
        return payload

    def drop_state(self, name: str) -> bool:
        """Delete the named checkpoint; True if one existed."""
        path = self._state_path(name)
        if path.exists():
            path.unlink()
            return True
        return False

    # -- retention ---------------------------------------------------------
    def prune(self, keep_last: int) -> List[str]:
        """Delete all but each scenario's newest ``keep_last`` runs.

        Retention is **per scenario name** (the unit ``latest()`` and
        ``repro scenario report`` consume): for every scenario with more
        than ``keep_last`` stored runs, the oldest surplus run
        directories are removed.  ``keep_last=0`` empties the store.
        Surviving runs are untouched on disk — loads stay bit-identical
        — and returned ids are in deletion (save) order.  Quarantined
        directories are never deleted: retention only counts (and only
        removes) runs the store can actually read.
        """
        if keep_last < 0:
            raise StoreError("keep_last must be >= 0")
        import shutil

        by_name: Dict[str, List[StoredRun]] = {}
        for stored in self.list():  # already in save (seq) order
            by_name.setdefault(stored.name, []).append(stored)
        removed: List[StoredRun] = []
        for runs in by_name.values():
            surplus = runs[:-keep_last] if keep_last else runs
            removed.extend(surplus)
        removed.sort(key=lambda s: s.seq)
        for stored in removed:
            shutil.rmtree(stored.path)
        return [s.run_id for s in removed]

    def latest(self, name: Optional[str] = None) -> ScenarioResult:
        """The most recently saved run, optionally filtered by scenario name."""
        stored = [s for s in self.list() if name is None or s.name == name]
        if not stored:
            raise StoreError(
                f"no stored run for {name!r} in {self.root}"
                if name
                else f"store {self.root} is empty"
            )
        return load_run_dir(stored[-1].path)

    # -- federation --------------------------------------------------------
    def merge(self, *sources, on_conflict: str = "newest") -> List[str]:
        """Fold other stores' runs into this one; returns the new run ids.

        Each source (a :class:`RunStore` or a path) contributes its
        newest run per spec key — re-runs *within* one store are normal
        history, not conflicts.  A spec key seen in **several** stores
        (this one included) is a conflict, resolved by policy:

        - ``"newest"`` — the record with the latest ``created_at`` wins
          (ties go to the later-listed source); a source record older
          than what this store already holds is simply skipped, so the
          merged store's latest-per-name view is the newest view.
        - ``"error"`` — raise :class:`StoreError` naming the colliding
          spec keys; nothing is written (the check runs up front).

        Records are re-saved byte-faithfully (``created_at`` and every
        metric travel inside the record), so reports over the merged
        store match reports over the federated view exactly.  Source
        quarantines fold into this store's :meth:`skipped` report.
        """
        if on_conflict not in ("newest", "error"):
            raise StoreError(
                f"unknown on_conflict policy {on_conflict!r} "
                "(choose 'newest' or 'error')"
            )
        stores = [
            src if isinstance(src, RunStore) else RunStore(src)
            for src in sources
        ]
        # Newest record per spec key, per store (dest first = index 0).
        per_store: List[Dict[str, ScenarioResult]] = []
        quarantined: List[QuarantinedRun] = []
        for store in [self] + stores:
            newest: Dict[str, ScenarioResult] = {}
            for record in store.load_all():  # save order: later wins
                newest[record.spec_key()] = record
            per_store.append(newest)
            quarantined.extend(store.skipped())
        if on_conflict == "error":
            collisions = {}
            for idx, newest in enumerate(per_store):
                for key, record in newest.items():
                    collisions.setdefault(key, []).append(
                        (idx, record.name)
                    )
            dupes = {k: v for k, v in collisions.items() if len(v) > 1}
            if dupes:
                names = sorted({name for v in dupes.values() for _, name in v})
                raise StoreError(
                    f"merge conflict: {len(dupes)} spec key(s) present in "
                    f"several stores (scenarios: {', '.join(names)}); "
                    "re-run with on_conflict='newest' to keep the newest"
                )
        dest_newest = per_store[0]
        winners: Dict[str, ScenarioResult] = {}
        for newest in per_store[1:]:  # later sources win created_at ties
            for key, record in newest.items():
                held = winners.get(key)
                if held is None or record.created_at >= held.created_at:
                    winners[key] = record
        saved: List[str] = []
        for key, record in winners.items():
            held = dest_newest.get(key)
            if held is not None and held.created_at >= record.created_at:
                continue  # this store already holds the newest
            saved.append(self.save(record))
        # Surface every participating store's quarantine in one place.
        self._skipped = quarantined
        return saved


def merged_results(
    stores: List[Union[RunStore, str, Path]], strict: bool = False
) -> List[ScenarioResult]:
    """The federated latest-per-scenario view over several stores.

    Each scenario name's winner is the record with the newest
    ``created_at`` across all stores (ties go to the later-listed store,
    then to save order within it) — exactly the record
    :meth:`RunStore.merge` would have kept.  Winners are returned in
    first-seen order, so a report over ``[half_a, half_b]`` lists
    scenarios in the order the original suite ran them.  With
    ``strict=True`` any unloadable run raises instead of being skipped.
    """
    opened = [
        src if isinstance(src, RunStore) else RunStore(src) for src in stores
    ]
    order: List[str] = []
    winner: Dict[str, ScenarioResult] = {}
    for store in opened:
        for record in store.load_all(strict=strict):
            held = winner.get(record.name)
            if held is None:
                order.append(record.name)
                winner[record.name] = record
            elif record.created_at >= held.created_at:
                winner[record.name] = record
    return [winner[name] for name in order]
