"""Unified results subsystem: record, persist, aggregate, compare.

One result model for every producer and consumer in the repo:

* :class:`ScenarioResult` — the frozen, serialisable summary of one
  scenario replay (spec + headline metrics + per-day energy + QoS +
  switching overheads + provenance), distilled from a
  :class:`~repro.scenarios.runner.ScenarioRun`;
* :class:`RunStore` — a durable directory of saved runs
  (``save``/``load``/``list``/``latest``; JSON metrics + NPZ series,
  bit-identical round trips);
* :class:`SuiteReport` — cross-scenario aggregation (summary tables,
  savings vs a baseline, per-day overhead statistics);
* :func:`diff` — the comparison engine behind ``repro scenario diff``
  (metric deltas, per-day energy deltas, spec field changes).

Quick start::

    from repro import scenarios
    from repro.results import RunStore, SuiteReport, diff

    store = RunStore("runs")
    runs = scenarios.run_suite([scenarios.get("paper-bml").with_days(2)])
    run_id = store.save(runs[0])                 # durable artifact
    record = store.load(run_id)                  # bit-identical metrics
    report = SuiteReport.from_runs(runs)         # cross-scenario view
    print(report.render())
"""

from .diffing import MetricDelta, ResultDiff, diff
from .record import HEADLINE_METRICS, ResultError, ScenarioResult
from .report import SuiteReport
from .store import (
    QuarantinedRun,
    RunStore,
    StoredRun,
    StoreError,
    load_run_dir,
    merged_results,
)

#: Alias for the root namespace (``repro.diff_results``): ``diff`` reads
#: well inside the package but is too generic a name at top level.
diff_results = diff

__all__ = [
    "diff_results",
    "ScenarioResult",
    "ResultError",
    "HEADLINE_METRICS",
    "RunStore",
    "StoredRun",
    "QuarantinedRun",
    "StoreError",
    "load_run_dir",
    "merged_results",
    "SuiteReport",
    "MetricDelta",
    "ResultDiff",
    "diff",
]
