"""Run comparison: what changed between two stored results.

:func:`diff` compares two :class:`ScenarioResult` records on three axes —
headline metric deltas, per-day energy deltas (when both cover the same
day count) and spec field changes (the flattened ``ScenarioSpec`` dicts)
— and returns a :class:`ResultDiff` the CLI's ``repro scenario diff``
renders.  Specs serialise only non-default fields, so a key present on
one side only means "the other run used the default"; those show up with
the ``(default)`` marker rather than being silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .record import HEADLINE_METRICS, ScenarioResult

__all__ = ["MetricDelta", "ResultDiff", "diff"]

#: Marker for a spec field present on one side only (= the default value).
DEFAULT_MARKER = "(default)"


@dataclass(frozen=True)
class MetricDelta:
    """One headline metric on both sides."""

    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> Optional[float]:
        """``delta / a``, or ``None`` when the reference value is zero."""
        if self.a == 0:
            return None
        return self.delta / self.a

    @property
    def changed(self) -> bool:
        return self.a != self.b


def _flatten(
    mapping: Mapping[str, object], prefix: str = ""
) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for key, value in mapping.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(_flatten(value, prefix=f"{dotted}."))
        else:
            out[dotted] = value
    return out


def spec_changes(
    a: Mapping[str, object], b: Mapping[str, object]
) -> Dict[str, Tuple[object, object]]:
    """Dotted-path spec fields that differ between two spec dicts."""
    flat_a, flat_b = _flatten(a), _flatten(b)
    changes: Dict[str, Tuple[object, object]] = {}
    for key in sorted(set(flat_a) | set(flat_b)):
        va = flat_a.get(key, DEFAULT_MARKER)
        vb = flat_b.get(key, DEFAULT_MARKER)
        if va != vb:
            changes[key] = (va, vb)
    return changes


@dataclass(frozen=True)
class ResultDiff:
    """Everything that differs between two runs."""

    a: ScenarioResult
    b: ScenarioResult
    metrics: Tuple[MetricDelta, ...]
    spec_changes: Dict[str, Tuple[object, object]]
    #: ``b - a`` per-day energy (J); ``None`` when day counts differ.
    per_day_delta_j: Optional[np.ndarray]

    @property
    def identical(self) -> bool:
        """Same spec, same metrics, same per-day series."""
        return (
            not self.spec_changes
            and not any(m.changed for m in self.metrics)
            and self.per_day_delta_j is not None
            and not np.any(self.per_day_delta_j)
        )

    # -- rendering ---------------------------------------------------------
    def metric_rows(self) -> List[Dict[str, object]]:
        rows = []
        for m in self.metrics:
            rows.append(
                {
                    "metric": m.metric,
                    "a": m.a,
                    "b": m.b,
                    "delta": m.delta,
                    "rel_%": (
                        None
                        if m.relative is None
                        else round(100.0 * m.relative, 3)
                    ),
                }
            )
        return rows

    def spec_rows(self) -> List[Dict[str, object]]:
        return [
            {"field": key, "a": str(va), "b": str(vb)}
            for key, (va, vb) in self.spec_changes.items()
        ]

    def describe(self) -> str:
        """One-line verdict for logs and CLI headers."""
        if self.identical:
            return "runs are identical (same spec, bit-identical metrics)"
        n_metrics = sum(1 for m in self.metrics if m.changed)
        parts = [f"{n_metrics} metric(s) differ"]
        if self.spec_changes:
            parts.append(f"{len(self.spec_changes)} spec field(s) changed")
        if self.per_day_delta_j is None:
            parts.append(
                f"day counts differ ({self.a.days} vs {self.b.days})"
            )
        return "; ".join(parts)

    # -- export (CI artifacts) ---------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable view of the whole diff.

        Floats pass through unrounded (``json`` round-trips them
        bit-exactly), so an archived diff is as trustworthy as the live
        one — the point of ``repro scenario diff --json`` CI artifacts.
        """
        return {
            "a": {"name": self.a.name, "days": self.a.days,
                  "engine": self.a.engine},
            "b": {"name": self.b.name, "days": self.b.days,
                  "engine": self.b.engine},
            "identical": self.identical,
            "summary": self.describe(),
            "metrics": self.metric_rows(),
            "spec_changes": {
                key: {"a": va, "b": vb}
                for key, (va, vb) in self.spec_changes.items()
            },
            "per_day_delta_j": (
                None
                if self.per_day_delta_j is None
                else [float(x) for x in self.per_day_delta_j]
            ),
        }

    def csv_rows(self) -> List[Dict[str, object]]:
        """Flat rows for CSV export: metrics first, then spec changes.

        One uniform column set (``kind/name/a/b/delta/rel_%``) so the
        whole diff lands in a single CI artifact file.
        """
        rows: List[Dict[str, object]] = []
        for m in self.metric_rows():
            rows.append(
                {
                    "kind": "metric",
                    "name": m["metric"],
                    "a": m["a"],
                    "b": m["b"],
                    "delta": m["delta"],
                    "rel_%": m["rel_%"],
                }
            )
        for key, (va, vb) in self.spec_changes.items():
            rows.append(
                {
                    "kind": "spec",
                    "name": key,
                    "a": str(va),
                    "b": str(vb),
                    "delta": "",
                    "rel_%": "",
                }
            )
        return rows


def diff(a: ScenarioResult, b: ScenarioResult) -> ResultDiff:
    """Compare two result records (``b`` relative to ``a``)."""
    metrics = tuple(
        MetricDelta(metric=m, a=float(getattr(a, m)), b=float(getattr(b, m)))
        for m in HEADLINE_METRICS
    )
    per_day: Optional[np.ndarray] = None
    if len(a.per_day_energy_j) == len(b.per_day_energy_j):
        per_day = b.per_day_energy() - a.per_day_energy()
    return ResultDiff(
        a=a,
        b=b,
        metrics=metrics,
        spec_changes=spec_changes(a.spec, b.spec),
        per_day_delta_j=per_day,
    )
