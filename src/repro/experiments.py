"""Packaged experiments: one callable per paper table/figure.

Benchmarks, examples and the CLI all call these entry points so every
reproduction runs exactly one code path.  See DESIGN.md's per-experiment
index (E1..E6, A1..A4) for the mapping to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union


from .analysis.figures import (
    FigureSeries,
    fig1_series,
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
)
from .analysis.metrics import OverheadStats, overhead_stats
from .core.bml import BMLInfrastructure, design
from .core.prediction import Predictor
from .core.profiles import (
    ArchitectureProfile,
    illustrative_profiles,
    table_i_profiles,
)
from .profiling.harness import MachineReport, ProfilingCampaign
from .profiling.hardware import paper_hardware
from .results import RunStore, ScenarioResult, SuiteReport
from .scenarios import registry as scenario_registry
from .scenarios.runner import ScenarioRun, run_scenario
from .sim.results import SimulationResult
from .workload.trace import LoadTrace

__all__ = [
    "run_table1",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "Fig5Outcome",
    "run_fig5",
    "SCENARIO_GLOBAL",
    "SCENARIO_PER_DAY",
    "SCENARIO_BML",
    "SCENARIO_LOWER_BOUND",
]

# The published scenario names; the registry's paper-* specs are the
# single source of truth, re-exported here for backward compatibility.
(
    SCENARIO_GLOBAL,
    SCENARIO_PER_DAY,
    SCENARIO_BML,
    SCENARIO_LOWER_BOUND,
) = tuple(
    scenario_registry.get(name).scenario_label
    for name in scenario_registry.PAPER_SCENARIOS
)


def run_table1(
    campaign: Optional[ProfilingCampaign] = None,
) -> List[MachineReport]:
    """E1 — regenerate Table I by profiling the modelled testbed."""
    campaign = campaign or ProfilingCampaign()
    return campaign.run(paper_hardware())


def run_fig1() -> FigureSeries:
    """E2 — illustrative architectures A-D and the Step 2 filter."""
    profiles = illustrative_profiles()
    infra = design(profiles)
    removed = dict(infra.removed)
    return fig1_series(profiles, kept=infra.names, removed=removed)


def run_fig2() -> FigureSeries:
    """E3 — crossing points between architectures (Steps 3-4)."""
    return fig2_series(design(illustrative_profiles()))


def run_fig3(
    profiles: Optional[Sequence[ArchitectureProfile]] = None,
) -> FigureSeries:
    """E4 — measured power/performance profiles of the five machines."""
    return fig3_series(list(profiles) if profiles else table_i_profiles())


def run_fig4(method: str = "greedy") -> FigureSeries:
    """E5 — ideal BML combination power vs Big-only vs BML linear."""
    return fig4_series(design(table_i_profiles()), method=method)


@dataclass
class Fig5Outcome:
    """All four scenarios of Fig. 5 plus the headline statistics."""

    trace: LoadTrace
    infra: BMLInfrastructure
    upper_global: SimulationResult
    upper_per_day: SimulationResult
    bml: SimulationResult
    lower_bound: SimulationResult
    overhead: OverheadStats
    #: The four scenario runs in presentation order (carry spec + trace
    #: metadata so the outcome can distil unified result records).
    runs: List[ScenarioRun] = field(default_factory=list)

    @property
    def results(self) -> List[SimulationResult]:
        return [self.upper_global, self.upper_per_day, self.bml, self.lower_bound]

    def records(self) -> List[ScenarioResult]:
        """The four scenarios as unified result records."""
        return [run.to_record() for run in self.runs]

    def report(
        self, baseline: str = "paper-upper-global"
    ) -> SuiteReport:
        """Suite-level aggregation over the four Fig. 5 scenarios.

        The default baseline is the classical over-provisioned data
        center, so ``report().savings()`` states the paper's pitch (how
        much BML saves vs always-on Bigs) directly from the records.
        """
        return SuiteReport.from_runs(self.runs, baseline=baseline)

    def save(self, store: Union[RunStore, str, Path]) -> List[str]:
        """Persist all four scenario runs; returns their run ids."""
        if not isinstance(store, RunStore):
            store = RunStore(store)
        return [store.save(run) for run in self.runs]

    def figure(self) -> FigureSeries:
        """The Fig. 5 series with overhead annotations."""
        return fig5_series(self.results, reference=self.lower_bound)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per scenario for report tables."""
        rows = []
        for r in self.results:
            qos = r.qos(self.trace)
            rows.append(
                {
                    "scenario": r.scenario,
                    "energy_kwh": round(r.total_energy_kwh, 2),
                    "mean_power_w": round(r.mean_power, 1),
                    "reconfigs": r.n_reconfigurations,
                    "switch_kwh": round(r.switch_energy / 3.6e6, 3),
                    "unserved_s": qos.violation_seconds,
                    "served_frac": round(qos.served_fraction, 6),
                }
            )
        return rows


def run_fig5(
    trace: Optional[LoadTrace] = None,
    infra: Optional[BMLInfrastructure] = None,
    predictor: Optional[Predictor] = None,
    n_days: int = 87,
    seed: int = 1998,
    method: str = "greedy",
    policy: str = "bml",
    engine: Optional[str] = None,
) -> Fig5Outcome:
    """E6 — the World Cup replay: 4 scenarios, per-day energy, overheads.

    Defaults reproduce the paper's setup: 87 days (6..92), look-ahead-max
    prediction over 378 s, greedy Step 5 combinations.  Pass a shorter
    synthetic trace (``n_days``) for quick runs.  ``policy`` selects the
    BML scenario's scheduler: ``"bml"`` (the paper) or
    ``"transition-aware"`` (the Sec. VI future-work policy); ``engine``
    overrides the BML scenario's replay engine (a
    :data:`repro.scenarios.spec.ENGINES` name, e.g. ``"event-twophase"``
    — the baselines always use the fast plan executor).

    Thin wrapper over the scenario subsystem: the four specs come from
    :mod:`repro.scenarios.registry` (``paper-upper-global``,
    ``paper-upper-perday``, ``paper-bml``, ``paper-lower-bound``) with
    this function's arguments layered on, and every replay goes through
    :func:`repro.scenarios.runner.run_scenario`.
    """
    if policy not in ("bml", "transition-aware"):
        raise ValueError(f"unknown policy {policy!r}")
    specs = {name: scenario_registry.get(name) for name in
             scenario_registry.PAPER_SCENARIOS}
    bml_spec = specs["paper-bml"]
    # One shared trace/infra for the four scenarios, exactly like the
    # original hand-wired comparison (n_days/seed only matter when no
    # explicit trace is given).  n_days is an explicit argument, so it
    # bypasses the REPRO_FIG5_DAYS override reserved for spec defaults.
    if trace is None:
        workload = replace(bml_spec.workload, seed=seed)
        trace = workload.build(days=n_days)
    infra = infra if infra is not None else design(table_i_profiles())

    def scenario(name: str, **overrides) -> ScenarioRun:
        spec = specs[name]
        if overrides:
            spec = replace(spec, scheduler=replace(spec.scheduler, **overrides))
        scheduling = spec.scheduler.policy in ("bml", "transition-aware")
        if engine is not None and scheduling:
            spec = replace(spec, engine=engine)
        return run_scenario(
            spec,
            trace=trace,
            infra=infra,
            predictor=predictor if scheduling else None,
        )

    bml = scenario("paper-bml", policy=policy, method=method)
    upper_global = scenario("paper-upper-global")
    upper_per_day = scenario("paper-upper-perday")
    lower = scenario("paper-lower-bound", method=method)
    overhead = overhead_stats(
        bml.result.per_day_energy(), lower.result.per_day_energy()
    )
    return Fig5Outcome(
        trace=trace,
        infra=infra,
        upper_global=upper_global.result,
        upper_per_day=upper_per_day.result,
        bml=bml.result,
        lower_bound=lower.result,
        overhead=overhead,
        runs=[upper_global, upper_per_day, bml, lower],
    )
