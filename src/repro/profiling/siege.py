"""Siege-style closed-loop benchmark driver.

Reproduces the paper's measurement protocol: "We execute the benchmark
with an increasing number of concurrent clients in order to find the
maximum request rate that can be processed.  Each test runs for 30 seconds
and the maximum performance is the average of 5 results."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .webserver import BenchmarkSample, SimulatedWebServer

__all__ = ["SiegeEmulator", "RampResult"]


@dataclass(frozen=True)
class RampResult:
    """Outcome of a concurrency ramp against one server."""

    samples: Tuple[BenchmarkSample, ...]
    best_concurrency: int
    max_rate: float          # average of the repeated best-point runs
    repeat_rates: Tuple[float, ...]

    @property
    def ramp_curve(self) -> List[Tuple[int, float]]:
        """(concurrency, throughput) points of the ramp."""
        return [(s.concurrency, s.throughput) for s in self.samples]


@dataclass
class SiegeEmulator:
    """Concurrency-ramping benchmark tool (the paper uses Siege).

    The ramp doubles the client count until throughput stops improving by
    more than ``plateau_tolerance``, then the best point is re-run
    ``repeats`` times and averaged — the paper's "average of 5 results".
    """

    duration_s: float = 30.0
    repeats: int = 5
    start_concurrency: int = 1
    max_concurrency: int = 4096
    plateau_tolerance: float = 0.003
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.repeats < 1:
            raise ValueError("duration must be > 0 and repeats >= 1")
        if not 1 <= self.start_concurrency <= self.max_concurrency:
            raise ValueError("bad concurrency bounds")

    def ramp(self, server: SimulatedWebServer) -> RampResult:
        """Find the server's maximum sustainable request rate."""
        rng = np.random.default_rng(self.seed)
        samples: List[BenchmarkSample] = []
        best_rate = -1.0
        best_conc = self.start_concurrency
        conc = self.start_concurrency
        stall = 0
        while conc <= self.max_concurrency:
            sample = server.run_closed(conc, self.duration_s, rng)
            samples.append(sample)
            if sample.throughput > best_rate * (1.0 + self.plateau_tolerance):
                best_rate = sample.throughput
                best_conc = conc
                stall = 0
            else:
                stall += 1
                if stall >= 2:  # two consecutive non-improving doublings
                    break
            conc *= 2
        repeat_rates = [
            server.run_closed(best_conc, self.duration_s, rng).throughput
            for _ in range(self.repeats)
        ]
        return RampResult(
            samples=tuple(samples),
            best_concurrency=best_conc,
            max_rate=float(np.mean(repeat_rates)),
            repeat_rates=tuple(repeat_rates),
        )
