"""Profiling substrate: Step 1 (Table I) without the physical testbed.

Hardware models calibrated to the paper's machines
(:mod:`~repro.profiling.hardware`), a simulated lighttpd+CGI web server
(:mod:`~repro.profiling.webserver`), a Siege-style closed-loop benchmark
(:mod:`~repro.profiling.siege`), a wattmeter emulation
(:mod:`~repro.profiling.wattmeter`) and the campaign harness gluing them
into :class:`~repro.core.profiles.ArchitectureProfile` outputs
(:mod:`~repro.profiling.harness`).
"""

from .hardware import MEAN_REQUEST_WORK, PAPER_HARDWARE, HardwareModel, paper_hardware
from .harness import MachineReport, ProfilingCampaign
from .siege import RampResult, SiegeEmulator
from .wattmeter import PowerTrace, Wattmeter
from .webserver import BenchmarkSample, SimulatedWebServer

__all__ = [
    "HardwareModel",
    "PAPER_HARDWARE",
    "paper_hardware",
    "MEAN_REQUEST_WORK",
    "SimulatedWebServer",
    "BenchmarkSample",
    "SiegeEmulator",
    "RampResult",
    "Wattmeter",
    "PowerTrace",
    "ProfilingCampaign",
    "MachineReport",
]
