"""Simulated stateless web server (the paper's lighttpd + CGI workload).

The paper's target application: lighttpd serving a Python CGI script whose
request cost is a loop of random-number generations, with the iteration
count itself drawn uniformly from [1000, 2000]; the response is a small
static HTML page.  Being CPU-bound, the server's throughput is governed by
the machine's aggregate work rate.

:class:`SimulatedWebServer` exposes the same observable surface a real
deployment would: offer it a closed population of concurrent clients (like
the Siege benchmark does) and it reports throughput, utilisation and mean
latency for a measurement window; offer it an open request rate (like the
data-center replay does) and it reports utilisation and served rate.

The closed-loop model is the classic asymptotic bound for a closed
queueing network with ``c`` servers and no think time — throughput rises
almost linearly with the client count until the cores saturate::

    X(K) ~= min(K / E[S], c / E[S])  requests/s,  E[S] = E[work] / core_rate

with a small contention penalty near the knee, plus measurement noise
(seeded) to emulate a finite 30 s run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .hardware import MEAN_REQUEST_WORK, HardwareModel

__all__ = ["SimulatedWebServer", "BenchmarkSample"]


@dataclass(frozen=True)
class BenchmarkSample:
    """Measurement of one closed-loop benchmark run."""

    concurrency: int
    duration_s: float
    throughput: float       # requests/s completed
    mean_latency_s: float   # mean response time
    utilisation: float      # CPU utilisation in [0, 1]
    requests_completed: int


@dataclass
class SimulatedWebServer:
    """A stateless web-server instance bound to one hardware model.

    ``work_low``/``work_high`` parameterise the CGI loop bounds (the
    paper's 1000/2000); ``overhead_work`` models the fixed per-request
    stack cost (connection handling, CGI fork) in work units.
    """

    hardware: HardwareModel
    work_low: float = 1000.0
    work_high: float = 2000.0
    overhead_work: float = 0.0
    contention: float = 0.01

    def __post_init__(self) -> None:
        if not 0 < self.work_low <= self.work_high:
            raise ValueError("need 0 < work_low <= work_high")
        if self.overhead_work < 0 or self.contention < 0:
            raise ValueError("overhead_work and contention must be >= 0")

    @property
    def mean_request_work(self) -> float:
        """Expected work units per request (uniform loop + fixed stack)."""
        return (self.work_low + self.work_high) / 2.0 + self.overhead_work

    @property
    def max_throughput(self) -> float:
        """Saturation throughput in requests/s."""
        return self.hardware.work_capacity / self.mean_request_work

    @property
    def mean_service_time(self) -> float:
        """Expected single-core service time of one request (s)."""
        return self.mean_request_work / self.hardware.core_work_rate

    # -- closed loop (Siege) -----------------------------------------------
    def run_closed(
        self,
        concurrency: int,
        duration_s: float = 30.0,
        rng: Optional[np.random.Generator] = None,
    ) -> BenchmarkSample:
        """One benchmark run with ``concurrency`` looping clients."""
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        rng = rng if rng is not None else np.random.default_rng(0)
        cores = self.hardware.cores
        s = self.mean_service_time
        # Asymptotic closed-network bounds with a contention dip near the
        # knee (largest when the client count matches the core count).
        x_light = concurrency / s
        x_heavy = cores / s
        knee = self.contention * min(concurrency / cores, cores / concurrency)
        x = min(x_light, x_heavy) * (1.0 - knee)
        # Finite-run sampling noise: each completed request's cost varies
        # uniformly, so a duration-long average has relative std
        # ~ cv / sqrt(n) with cv of U(1000,2000) ~= 0.19.
        n_expected = max(x * duration_s, 1.0)
        cv = (self.work_high - self.work_low) / math.sqrt(12.0) / self.mean_request_work
        measured = x * (1.0 + rng.normal(0.0, cv / math.sqrt(n_expected)))
        measured = max(measured, 0.0)
        utilisation = min(measured * s / cores, 1.0)
        latency = concurrency / measured if measured > 0 else float("inf")
        return BenchmarkSample(
            concurrency=concurrency,
            duration_s=duration_s,
            throughput=measured,
            mean_latency_s=latency,
            utilisation=utilisation,
            requests_completed=int(measured * duration_s),
        )

    # -- open loop (replay) -------------------------------------------------
    def serve_open(self, offered_rate: float) -> Tuple[float, float]:
        """Serve an open arrival rate; returns (served_rate, utilisation)."""
        if offered_rate < 0:
            raise ValueError("offered_rate must be >= 0")
        served = min(offered_rate, self.max_throughput)
        return served, served * self.mean_service_time / self.hardware.cores

    def power_at_rate(self, offered_rate: float) -> float:
        """Electrical draw while serving ``offered_rate`` (linear law)."""
        _, u = self.serve_open(offered_rate)
        return self.hardware.power_at_utilisation(u)
