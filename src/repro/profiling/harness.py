"""Profiling campaign: Step 1 of the methodology, end to end.

For every hardware model the campaign measures what the paper measures on
real machines (Table I):

1. **idle power** — wattmeter average over an idle window;
2. **maximum performance** — Siege concurrency ramp, 30 s runs, average of
   5 repetitions at the best concurrency;
3. **max power** — wattmeter average while the server runs at the
   saturating concurrency;
4. **On/Off overheads** — trigger the transition, watch the wattmeter
   settle against the idle (resp. zero) baseline, report duration and
   integrated energy.

The output is a list of :class:`~repro.core.profiles.ArchitectureProfile`
ready for Step 2 (:func:`repro.core.bml.design`).  With the default mild
sensor noise the campaign lands within a fraction of a percent of
Table I; ``noise free`` wattmeters reproduce it exactly.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.profiles import ArchitectureProfile
from .hardware import HardwareModel
from .siege import RampResult, SiegeEmulator
from .wattmeter import Wattmeter
from .webserver import SimulatedWebServer

__all__ = ["ProfilingCampaign", "MachineReport"]


@dataclass(frozen=True)
class MachineReport:
    """Everything the campaign measured on one machine."""

    profile: ArchitectureProfile
    ramp: RampResult
    idle_window_s: float
    load_window_s: float

    def as_table_row(self) -> Dict[str, float]:
        """A Table-I-shaped row."""
        p = self.profile
        return {
            "architecture": p.name,
            "max_perf_reqs": p.max_perf,
            "idle_power_w": p.idle_power,
            "max_power_w": p.max_power,
            "on_time_s": p.on_time,
            "on_energy_j": p.on_energy,
            "off_time_s": p.off_time,
            "off_energy_j": p.off_energy,
        }


@dataclass
class ProfilingCampaign:
    """Runs Step 1 against a set of hardware models.

    ``wattmeter_noise`` (W) and ``wattmeter_resolution`` (W) emulate the
    sensor; the default 0.05 W noise with 0.1 W quantisation matches a
    WattsUp?Pro-class meter closely enough for the published numbers to be
    recovered within a fraction of a percent.
    """

    siege: SiegeEmulator = field(default_factory=SiegeEmulator)
    idle_window_s: float = 60.0
    load_window_s: float = 30.0
    wattmeter_noise: float = 0.05
    wattmeter_resolution: float = 0.0
    seed: int = 0

    def _meter(self, offset: int) -> Wattmeter:
        return Wattmeter(
            sample_interval=1.0,
            noise_sigma=self.wattmeter_noise,
            resolution=self.wattmeter_resolution,
            seed=self.seed + offset,
        )

    @staticmethod
    def _machine_offset(name: str) -> int:
        """Stable per-machine RNG offset (``hash()`` is randomised)."""
        return zlib.crc32(name.encode()) % 100_003

    def profile_machine(
        self, hardware: HardwareModel, server: Optional[SimulatedWebServer] = None
    ) -> MachineReport:
        """Measure one machine and return its profile + raw measurements."""
        server = server or SimulatedWebServer(hardware)
        meter = self._meter(self._machine_offset(hardware.name))

        idle_power = meter.measure_average(
            lambda t: hardware.power_at_utilisation(0.0), self.idle_window_s
        )

        ramp = self.siege.ramp(server)
        max_perf = ramp.max_rate

        # Power at saturation: utilisation is 1 at the best concurrency.
        sat_util = min(
            max_perf * server.mean_service_time / hardware.cores, 1.0
        )
        max_power = meter.measure_average(
            lambda t: hardware.power_at_utilisation(sat_util), self.load_window_s
        )

        # The machine settles at idle power once booted; the transient
        # detector watches for that baseline and integrates what precedes.
        def boot_then_idle(t: float) -> float:
            return (
                hardware.boot_power_curve(t)
                if t < hardware.on_time
                else hardware.power_at_utilisation(0.0)
            )

        on_time, on_energy = meter.measure_transient(
            boot_then_idle,
            max_duration=hardware.on_time * 2 + 30.0,
            settle_level=hardware.idle_power,
        )

        def shutdown_then_off(t: float) -> float:
            return hardware.shutdown_power() if t < hardware.off_time else 0.0

        off_time, off_energy = meter.measure_transient(
            shutdown_then_off,
            max_duration=hardware.off_time * 2 + 30.0,
            settle_level=0.0,
        )

        profile = ArchitectureProfile(
            name=hardware.name,
            max_perf=max_perf,
            idle_power=idle_power,
            max_power=max(max_power, idle_power),
            on_time=on_time,
            on_energy=on_energy,
            off_time=off_time,
            off_energy=off_energy,
        )
        return MachineReport(
            profile=profile,
            ramp=ramp,
            idle_window_s=self.idle_window_s,
            load_window_s=self.load_window_s,
        )

    def run(
        self, machines: Sequence[HardwareModel]
    ) -> List[MachineReport]:
        """Profile every machine; order follows the input."""
        return [self.profile_machine(hw) for hw in machines]

    def profiles(
        self, machines: Sequence[HardwareModel]
    ) -> List[ArchitectureProfile]:
        """Convenience: just the architecture profiles."""
        return [r.profile for r in self.run(machines)]
