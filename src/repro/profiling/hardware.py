"""Parametric hardware models standing in for the paper's test machines.

The paper profiles five physical machines (two Grid'5000 x86 servers
monitored through Kwapi, plus a Samsung Chromebook and a Raspberry Pi 2
monitored with a WattsUp?Pro wattmeter).  Offline we model each machine as
a :class:`HardwareModel`: cores x per-core work rate for performance, a
linear utilisation->power law for electricity, and boot/shutdown ramps
carrying the measured On/Off overheads.

``PAPER_HARDWARE`` is calibrated so that a full profiling campaign
(:mod:`repro.profiling.harness`) reproduces Table I: the per-core work
rates are set from the published ``maxPerf`` and the mean request cost of
the paper's CGI workload (uniform 1000..2000 loop iterations -> 1500
work units per request).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.profiles import TABLE_I, ArchitectureProfile

__all__ = ["HardwareModel", "PAPER_HARDWARE", "paper_hardware"]

#: Mean work units per request of the paper's CGI script: loop iterations
#: drawn uniformly from [1000, 2000].
MEAN_REQUEST_WORK = 1500.0


@dataclass(frozen=True)
class HardwareModel:
    """A machine the profiling harness can benchmark.

    Parameters
    ----------
    name / cores:
        Identity and core count (Table I lists them: Paravance 2x8,
        Taurus 2x6, Graphene 1x4, Chromebook 1x2, Raspberry 1x4).
    core_work_rate:
        Loop-iteration throughput of one core in work units/s, including
        the whole web-server software stack.
    idle_power / max_power:
        Electrical draw at 0 % and 100 % utilisation (W); in between the
        model is linear in utilisation, matching the paper's assumption.
    on_time / on_energy / off_time / off_energy:
        Switching overheads (s, J) — the quantity Table I reports.
    """

    name: str
    cores: int
    core_work_rate: float
    idle_power: float
    max_power: float
    on_time: float
    on_energy: float
    off_time: float
    off_energy: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"{self.name}: cores must be >= 1")
        if self.core_work_rate <= 0:
            raise ValueError(f"{self.name}: core_work_rate must be > 0")
        if not 0 <= self.idle_power <= self.max_power:
            raise ValueError(f"{self.name}: need 0 <= idle <= max power")

    # -- performance ------------------------------------------------------
    @property
    def work_capacity(self) -> float:
        """Total work units/s across all cores."""
        return self.cores * self.core_work_rate

    def request_capacity(self, mean_work: float = MEAN_REQUEST_WORK) -> float:
        """Sustainable requests/s for a workload of ``mean_work`` units."""
        return self.work_capacity / mean_work

    def service_time(self, work: float) -> float:
        """Seconds one core needs for a request of ``work`` units."""
        return work / self.core_work_rate

    # -- power ---------------------------------------------------------------
    def power_at_utilisation(self, u: float) -> float:
        """Draw at CPU utilisation ``u`` in [0, 1] (linear law)."""
        if not -1e-9 <= u <= 1 + 1e-9:
            raise ValueError(f"utilisation {u} outside [0, 1]")
        u = min(max(u, 0.0), 1.0)
        return self.idle_power + (self.max_power - self.idle_power) * u

    def boot_power_curve(self, t: float) -> float:
        """Instantaneous draw ``t`` seconds into the boot.

        A spin-up spike at 1.2x the average boot power over the first
        third, then 0.9x for the remainder — the curve integrates to
        exactly ``on_energy`` over ``on_time`` (the harness relies on the
        integral and the duration, not the shape).
        """
        if t < 0 or t > self.on_time or self.on_time <= 0:
            return 0.0
        avg = self.on_energy / self.on_time
        return avg * (1.2 if t < self.on_time / 3.0 else 0.9)

    def shutdown_power(self) -> float:
        """Average draw while shutting down."""
        return self.off_energy / self.off_time if self.off_time > 0 else 0.0

    # -- conversion ---------------------------------------------------------
    def true_profile(self) -> ArchitectureProfile:
        """The architecture profile a noise-free campaign would measure."""
        return ArchitectureProfile(
            name=self.name,
            max_perf=self.request_capacity(),
            idle_power=self.idle_power,
            max_power=self.max_power,
            on_time=self.on_time,
            on_energy=self.on_energy,
            off_time=self.off_time,
            off_energy=self.off_energy,
        )


def _from_table(name: str, cores: int) -> HardwareModel:
    prof = TABLE_I[name]
    return HardwareModel(
        name=name,
        cores=cores,
        core_work_rate=prof.max_perf * MEAN_REQUEST_WORK / cores,
        idle_power=prof.idle_power,
        max_power=prof.max_power,
        on_time=prof.on_time,
        on_energy=prof.on_energy,
        off_time=prof.off_time,
        off_energy=prof.off_energy,
    )


#: The five machines of the paper's testbed, calibrated to Table I.
PAPER_HARDWARE: Dict[str, HardwareModel] = {
    "paravance": _from_table("paravance", 16),  # 2x8-core Xeon E5-2630v3
    "taurus": _from_table("taurus", 12),        # 2x6-core Xeon E5-2630
    "graphene": _from_table("graphene", 4),     # 1x4-core Xeon X3440
    "chromebook": _from_table("chromebook", 2), # ARM Cortex-A15
    "raspberry": _from_table("raspberry", 4),   # ARM Cortex-A7
}


def paper_hardware() -> List[HardwareModel]:
    """The testbed machines in the paper's presentation order."""
    return [
        PAPER_HARDWARE[k]
        for k in ("paravance", "taurus", "graphene", "chromebook", "raspberry")
    ]
