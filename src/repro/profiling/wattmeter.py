"""Wattmeter emulation (WattsUp?Pro / Kwapi stand-in).

The paper measures the Chromebook and Raspberry with a WattsUp?Pro (1 Hz
samples) and reads Grid'5000 servers through Kwapi.  The emulation samples
an arbitrary ``power(t)`` callable at a fixed rate, with optional gaussian
sensor noise and quantisation, and offers the two derived measurements the
profiling campaign needs: average power over a window and energy of a
transient (boot/shutdown) detected against an idle baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = ["Wattmeter", "PowerTrace"]


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power series (W at ``1/interval`` Hz)."""

    samples: np.ndarray
    interval: float

    @property
    def mean_power(self) -> float:
        return float(np.mean(self.samples)) if self.samples.size else 0.0

    @property
    def energy(self) -> float:
        """Left-Riemann integral in Joules."""
        return float(np.sum(self.samples) * self.interval)

    @property
    def duration(self) -> float:
        return len(self.samples) * self.interval


@dataclass
class Wattmeter:
    """Samples a power function like a physical meter would.

    ``noise_sigma`` is the absolute gaussian sensor noise per sample (W);
    ``resolution`` quantises readings (WattsUp?Pro reports 0.1 W steps).
    """

    sample_interval: float = 1.0
    noise_sigma: float = 0.0
    resolution: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be > 0")
        if self.noise_sigma < 0 or self.resolution < 0:
            raise ValueError("noise_sigma and resolution must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    def record(
        self, power_fn: Callable[[float], float], duration: float
    ) -> PowerTrace:
        """Sample ``power_fn`` over ``[0, duration)``."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        n = max(1, int(round(duration / self.sample_interval)))
        times = np.arange(n) * self.sample_interval
        vals = np.array([max(power_fn(float(t)), 0.0) for t in times])
        if self.noise_sigma > 0:
            vals = np.maximum(vals + self._rng.normal(0, self.noise_sigma, n), 0.0)
        if self.resolution > 0:
            vals = np.round(vals / self.resolution) * self.resolution
        return PowerTrace(samples=vals, interval=self.sample_interval)

    def measure_average(
        self, power_fn: Callable[[float], float], duration: float
    ) -> float:
        """Average power over a measurement window (W)."""
        return self.record(power_fn, duration).mean_power

    def measure_transient(
        self,
        power_fn: Callable[[float], float],
        max_duration: float,
        settle_level: float,
        settle_tolerance: float = 0.05,
    ) -> Tuple[float, float]:
        """Duration (s) and energy (J) of a transient such as a boot.

        Records until ``max_duration`` and takes the transient to end right
        after the **last** reading outside ``settle_tolerance`` (relative,
        floored at 0.2 W) of the expected ``settle_level`` — robust even
        when parts of the transient happen to draw baseline-like power
        (e.g. a Raspberry Pi boots *below* its idle power).  Mirrors how
        On/Off costs are measured on real machines: trigger the action,
        watch the wattmeter, integrate what precedes the settled tail.
        """
        trace = self.record(power_fn, max_duration)
        tol = max(abs(settle_level) * settle_tolerance, 0.2)
        outside = np.flatnonzero(np.abs(trace.samples - settle_level) > tol)
        end_idx = int(outside[-1]) + 1 if outside.size else 0
        duration = end_idx * trace.interval
        energy = float(np.sum(trace.samples[:end_idx]) * trace.interval)
        return duration, energy
