"""Declarative scenario specifications.

A scenario — "replay *this workload* on *this infrastructure* under *this
policy* and account energy/QoS" — used to be hand-wired in parallel
across :mod:`repro.experiments`, the CLI, the example scripts and the
figure benchmarks.  This module turns it into data: three frozen
dataclasses describe the workload, the scheduling policy and the overall
scenario, all JSON-round-trippable through ``to_dict``/``from_dict`` so
the CLI and saved configuration files speak the same language as the
library.

* :class:`WorkloadSpec` — where the load trace comes from (the synthetic
  World Cup, composable synthetic patterns, a WC98-format archive, or a
  CSV/NPZ file) and how long it runs.  The ``days`` field is first-class;
  the ``REPRO_FIG5_DAYS`` environment variable merely overrides it for
  shrunken iteration runs.
* :class:`SchedulerSpec` — the planning policy (the paper's pro-active
  BML scheduler, the transition-aware variant, the two homogeneous upper
  bounds, or the theoretical lower bound), its predictor, and optional
  node constraints (bounded inventory or instance bounds).
* :class:`ScenarioSpec` — profiles source, optional RAPL-style power cap,
  workload, scheduler and replay engine, plus registry metadata.

Specs are *descriptions*: building traces, predictors and infrastructures
happens in :mod:`repro.scenarios.runner`, which routes every table
construction through the :meth:`repro.core.bml.BMLInfrastructure.table`
cache.
"""

from __future__ import annotations

import os
from dataclasses import MISSING, dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..core.prediction import (
    EWMAPredictor,
    LookAheadMaxPredictor,
    NoisyPredictor,
    PerfectPredictor,
    Predictor,
    TrailingMaxPredictor,
)
from ..core.profiles import (
    ArchitectureProfile,
    illustrative_profiles,
    table_i_profiles,
)
from ..sim.application import ApplicationSpec
from ..sim.powercap import capped_profile
from ..workload import patterns
from ..workload.trace import SECONDS_PER_DAY, LoadTrace
from ..workload.worldcup import PAPER_DAYS, synthesize

__all__ = [
    "FIG5_DAYS_ENV",
    "WorkloadSpec",
    "SchedulerSpec",
    "ScenarioSpec",
    "ScenarioError",
]

#: Environment shortcut shrinking every day-parameterised workload; the
#: spec's ``days`` field is the source of truth, the env var an override.
FIG5_DAYS_ENV = "REPRO_FIG5_DAYS"

WORKLOAD_SOURCES = ("worldcup", "pattern", "wc98", "csv", "npz")
PATTERNS = ("diurnal", "flashcrowd", "steady")
POLICIES = (
    "bml",
    "transition-aware",
    "upper-global",
    "upper-per-day",
    "lower-bound",
)
PREDICTORS = ("lookahead-max", "perfect", "trailing-max", "ewma")
ENGINES = (
    "fast",
    "event",
    "event-twophase",
    "event-segments",
    "event-reference",
)
PROFILE_SOURCES = ("table1", "illustrative")


class ScenarioError(ValueError):
    """Raised for malformed scenario specifications."""


def _freeze(mapping: Optional[Mapping]) -> Optional[Tuple[Tuple[str, object], ...]]:
    """Mapping/items -> key-sorted item tuple.

    Canonical (sorted) order keeps frozen specs hashable *and* makes
    semantically equal inputs compare equal regardless of how the caller
    ordered them — the ``from_dict(to_dict(spec)) == spec`` guarantee
    depends on both branches normalising identically.
    """
    if mapping is None:
        return None
    items = mapping if isinstance(mapping, tuple) else mapping.items()
    return tuple(sorted(((str(k), v) for k, v in items), key=lambda kv: kv[0]))


def _nondefault_dict(obj) -> Dict[str, object]:
    """Every dataclass field whose value differs from its default.

    Emitting only the overrides keeps ``to_dict`` output minimal while
    guaranteeing that ``from_dict(to_dict(spec)) == spec`` for any spec
    (omitted keys fall back to the very defaults they equalled).
    """
    out: Dict[str, object] = {}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if f.default is not MISSING and value == f.default:
            continue
        if f.default_factory is not MISSING and value == f.default_factory():
            continue
        out[f.name] = value
    return out


@dataclass(frozen=True)
class WorkloadSpec:
    """Where the load trace comes from and how long it runs.

    ``source``:

    * ``"worldcup"`` — the synthetic WC98-shaped workload (the paper's
      evaluation trace, days 6..92);
    * ``"pattern"`` — composable synthetic patterns (``pattern`` selects
      ``"diurnal"``, ``"flashcrowd"`` or ``"steady"``);
    * ``"wc98"`` — daily log files in the original archive record format
      (``path`` may contain ``*`` globs);
    * ``"csv"`` / ``"npz"`` — a trace previously written by
      :meth:`repro.workload.trace.LoadTrace.to_csv` / ``to_npz``.

    ``params`` carries source-specific keyword overrides as a frozen item
    tuple (e.g. ``(("base_rate", 700.0),)`` for the World Cup
    synthesiser); ``to_dict`` renders it as a plain mapping.
    """

    source: str = "worldcup"
    days: int = PAPER_DAYS
    seed: int = 1998
    peak_rate: float = 5000.0
    pattern: str = "diurnal"
    path: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()
    #: True when ``days`` came from an explicit caller choice (CLI
    #: ``--days``, :meth:`ScenarioSpec.with_days`) rather than a spec
    #: default — explicit day counts beat the ``REPRO_FIG5_DAYS`` env var.
    pin_days: bool = False

    def __post_init__(self) -> None:
        if self.source not in WORKLOAD_SOURCES:
            raise ScenarioError(
                f"unknown workload source {self.source!r} "
                f"(expected one of {WORKLOAD_SOURCES})"
            )
        if self.source == "pattern" and self.pattern not in PATTERNS:
            raise ScenarioError(
                f"unknown pattern {self.pattern!r} (expected one of {PATTERNS})"
            )
        if self.days < 1:
            raise ScenarioError("days must be >= 1")
        if self.peak_rate <= 0:
            raise ScenarioError("peak_rate must be > 0")
        if self.source in ("wc98", "csv", "npz") and not self.path:
            raise ScenarioError(f"source {self.source!r} requires a path")
        object.__setattr__(self, "params", _freeze(self.params) or ())

    def is_available(self) -> bool:
        """Whether this workload's external inputs exist right now.

        Synthetic sources are always available; file-backed sources
        (``wc98``/``csv``/``npz``) require their ``path`` (or at least one
        glob match) to exist.  Catalogue sweeps — the scenario-suite
        benchmark, ``repro scenario run --all``, golden pinning — use
        this to skip archive-backed scenarios on machines that do not
        hold the data, instead of crashing the whole sweep.
        """
        if self.source not in ("wc98", "csv", "npz"):
            return True
        if any(ch in self.path for ch in "*?["):
            import glob

            return bool(glob.glob(self.path))
        return os.path.exists(self.path)

    def resolved_days(self) -> int:
        """``days``, unless ``REPRO_FIG5_DAYS`` overrides it.

        The env var only stands in for spec *defaults*; a ``pin_days``
        spec (explicit caller choice) keeps its day count.
        """
        env = os.environ.get(FIG5_DAYS_ENV)
        if self.pin_days:
            return self.days
        if env:
            days = int(env)
            if days < 1:
                raise ScenarioError(f"{FIG5_DAYS_ENV} must be >= 1, got {env}")
            return days
        return self.days

    # -- construction ----------------------------------------------------
    def build(self, days: Optional[int] = None) -> LoadTrace:
        """Materialise the trace this spec describes.

        ``days`` bypasses the env-var resolution entirely — callers with
        an *explicit* day count (e.g. ``run_fig5(n_days=...)``) must not
        be silently overridden by ``REPRO_FIG5_DAYS``, which only stands
        in for the spec's own ``days`` field.
        """
        days = self.resolved_days() if days is None else days
        if self.source == "worldcup":
            return synthesize(
                n_days=days,
                seed=self.seed,
                peak_rate=self.peak_rate,
                **dict(self.params),
            )
        if self.source == "pattern":
            return self._build_pattern(days)
        if self.source == "wc98":
            import glob

            from ..workload.wc98format import read_trace

            paths = (
                sorted(glob.glob(self.path))
                if any(ch in self.path for ch in "*?[")
                else [self.path]
            )
            if not paths:
                raise ScenarioError(f"no wc98 logs match {self.path!r}")
            return read_trace(paths)
        if self.source == "csv":
            return LoadTrace.from_csv(self.path)
        return LoadTrace.from_npz(self.path)

    def _build_pattern(self, days: int) -> LoadTrace:
        duration = days * SECONDS_PER_DAY
        rng = np.random.default_rng(self.seed)
        p = dict(self.params)
        night = float(p.get("night_fraction", 0.15))
        name = f"pattern:{self.pattern}(days={days},seed={self.seed})"
        if self.pattern == "steady":
            base = patterns.constant(duration, 1.0)
            noise = patterns.ar1_noise(
                duration, rng, sigma=float(p.get("sigma", 0.05))
            )
            values = patterns.compose(base, [noise])
        else:
            base = patterns.diurnal(
                duration, low=night, high=1.0,
                peak_hour=float(p.get("peak_hour", 15.0)),
            )
            week = patterns.weekly(duration, 1.0, float(p.get("weekend", 0.9)))
            noise = patterns.ar1_noise(
                duration, rng, sigma=float(p.get("sigma", 0.05))
            )
            values = patterns.compose(base, [week, noise])
            if self.pattern == "flashcrowd":
                per_day = int(p.get("crowds_per_day", 2))
                events = [
                    (
                        d * SECONDS_PER_DAY + float(rng.uniform(8, 22)) * 3600.0,
                        float(rng.uniform(1.0, 3.0)),
                    )
                    for d in range(days)
                    for _ in range(per_day)
                ]
                values = values + patterns.bursts(
                    duration, events,
                    ramp_s=float(p.get("ramp_s", 600.0)),
                    hold_s=float(p.get("hold_s", 1800.0)),
                    decay_s=float(p.get("decay_s", 1200.0)),
                )
        trace = patterns.make_trace(values, name)
        return trace.scaled_to_peak(self.peak_rate)

    # -- round trip ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = _nondefault_dict(self)
        if "params" in out:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        kwargs = dict(data)
        if "params" in kwargs:
            kwargs["params"] = _freeze(kwargs["params"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SchedulerSpec:
    """The planning policy and its knobs.

    ``policy`` selects the plan builder: the paper's pro-active scheduler
    (``"bml"``), the Sec. VI transition-aware variant, the two
    homogeneous upper bounds, or the per-second theoretical lower bound.
    Predictor settings only matter for the scheduling policies; node
    constraints (``inventory`` as per-architecture machine limits, or
    ``min_instances``/``max_instances`` bounds) only for ``"bml"``.
    """

    policy: str = "bml"
    method: str = "greedy"
    predictor: str = "lookahead-max"
    window: int = 378
    noise_sigma: float = 0.0
    noise_bias: float = 1.0
    noise_seed: int = 0
    alpha: float = 0.01
    headroom: float = 1.2
    inventory: Optional[Tuple[Tuple[str, int], ...]] = None
    min_instances: int = 1
    max_instances: Optional[int] = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ScenarioError(
                f"unknown policy {self.policy!r} (expected one of {POLICIES})"
            )
        if self.method not in ("greedy", "ideal"):
            raise ScenarioError(f"unknown method {self.method!r}")
        if self.predictor not in PREDICTORS:
            raise ScenarioError(
                f"unknown predictor {self.predictor!r} "
                f"(expected one of {PREDICTORS})"
            )
        if self.noise_sigma < 0:
            raise ScenarioError("noise_sigma must be >= 0")
        if self.inventory is not None and (
            self.min_instances > 1 or self.max_instances is not None
        ):
            raise ScenarioError(
                "inventory limits and instance bounds cannot be combined"
            )
        object.__setattr__(self, "inventory", _freeze(self.inventory))

    # -- construction ----------------------------------------------------
    def build_predictor(self) -> Predictor:
        base: Predictor
        if self.predictor == "lookahead-max":
            base = LookAheadMaxPredictor(self.window)
        elif self.predictor == "perfect":
            base = PerfectPredictor()
        elif self.predictor == "trailing-max":
            base = TrailingMaxPredictor(self.window)
        else:
            base = EWMAPredictor(alpha=self.alpha, headroom=self.headroom)
        if self.noise_sigma > 0 or self.noise_bias != 1.0:
            return NoisyPredictor(
                base=base,
                sigma=self.noise_sigma,
                bias=self.noise_bias,
                seed=self.noise_seed,
            )
        return base

    def inventory_dict(self) -> Optional[Dict[str, int]]:
        return None if self.inventory is None else dict(self.inventory)

    def build_app_spec(self) -> Optional[ApplicationSpec]:
        """Instance bounds as an :class:`ApplicationSpec` (or ``None``)."""
        if self.min_instances <= 1 and self.max_instances is None:
            return None
        return ApplicationSpec(
            min_instances=self.min_instances, max_instances=self.max_instances
        )

    # -- round trip ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = _nondefault_dict(self)
        out.setdefault("policy", self.policy)
        if "inventory" in out:
            out["inventory"] = dict(self.inventory)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SchedulerSpec":
        kwargs = dict(data)
        if "inventory" in kwargs and kwargs["inventory"] is not None:
            kwargs["inventory"] = _freeze(kwargs["inventory"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, runnable scenario.

    ``label`` is the scenario string stamped on the produced
    :class:`~repro.sim.results.SimulationResult` (the paper's four Fig. 5
    scenarios keep their published names); it defaults to ``name``.
    ``powercap`` applies a RAPL-style cap to every profile, expressed as
    the capped fraction of each machine's dynamic range in ``(0, 1]``
    (``cap = idle + powercap * (max - idle)``, see
    :mod:`repro.sim.powercap`).  ``engine`` selects the replay
    implementation: the vectorised plan executor (``"fast"``), the
    event-driven simulator (``"event"``, currently the two-phase
    control/evaluate engine), or one of its explicit variants — the
    batched two-phase engine (``"event-twophase"``), the per-segment
    engine (``"event-segments"``) or the per-second reference loop
    (``"event-reference"``).
    """

    name: str
    label: Optional[str] = None
    description: str = ""
    profiles: str = "table1"
    powercap: Optional[float] = None
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    engine: str = "fast"
    tags: Tuple[str, ...] = ()
    #: Sweep provenance: the grid coordinates this spec was minted at,
    #: as ``(axis, value)`` pairs of JSON scalars (see
    #: :mod:`repro.scenarios.sweep`).  Reports facet on these.
    axes: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        frozen_axes = _freeze(self.axes) or ()
        for axis, value in frozen_axes:
            if value is not None and not isinstance(value, (str, int, float, bool)):
                raise ScenarioError(
                    f"axis {axis!r} value {value!r} is not a JSON scalar "
                    "(sweep axes must round-trip through to_dict)"
                )
        object.__setattr__(self, "axes", frozen_axes)
        if self.profiles not in PROFILE_SOURCES:
            raise ScenarioError(
                f"unknown profile source {self.profiles!r} "
                f"(expected one of {PROFILE_SOURCES})"
            )
        if self.engine not in ENGINES:
            raise ScenarioError(
                f"unknown engine {self.engine!r} (expected one of {ENGINES})"
            )
        if self.powercap is not None and not 0 < self.powercap <= 1:
            raise ScenarioError("powercap must be a fraction in (0, 1]")
        if self.engine != "fast" and self.scheduler.policy not in (
            "bml", "transition-aware"
        ):
            raise ScenarioError(
                f"engine {self.engine!r} requires a scheduling policy, "
                f"not {self.scheduler.policy!r}"
            )
        object.__setattr__(self, "tags", tuple(self.tags))

    @property
    def scenario_label(self) -> str:
        return self.label if self.label else self.name

    def build_profiles(self) -> Tuple[ArchitectureProfile, ...]:
        """The (possibly power-capped) Step 1 profiles of this scenario."""
        profs = (
            table_i_profiles()
            if self.profiles == "table1"
            else illustrative_profiles()
        )
        if self.powercap is None:
            return tuple(profs)
        return tuple(
            capped_profile(
                p, p.idle_power + self.powercap * (p.max_power - p.idle_power)
            )
            for p in profs
        )

    def with_days(self, days: int) -> "ScenarioSpec":
        """Copy of this spec with the workload pinned to ``days``.

        The day count is *pinned*: an explicit caller choice is not
        subject to the ``REPRO_FIG5_DAYS`` spec-default override.
        """
        return replace(
            self, workload=replace(self.workload, days=days, pin_days=True)
        )

    # -- round trip ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = _nondefault_dict(self)
        out["name"] = self.name
        out["workload"] = self.workload.to_dict()
        out["scheduler"] = self.scheduler.to_dict()
        if "tags" in out:
            out["tags"] = list(self.tags)
        if "axes" in out:
            out["axes"] = dict(self.axes)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        kwargs = dict(data)
        if "workload" in kwargs:
            kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
        if "scheduler" in kwargs:
            kwargs["scheduler"] = SchedulerSpec.from_dict(kwargs["scheduler"])
        if "tags" in kwargs:
            kwargs["tags"] = tuple(kwargs["tags"])
        if "axes" in kwargs:
            kwargs["axes"] = _freeze(kwargs["axes"])
        return cls(**kwargs)

    def spec_key(self) -> str:
        """Canonical string identity of this spec.

        The sorted, whitespace-free JSON encoding of :meth:`to_dict` —
        stable across processes and save/load cycles (``to_dict`` only
        emits non-default fields, so adding spec fields later does not
        change the keys of old specs).  ``run_suite(..., resume=True)``
        uses it to match suite specs against stored
        :class:`~repro.results.record.ScenarioResult` records.
        """
        import json

        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
