"""Named scenario registry.

The paper's evaluation is a fixed four-scenario comparison (Fig. 5); the
registry makes those four first-class *and* extensible: every entry is a
:class:`~repro.scenarios.spec.ScenarioSpec` reachable by name from the
CLI (``repro scenario list|show|run``), the experiments module, examples
and benchmarks.  ``register`` accepts new scenarios at runtime (plugins,
notebooks, tests).

The seeded catalogue covers the paper's comparison plus the extension
axes the reproduction exposes: node-constrained services, bounded
inventories, RAPL-style power caps, degraded predictors, synthetic
pattern workloads, homogeneous baselines and the event-driven engine.
Non-paper scenarios default to week-or-shorter workloads so the whole
catalogue stays cheap to sweep (``repro scenario run --all``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import ScenarioError, ScenarioSpec, SchedulerSpec, WorkloadSpec
from .sweep import SweepSpec

__all__ = [
    "PAPER_SCENARIOS",
    "WC98_ARCHIVE_GLOB",
    "register",
    "get",
    "names",
    "specs",
    "by_tag",
    "register_sweep",
    "get_sweep",
    "sweep_names",
    "sweeps",
]

#: The four Fig. 5 scenarios, in the paper's presentation order.
PAPER_SCENARIOS: Tuple[str, ...] = (
    "paper-upper-global",
    "paper-upper-perday",
    "paper-bml",
    "paper-lower-bound",
)

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ScenarioError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(f"unknown scenario {name!r} (known: {known})") from None


def names() -> List[str]:
    """All registered scenario names (registration order)."""
    return list(_REGISTRY)


def specs() -> List[ScenarioSpec]:
    """All registered scenarios (registration order)."""
    return list(_REGISTRY.values())


def by_tag(tag: str) -> List[ScenarioSpec]:
    """Scenarios carrying ``tag``."""
    return [s for s in _REGISTRY.values() if tag in s.tags]


# ---------------------------------------------------------------------------
# Sweep registry
# ---------------------------------------------------------------------------

_SWEEPS: Dict[str, SweepSpec] = {}


def register_sweep(sweep: SweepSpec, replace: bool = False) -> SweepSpec:
    """Add a sweep to the registry (``replace=True`` to overwrite)."""
    if not replace and sweep.name in _SWEEPS:
        raise ScenarioError(f"sweep {sweep.name!r} is already registered")
    _SWEEPS[sweep.name] = sweep
    return sweep


def get_sweep(name: str) -> SweepSpec:
    """Look a sweep up by name."""
    try:
        return _SWEEPS[name]
    except KeyError:
        known = ", ".join(sorted(_SWEEPS))
        raise ScenarioError(f"unknown sweep {name!r} (known: {known})") from None


def sweep_names() -> List[str]:
    """All registered sweep names (registration order)."""
    return list(_SWEEPS)


def sweeps() -> List[SweepSpec]:
    """All registered sweeps (registration order)."""
    return list(_SWEEPS.values())


# ---------------------------------------------------------------------------
# Seeded catalogue
# ---------------------------------------------------------------------------

_PAPER_WORKLOAD = WorkloadSpec()  # synthetic WC98, days 6..92, peak 5000
_WEEK = WorkloadSpec(days=7, seed=7, peak_rate=4000.0)
_TWO_DAYS = WorkloadSpec(days=2, seed=11, peak_rate=3000.0)

# -- the paper's four Fig. 5 scenarios --------------------------------------
register(ScenarioSpec(
    name="paper-upper-global",
    label="UpperBound Global",
    description="4 Big machines sized for the global peak, always On "
                "(the classical over-provisioned data center).",
    workload=_PAPER_WORKLOAD,
    scheduler=SchedulerSpec(policy="upper-global"),
    tags=("paper", "fig5", "baseline"),
))
register(ScenarioSpec(
    name="paper-upper-perday",
    label="UpperBound PerDay",
    description="Homogeneous Big servers re-dimensioned each midnight "
                "(coarse-grain capacity planning).",
    workload=_PAPER_WORKLOAD,
    scheduler=SchedulerSpec(policy="upper-per-day"),
    tags=("paper", "fig5", "baseline"),
))
register(ScenarioSpec(
    name="paper-bml",
    label="Big-Medium-Little",
    description="The pro-active BML scheduler with the paper's 378 s "
                "look-ahead-max prediction and greedy Step 5 combinations.",
    workload=_PAPER_WORKLOAD,
    scheduler=SchedulerSpec(policy="bml"),
    tags=("paper", "fig5"),
))
register(ScenarioSpec(
    name="paper-lower-bound",
    label="LowerBound Theoretical",
    description="Per-second ideal combination with free, instantaneous "
                "switching — the unreachable energy floor.",
    workload=_PAPER_WORKLOAD,
    scheduler=SchedulerSpec(policy="lower-bound"),
    tags=("paper", "fig5", "baseline"),
))

# -- constrained services ----------------------------------------------------
register(ScenarioSpec(
    name="constrained-redundant",
    description="Redundant service: at least 2 and at most 6 instances "
                "(Sec. III node bounds, combinations via the bounded DP).",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(policy="bml", min_instances=2, max_instances=6),
    tags=("constrained",),
))

# -- inventory ablations -----------------------------------------------------
register(ScenarioSpec(
    name="inventory-small-dc",
    description="Existing data center owning 2 Big, 20 Medium and 10 "
                "Little machines; shortfalls surface as unserved demand.",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(
        policy="bml",
        inventory=(("chromebook", 20), ("paravance", 2), ("raspberry", 10)),
    ),
    tags=("inventory",),
))
register(ScenarioSpec(
    name="inventory-no-medium",
    description="Inventory ablation: no Medium tier — Bigs and Littles "
                "only (how much does the middle class buy?).",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(
        policy="bml",
        inventory=(("chromebook", 0), ("paravance", 6), ("raspberry", 600)),
    ),
    tags=("inventory", "ablation"),
))

# -- power capping -----------------------------------------------------------
register(ScenarioSpec(
    name="power-capped",
    description="RAPL-style cap at 70% of every machine's dynamic range: "
                "capping flattens peaks but cannot touch the idle floor "
                "(Sec. II counterpoint).",
    powercap=0.7,
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(policy="bml"),
    tags=("powercap",),
))

# -- prediction error --------------------------------------------------------
register(ScenarioSpec(
    name="noisy-prediction",
    description="Look-ahead oracle degraded with 15% log-normal error "
                "(Sec. VI future-work study).",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(policy="bml", noise_sigma=0.15, noise_seed=1),
    tags=("prediction-error",),
))
register(ScenarioSpec(
    name="underestimating-prediction",
    description="Biased predictor at 85% of the true peak: "
                "under-provisioning shows up as unserved demand.",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(
        policy="bml", noise_sigma=0.10, noise_bias=0.85, noise_seed=1
    ),
    tags=("prediction-error",),
))
register(ScenarioSpec(
    name="reactive-trailing",
    description="No oracle: trailing-max over the past 378 s (what a real "
                "deployment can compute; lags every rising edge).",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(policy="bml", predictor="trailing-max"),
    tags=("prediction-error",),
))

# -- pattern workloads -------------------------------------------------------
register(ScenarioSpec(
    name="pattern-flashcrowd",
    description="Synthetic diurnal workload with random flash crowds "
                "(2/day) under the BML scheduler.",
    workload=WorkloadSpec(
        source="pattern", pattern="flashcrowd", days=2, seed=5,
        peak_rate=3500.0,
    ),
    scheduler=SchedulerSpec(policy="bml"),
    tags=("pattern",),
))
register(ScenarioSpec(
    name="pattern-steady",
    description="Near-constant load: the regime where heterogeneity buys "
                "the least (BML should track one steady combination).",
    workload=WorkloadSpec(
        source="pattern", pattern="steady", days=1, seed=5, peak_rate=2000.0,
    ),
    scheduler=SchedulerSpec(policy="bml"),
    tags=("pattern",),
))

# -- homogeneous baselines ---------------------------------------------------
register(ScenarioSpec(
    name="homogeneous-week-global",
    description="Homogeneous baseline on a week: Bigs sized for the "
                "weekly peak, always On.",
    workload=_WEEK,
    scheduler=SchedulerSpec(policy="upper-global"),
    tags=("baseline", "homogeneous"),
))
register(ScenarioSpec(
    name="homogeneous-week-perday",
    description="Homogeneous baseline on a week: Bigs re-dimensioned "
                "each midnight.",
    workload=_WEEK,
    scheduler=SchedulerSpec(policy="upper-per-day"),
    tags=("baseline", "homogeneous"),
))

# -- WC98 archive-file workloads ---------------------------------------------
# The paper replays days 6..92 of the original World Cup 1998 trace; the
# archive distributes it as gzipped binary daily logs
# (:mod:`repro.workload.wc98format`).  These entries replay whatever logs
# are dropped under ``data/wc98/`` — relative to the working directory —
# so the catalogue is ready the moment someone obtains the archive.
# ``WorkloadSpec.is_available()`` reports whether the files are present;
# sweeps (the scenario-suite benchmark, ``repro scenario run --all``,
# golden pinning) skip them when they are not.  The end-to-end path is
# tested by writing synthetic logs through ``wc98format.write_records``
# and replaying them (``tests/test_scenarios.py``).
WC98_ARCHIVE_GLOB = "data/wc98/*.log.gz"

register(ScenarioSpec(
    name="wc98-archive-bml",
    description="The BML pro-active scheduler over original WC98 archive "
                "logs (drop the gzipped binary dailies in data/wc98/).",
    workload=WorkloadSpec(source="wc98", path=WC98_ARCHIVE_GLOB, days=87),
    scheduler=SchedulerSpec(policy="bml"),
    tags=("wc98", "archive"),
))
register(ScenarioSpec(
    name="wc98-archive-upper",
    description="UpperBound Global baseline over the same WC98 archive "
                "logs, for savings comparisons against wc98-archive-bml.",
    workload=WorkloadSpec(source="wc98", path=WC98_ARCHIVE_GLOB, days=87),
    scheduler=SchedulerSpec(policy="upper-global"),
    tags=("wc98", "archive", "baseline"),
))

# -- method / engine variants ------------------------------------------------
register(ScenarioSpec(
    name="ideal-dp-combinations",
    description="The BML scheduler sized with exact-DP optimal "
                "combinations instead of the paper's greedy Step 5.",
    workload=_TWO_DAYS,
    scheduler=SchedulerSpec(policy="bml", method="ideal"),
    tags=("ablation",),
))
register(ScenarioSpec(
    name="transition-aware-week",
    description="The Sec. VI transition-aware policy amortising switch "
                "overheads over the prediction horizon.",
    workload=_WEEK,
    scheduler=SchedulerSpec(policy="transition-aware"),
    tags=("policy",),
))
register(ScenarioSpec(
    name="event-engine-day",
    description="One day replayed through the event-driven machine-level "
                "simulator (segment-compressed engine) instead of the "
                "vectorised plan executor.",
    workload=WorkloadSpec(days=1, seed=13, peak_rate=2500.0),
    scheduler=SchedulerSpec(policy="bml"),
    engine="event",
    tags=("engine",),
))

# ---------------------------------------------------------------------------
# Seeded sweeps
# ---------------------------------------------------------------------------
# Parametric grids over the catalogue (:mod:`repro.scenarios.sweep`):
# ``repro sweep list|show|expand|run``.  Registered sweeps are
# *declarations* — nothing is expanded or built at import time, so even
# a thousand-point grid costs nothing to carry here.

register_sweep(SweepSpec(
    name="grid-smoke",
    description="2x2x2 day-long grid: the smallest sweep that exercises "
                "every layer (expansion, pool fan-out, shared-memory "
                "trace distribution) — the CI smoke grid.",
    base="paper-bml",
    axes=(
        ("policy", ("bml", "upper-global")),
        ("seed", (3, 5)),
        ("peak_rate", (2000.0, 3000.0)),
        ("days", (1,)),
    ),
    tags=("smoke",),
))

register_sweep(SweepSpec(
    name="fig5-grid",
    description="The paper's Fig. 5 comparison as a grid: all four "
                "policies crossed with trace seed and peak rate "
                "(scheduler x workload x max_rate), two days per point.",
    base="paper-bml",
    axes=(
        ("policy", (
            "upper-global", "upper-per-day", "bml", "lower-bound",
        )),
        ("seed", (1998, 7)),
        ("peak_rate", (2500.0, 5000.0, 7500.0)),
        ("days", (2,)),
    ),
    tags=("paper", "fig5"),
))

register_sweep(SweepSpec(
    name="fleet-grid",
    description="A 288-point fleet study over the BML scheduler: "
                "inventory x power cap x prediction error x trace seed "
                "x days x look-ahead window (the ISSUE's fleet-scale "
                "sweep shape).",
    base="paper-bml",
    axes=(
        ("inventory", (
            ("full", None),
            ("small-dc", {"chromebook": 20, "paravance": 2, "raspberry": 10}),
            ("no-medium", {"chromebook": 0, "paravance": 6, "raspberry": 600}),
        )),
        ("powercap", (None, 0.7)),
        ("noise_sigma", (0.0, 0.15)),
        ("seed", (7, 11, 13, 17)),
        ("days", (1, 2)),
        ("window", (189, 378, 756)),
    ),
    tags=("fleet",),
))
