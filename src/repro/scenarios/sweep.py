"""Parametric sweeps: scenario grids declared as data.

The paper's headline artefact is a *grid* — Fig. 5 sweeps scheduler x
workload x peak rate over the World Cup trace — and fleet-scale studies
multiply that by inventories, power caps and prediction error.  Hand-
registering hundreds of near-identical scenarios does not scale; a
:class:`SweepSpec` declares the axes once and **mints** the cross
product as deterministic, canonically named
:class:`~repro.scenarios.spec.ScenarioSpec` lists.

A sweep is a base scenario plus axes::

    SweepSpec(
        name="fig5-grid",
        base="paper-bml",
        axes=(
            ("policy", ("bml", "upper-global")),
            ("peak_rate", (2500.0, 5000.0)),
            ("days", (2,)),
        ),
    )

``expand()`` yields one spec per grid point, named
``fig5-grid+policy=bml+peak_rate=2500+days=2`` and so on — names are a
pure function of the declaration, so two hosts expanding the same sweep
mint byte-identical spec lists (the federated-store merge in
:mod:`repro.results.store` depends on that).  Every minted spec carries
its grid coordinates in ``ScenarioSpec.axes`` so suite reports can facet
by axis, plus the tags ``("sweep", "sweep:<name>")``.

Axis targets are resolved by field name: scheduler knobs (``policy``,
``window``, ``noise_sigma``, ...), workload knobs (``seed``,
``peak_rate``, ``days`` — day counts are *pinned*, immune to the
``REPRO_FIG5_DAYS`` override), and scenario knobs (``powercap``,
``profiles``, ``engine``).  Three axes take **labelled** values —
``(label, payload)`` pairs — because their payloads are mappings, not
scalars: ``inventory`` (per-architecture machine limits or ``None``),
``params`` (workload source overrides) and ``workload`` (a whole
``WorkloadSpec`` dict; field axes declared alongside still win).

Like :class:`ScenarioSpec`, sweeps JSON round-trip:
``SweepSpec.from_dict(sweep.to_dict()) == sweep``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, replace
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .spec import ScenarioError, ScenarioSpec, WorkloadSpec

__all__ = ["SweepSpec", "SCALAR_AXES", "LABELLED_AXES"]

#: Axes applied to ``ScenarioSpec`` fields.
_SPEC_AXES = ("profiles", "powercap", "engine")
#: Axes applied to ``WorkloadSpec`` fields.
_WORKLOAD_AXES = ("source", "days", "seed", "peak_rate", "pattern", "path")
#: Axes applied to ``SchedulerSpec`` fields.
_SCHEDULER_AXES = (
    "policy",
    "method",
    "predictor",
    "window",
    "noise_sigma",
    "noise_bias",
    "noise_seed",
    "alpha",
    "headroom",
    "min_instances",
    "max_instances",
)
#: Every axis taking plain JSON-scalar values.
SCALAR_AXES = _SPEC_AXES + _WORKLOAD_AXES + _SCHEDULER_AXES
#: Axes taking ``(label, payload)`` values (payloads are mappings).
LABELLED_AXES = ("inventory", "params", "workload")

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")
_TOKEN_BAD = re.compile(r"[^A-Za-z0-9._-]")


def _token(value) -> str:
    """A grid-point value as a name fragment (filesystem/run-id safe)."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        s = format(value, "g")
    else:
        s = str(value)
    return _TOKEN_BAD.sub("-", s)


def _canon(payload) -> Optional[str]:
    """A labelled-axis payload in canonical JSON (hashable, comparable)."""
    if payload is None:
        return None
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepSpec:
    """A parametric grid over a base scenario.

    ``axes`` is an ordered tuple of ``(axis, values)`` pairs; expansion
    order is the cross product with the *last* axis varying fastest
    (``itertools.product`` order), and minted names list the axes in
    declaration order.  Axis order is therefore part of the sweep's
    identity — it changes names, not physics.
    """

    name: str
    description: str = ""
    base: str = "paper-bml"
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not _NAME_RE.match(self.name):
            raise ScenarioError(
                f"sweep name {self.name!r} must be non-empty and use only "
                "[A-Za-z0-9._-] (it prefixes minted scenario names)"
            )
        seen = set()
        norm: List[Tuple[str, Tuple[object, ...]]] = []
        for axis, values in self.axes:
            axis = str(axis)
            if axis in seen:
                raise ScenarioError(f"duplicate sweep axis {axis!r}")
            seen.add(axis)
            values = tuple(values)
            if not values:
                raise ScenarioError(f"sweep axis {axis!r} has no values")
            if axis in LABELLED_AXES:
                values = tuple(self._norm_labelled(axis, v) for v in values)
            elif axis in SCALAR_AXES:
                for v in values:
                    if v is not None and not isinstance(
                        v, (str, int, float, bool)
                    ):
                        raise ScenarioError(
                            f"axis {axis!r} value {v!r} is not a JSON "
                            f"scalar (use the labelled axes {LABELLED_AXES} "
                            "for structured values)"
                        )
            else:
                raise ScenarioError(
                    f"unknown sweep axis {axis!r} (scalar axes: "
                    f"{SCALAR_AXES}; labelled axes: {LABELLED_AXES})"
                )
            tokens = [
                v[0] if axis in LABELLED_AXES else _token(v) for v in values
            ]
            if len(set(tokens)) != len(tokens):
                raise ScenarioError(
                    f"axis {axis!r} values collapse to duplicate name "
                    f"tokens {tokens!r}"
                )
            norm.append((axis, values))
        object.__setattr__(self, "axes", tuple(norm))
        object.__setattr__(self, "tags", tuple(self.tags))

    @staticmethod
    def _norm_labelled(axis: str, value) -> Tuple[str, Optional[str]]:
        """``(label, payload)`` -> ``(label, canonical-json-or-None)``."""
        try:
            label, payload = value
        except (TypeError, ValueError):
            raise ScenarioError(
                f"axis {axis!r} takes (label, payload) pairs, got {value!r}"
            ) from None
        label = str(label)
        if not label or not _NAME_RE.match(label):
            raise ScenarioError(
                f"axis {axis!r} label {label!r} must use only [A-Za-z0-9._-]"
            )
        if payload is None:
            if axis != "inventory":
                raise ScenarioError(f"axis {axis!r} payload cannot be None")
            return (label, None)
        if isinstance(payload, str):  # already canonical (round trip)
            payload = json.loads(payload)
        if not isinstance(payload, Mapping):
            raise ScenarioError(
                f"axis {axis!r} payload for {label!r} must be a mapping, "
                f"got {type(payload).__name__}"
            )
        return (label, _canon(dict(payload)))

    # -- shape -----------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of grid points ``expand()`` mints."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def axes_summary(self) -> str:
        """Compact ``axis x count`` listing for tables."""
        return " * ".join(f"{axis}[{len(vals)}]" for axis, vals in self.axes)

    # -- expansion -------------------------------------------------------
    def expand(self) -> List[ScenarioSpec]:
        """Mint the full grid as concrete, validated scenario specs.

        Deterministic: same sweep, same spec list (names, keys, order) —
        on every host.  Invalid grid points (e.g. a baseline policy
        crossed with an event engine) raise :class:`ScenarioError`
        naming the offending point.
        """
        from .registry import get as _get_scenario

        base = _get_scenario(self.base)
        axis_names = [axis for axis, _ in self.axes]
        out: List[ScenarioSpec] = []
        for combo in product(*(values for _, values in self.axes)):
            out.append(self._mint(base, axis_names, combo))
        return out

    def point_names(self) -> List[str]:
        """The minted names without building the specs (cheap preview)."""
        axis_names = [axis for axis, _ in self.axes]
        out = []
        for combo in product(*(values for _, values in self.axes)):
            parts = [
                f"{axis}={value[0] if axis in LABELLED_AXES else _token(value)}"
                for axis, value in zip(axis_names, combo)
            ]
            out.append("+".join([self.name] + parts))
        return out

    def _mint(
        self, base: ScenarioSpec, axis_names: Sequence[str], combo
    ) -> ScenarioSpec:
        from .spec import _freeze

        workload = base.workload
        wl_kw: Dict[str, object] = {}
        sched_kw: Dict[str, object] = {}
        spec_kw: Dict[str, object] = {}
        parts: List[str] = []
        coords: List[Tuple[str, object]] = []
        for axis, value in zip(axis_names, combo):
            if axis in LABELLED_AXES:
                label, canon = value
                payload = None if canon is None else json.loads(canon)
                if axis == "inventory":
                    sched_kw["inventory"] = (
                        None if payload is None else _freeze(payload)
                    )
                elif axis == "params":
                    wl_kw["params"] = _freeze(payload)
                else:  # a whole-workload replacement; field axes still win
                    workload = WorkloadSpec.from_dict(payload)
                token = label
                coords.append((axis, label))
            else:
                token = _token(value)
                coords.append((axis, value))
                if axis in _WORKLOAD_AXES:
                    wl_kw[axis] = value
                    if axis == "days":
                        wl_kw["pin_days"] = True
                elif axis in _SCHEDULER_AXES:
                    sched_kw[axis] = value
                else:
                    spec_kw[axis] = value
            parts.append(f"{axis}={token}")
        name = "+".join([self.name] + parts)
        try:
            if wl_kw:
                workload = replace(workload, **wl_kw)
            scheduler = (
                replace(base.scheduler, **sched_kw)
                if sched_kw
                else base.scheduler
            )
            return replace(
                base,
                name=name,
                label=None,
                description=f"{self.name} grid point ({', '.join(parts)})",
                workload=workload,
                scheduler=scheduler,
                tags=tuple(self.tags) + ("sweep", f"sweep:{self.name}"),
                axes=tuple(coords),
                **spec_kw,
            )
        except ScenarioError as exc:
            raise ScenarioError(
                f"sweep {self.name!r}: invalid grid point {name!r}: {exc}"
            ) from exc

    # -- round trip ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"name": self.name, "base": self.base}
        if self.description:
            out["description"] = self.description
        axes_out = []
        for axis, values in self.axes:
            if axis in LABELLED_AXES:
                vals: List[object] = [
                    {
                        "label": label,
                        "value": None if canon is None else json.loads(canon),
                    }
                    for label, canon in values
                ]
            else:
                vals = list(values)
            axes_out.append([axis, vals])
        out["axes"] = axes_out
        if self.tags:
            out["tags"] = list(self.tags)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        kwargs = dict(data)
        if "axes" in kwargs:
            axes = []
            for axis, vals in kwargs["axes"]:
                conv: List[object] = []
                for v in vals:
                    if isinstance(v, Mapping) and "label" in v:
                        conv.append((v["label"], v.get("value")))
                    else:
                        conv.append(v)
                axes.append((axis, tuple(conv)))
            kwargs["axes"] = tuple(axes)
        if "tags" in kwargs:
            kwargs["tags"] = tuple(kwargs["tags"])
        return cls(**kwargs)

    def sweep_key(self) -> str:
        """Canonical JSON identity (the sweep analogue of
        ``ScenarioSpec.spec_key``); golden pinning hashes this plus the
        minted spec keys."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
