"""Declarative scenario subsystem.

One spec language (:mod:`repro.scenarios.spec`), one named catalogue
(:mod:`repro.scenarios.registry`), one grid language
(:mod:`repro.scenarios.sweep` — parametric sweeps minting spec lists),
one execution path (:mod:`repro.scenarios.runner`) — shared by
:mod:`repro.experiments`, the CLI (``repro scenario|sweep ...``), the
example scripts and the figure benchmarks.

Quick start::

    from repro import scenarios

    spec = scenarios.get("paper-bml").with_days(2)     # shrink the replay
    run = scenarios.run_scenario(spec)                 # -> ScenarioRun
    print(run.result.total_energy_kwh, run.qos().served_fraction)

    runs = scenarios.run_suite(scenarios.specs(), jobs=4)   # whole catalogue

    grid = scenarios.get_sweep("fig5-grid").expand()   # 24 minted specs
    runs = scenarios.run_suite(grid, jobs=4)           # traces ship once
"""

from .registry import (
    PAPER_SCENARIOS,
    by_tag,
    get,
    get_sweep,
    names,
    register,
    register_sweep,
    specs,
    sweep_names,
    sweeps,
)
from .runner import (
    FailedRun,
    RetryPolicy,
    ScenarioRun,
    SuiteExecutionError,
    SuiteInterrupted,
    chunk_specs,
    clear_caches,
    fanout_stats,
    infra_cache_stats,
    run_scenario,
    run_suite,
)
from .sweep import LABELLED_AXES, SCALAR_AXES, SweepSpec
from .spec import (
    FIG5_DAYS_ENV,
    ScenarioError,
    ScenarioSpec,
    SchedulerSpec,
    WorkloadSpec,
)

__all__ = [
    "ScenarioSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "ScenarioError",
    "ScenarioRun",
    "FailedRun",
    "RetryPolicy",
    "SuiteExecutionError",
    "SuiteInterrupted",
    "FIG5_DAYS_ENV",
    "PAPER_SCENARIOS",
    "register",
    "get",
    "names",
    "specs",
    "by_tag",
    "run_scenario",
    "run_suite",
    "chunk_specs",
    "clear_caches",
    "infra_cache_stats",
    "fanout_stats",
    "SweepSpec",
    "SCALAR_AXES",
    "LABELLED_AXES",
    "register_sweep",
    "get_sweep",
    "sweep_names",
    "sweeps",
]
