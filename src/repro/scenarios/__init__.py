"""Declarative scenario subsystem.

One spec language (:mod:`repro.scenarios.spec`), one named catalogue
(:mod:`repro.scenarios.registry`), one execution path
(:mod:`repro.scenarios.runner`) — shared by :mod:`repro.experiments`,
the CLI (``repro scenario list|show|run``), the example scripts and the
figure benchmarks.

Quick start::

    from repro import scenarios

    spec = scenarios.get("paper-bml").with_days(2)     # shrink the replay
    run = scenarios.run_scenario(spec)                 # -> ScenarioRun
    print(run.result.total_energy_kwh, run.qos().served_fraction)

    runs = scenarios.run_suite(scenarios.specs(), jobs=4)   # whole catalogue
"""

from .registry import PAPER_SCENARIOS, by_tag, get, names, register, specs
from .runner import (
    FailedRun,
    RetryPolicy,
    ScenarioRun,
    SuiteExecutionError,
    chunk_specs,
    clear_caches,
    infra_cache_stats,
    run_scenario,
    run_suite,
)
from .spec import (
    FIG5_DAYS_ENV,
    ScenarioError,
    ScenarioSpec,
    SchedulerSpec,
    WorkloadSpec,
)

__all__ = [
    "ScenarioSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "ScenarioError",
    "ScenarioRun",
    "FailedRun",
    "RetryPolicy",
    "SuiteExecutionError",
    "FIG5_DAYS_ENV",
    "PAPER_SCENARIOS",
    "register",
    "get",
    "names",
    "specs",
    "by_tag",
    "run_scenario",
    "run_suite",
    "chunk_specs",
    "clear_caches",
    "infra_cache_stats",
]
