"""One execution path for every scenario: build, plan, replay, account.

:func:`run_scenario` is the single facade the experiments module, the
CLI, the examples and the benchmarks all route through.  It materialises
the spec's profiles/trace/predictor (memoised: suites re-running the same
workload or infrastructure share the objects *and* the infrastructure's
combination-table cache), builds the plan its policy describes, replays
it on the requested engine, and wraps everything in a
:class:`ScenarioRun`.

:func:`run_suite` fans a list of specs out over a ``multiprocessing``
pool (``jobs`` worker processes; ``jobs=1`` stays in-process), returning
the per-scenario results in input order.  Fan-out is **chunked by
workload** (:func:`chunk_specs`), and trace distribution is
**zero-copy** (PR 8): each workload spanning several chunks is built
once by the dispatcher, published as a named
``multiprocessing.shared_memory`` segment
(:mod:`repro.workload.trace`), and mapped read-only by every worker —
instead of being pickled per chunk or rebuilt per worker.  Parallel
results are bit-identical to sequential ones — pinned by
``tests/test_scenarios.py``.

Fault tolerance (PR 7): the pool path is an ``apply_async`` dispatcher,
not a blind ``pool.map``.  Each chunk carries a deadline, crashed
workers are detected and the pool resurrected, failed work retries with
exponential backoff under a :class:`RetryPolicy` (multi-spec chunks are
split on retry so one poisoned spec cannot condemn its chunk-mates), and
``keep_going=True`` turns the first-error-aborts contract into per-spec
outcomes (:class:`ScenarioRun` or :class:`FailedRun`, in input order).
``store=``/``resume=`` checkpoint every completed result through a
:class:`~repro.results.store.RunStore` as it lands and skip
already-stored specs on restart.  All recovery paths are provable via
:mod:`repro.faults` — see ``tests/faults/``.
"""

from __future__ import annotations

import os as _os
import signal as _signal
import threading as _threading
import time
import traceback as _traceback
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import faults
from ..core.adaptive import TransitionAwareScheduler
from ..core.baselines import global_upper_bound_plan, per_day_upper_bound_plan
from ..core.bml import BMLInfrastructure, design
from ..core.prediction import Predictor
from ..core.scheduler import BMLScheduler
from ..sim.datacenter import execute_plan, lower_bound_result
from ..sim.results import QoSReport, SimulationResult
from ..workload.trace import (
    LoadTrace,
    SharedTraceHandle,
    attach_trace,
    release_segment,
    share_trace,
)
from .spec import ScenarioError, ScenarioSpec, WorkloadSpec

__all__ = [
    "ScenarioRun",
    "FailedRun",
    "RetryPolicy",
    "SuiteExecutionError",
    "SuiteInterrupted",
    "run_scenario",
    "run_suite",
    "chunk_specs",
    "clear_caches",
    "infra_cache_stats",
    "fanout_stats",
]


# ---------------------------------------------------------------------------
# Shared-object caches (per process)
# ---------------------------------------------------------------------------

#: Infrastructures per (profiles, powercap): sharing the instance shares
#: its combination-table cache across every scenario of a suite.
_INFRA_CACHE: Dict[Tuple[str, Optional[float]], BMLInfrastructure] = {}

#: Built traces per workload spec + resolved day count.  Bounded: an
#: 87-day 1 Hz trace is ~60 MB, so only the most recent few stay alive.
_TRACE_CACHE: "OrderedDict[Tuple[WorkloadSpec, int], LoadTrace]" = OrderedDict()
_TRACE_CACHE_MAX = 4


#: Trace-distribution telemetry (cumulative, this process).  The
#: ``worker_trace_builds`` counter aggregates the builds pool workers
#: reported back — the figure the shared-memory path drives to zero for
#: every workload the dispatcher published.
_FANOUT_STATS: Dict[str, int] = {
    "trace_builds": 0,
    "worker_trace_builds": 0,
    "segments_shared": 0,
    "handles_shipped": 0,
    "bytes_shipped": 0,
    "bytes_pickle_avoided": 0,
}


def fanout_stats() -> Dict[str, int]:
    """Snapshot of the suite fan-out telemetry (``repro cache-stats``)."""
    return dict(_FANOUT_STATS)


def clear_caches() -> None:
    """Drop the memoised infrastructures and traces (tests, memory)."""
    _INFRA_CACHE.clear()
    _TRACE_CACHE.clear()


def infra_cache_stats() -> Dict[str, Dict[str, int]]:
    """Combination-table telemetry of every memoised infrastructure.

    One entry per cached :class:`BMLInfrastructure`, labelled by its
    profiles key (``@<powercap>W`` suffixed when capped) — the accessor
    ``repro cache-stats`` consumes, keeping the cache's key shape out of
    the CLI layer.
    """
    out: Dict[str, Dict[str, int]] = {}
    for (profiles, powercap), infra in _INFRA_CACHE.items():
        label = profiles if powercap is None else f"{profiles}@{powercap:g}W"
        out[label] = {
            "table_cache_hits": infra.table_cache_hits,
            "table_cache_misses": infra.table_cache_misses,
        }
    return out


def _infra_for(spec: ScenarioSpec) -> BMLInfrastructure:
    key = (spec.profiles, spec.powercap)
    infra = _INFRA_CACHE.get(key)
    if infra is None:
        infra = design(spec.build_profiles())
        _INFRA_CACHE[key] = infra
    return infra


def _trace_for(workload: WorkloadSpec) -> LoadTrace:
    key = (workload, workload.resolved_days())
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = workload.build()
        _FANOUT_STATS["trace_builds"] += 1
        _TRACE_CACHE[key] = trace
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            _TRACE_CACHE.popitem(last=False)
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


# ---------------------------------------------------------------------------
# Per-scenario result object
# ---------------------------------------------------------------------------


@dataclass
class ScenarioRun:
    """Outcome of one scenario: the replay result plus run metadata.

    The full trace is *not* carried (87 days of 1 Hz samples do not
    belong in a result that travels across process boundaries); the QoS
    figures that need it are precomputed.
    """

    spec: ScenarioSpec
    result: SimulationResult
    days: int
    trace_peak: float
    trace_total_demand: float
    elapsed_s: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def scenario(self) -> str:
        return self.result.scenario

    def qos(self) -> QoSReport:
        """QoS report against the replayed trace's total demand."""
        from dataclasses import replace

        return replace(
            self.result.qos(), total_demand=self.trace_total_demand
        )

    def to_record(self):
        """Distil this run into a durable
        :class:`~repro.results.record.ScenarioResult` (the unified result
        model the :class:`~repro.results.store.RunStore`,
        :class:`~repro.results.report.SuiteReport` and ``repro scenario
        diff`` all consume)."""
        from ..results.record import ScenarioResult

        return ScenarioResult.from_run(self)

    def summary_row(self) -> Dict[str, object]:
        """One report-table row (same shape as ``Fig5Outcome`` rows).

        Delegates to the distilled record so the row shape has a single
        source of truth (``ScenarioResult.summary_row``).
        """
        return self.to_record().summary_row()


# ---------------------------------------------------------------------------
# Failure model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailedRun:
    """Terminal failure of one scenario after its retry budget.

    The graceful-degradation counterpart of :class:`ScenarioRun`:
    ``run_suite(..., keep_going=True)`` returns one of these per spec
    that kept failing, instead of aborting the suite on the first error.
    ``error_type`` is the exception class name — or ``"WorkerCrashed"``
    / ``"ChunkTimeout"`` when the worker process died or blew through
    the chunk deadline, cases where no Python exception ever surfaced.
    """

    spec: ScenarioSpec
    error_type: str
    message: str
    traceback: str
    attempts: int
    elapsed_s: float

    @property
    def name(self) -> str:
        return self.spec.name

    def summary_row(self) -> Dict[str, object]:
        """One failures-table row (kept narrow; tracebacks stay off it)."""
        message = self.message.replace("\n", " ")
        if len(message) > 60:
            message = message[:57] + "..."
        return {
            "scenario": self.name,
            "error": self.error_type,
            "message": message,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 2),
        }


class SuiteExecutionError(ScenarioError):
    """Raised by ``run_suite`` (without ``keep_going``) for failures that
    carry no re-raisable exception — crashed workers, chunk deadlines."""

    def __init__(self, failures: Sequence[FailedRun]):
        self.failures = tuple(failures)
        detail = "; ".join(
            f"{f.name}: {f.error_type} after {f.attempts} attempt(s) "
            f"({f.message})"
            for f in self.failures
        )
        super().__init__(f"{len(self.failures)} scenario(s) failed: {detail}")


class SuiteInterrupted(ScenarioError):
    """``run_suite`` stopped on SIGTERM/SIGINT after flushing results.

    Every result that completed before the signal was already
    checkpointed through the suite's ``store`` (results save the moment
    they land), so re-running with ``resume=True`` skips the completed
    specs and finishes only the remainder.  ``completed``/``total``
    count spec slots; ``signum`` is the signal that stopped the suite.
    """

    def __init__(self, signum: int, completed: int, total: int):
        self.signum = signum
        self.completed = completed
        self.total = total
        try:
            name = _signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        super().__init__(
            f"suite interrupted by {name}: {completed}/{total} scenario(s) "
            "completed and checkpointed; resume=True finishes the rest"
        )


@contextmanager
def _graceful_stop():
    """Convert SIGTERM/SIGINT into a polled stop flag for the suite.

    Yields a callable returning the received signal number (or ``None``).
    The first signal requests a graceful stop — in-flight work finishes
    and completed results are flushed; a second signal escalates to an
    immediate :class:`KeyboardInterrupt`.  Outside the main thread (or
    a non-Unix oddity) signals cannot be hooked; the suite then simply
    runs unguarded.
    """
    state = {"signum": None}

    def handler(signum, frame):
        if state["signum"] is not None:
            raise KeyboardInterrupt
        state["signum"] = signum

    previous = {}
    try:
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            previous[sig] = _signal.signal(sig, handler)
    except ValueError:  # not the main thread
        previous = {}
    try:
        yield lambda: state["signum"]
    finally:
        for sig, old in previous.items():
            _signal.signal(sig, old)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard ``run_suite`` fights for each scenario.

    ``max_attempts`` bounds tries per spec (1 = no retry);
    ``timeout_s`` is the per-chunk deadline measured from dispatch (it
    must cover worker start-up under ``spawn``); retries back off
    exponentially (``backoff_s * backoff_factor**(retry - 1)``).
    ``poll_interval_s`` paces the dispatcher's completion/liveness scan.
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    poll_interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ScenarioError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ScenarioError("timeout_s must be > 0")
        if self.backoff_s < 0:
            raise ScenarioError("backoff_s must be >= 0")
        if self.backoff_factor < 1:
            raise ScenarioError("backoff_factor must be >= 1")
        if self.poll_interval_s <= 0:
            raise ScenarioError("poll_interval_s must be > 0")

    def delay(self, retry: int) -> float:
        """Seconds to back off before retry number ``retry`` (1-based)."""
        if retry <= 0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (retry - 1)


#: Legacy semantics for ``run_suite(retry=None)``: one attempt, no
#: deadline — failures surface immediately, nothing silently re-runs.
_NO_RETRY = RetryPolicy(max_attempts=1, backoff_s=0.0)

#: The outcomes ``run_suite`` can place at a spec's slot: a live run, a
#: stored record (resumed from a checkpoint), or a terminal failure.
SuiteOutcome = Union[ScenarioRun, "ScenarioResult", FailedRun]  # noqa: F821


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


#: Spec engine name -> :meth:`EventDrivenReplay.run` engine.  The bare
#: ``"event"`` alias tracks the fastest bit-identical implementation
#: (the two-phase engine since PR 6); the explicit names pin a variant.
_REPLAY_ENGINES = {
    "event": "twophase",
    "event-twophase": "twophase",
    "event-segments": "segments",
    "event-reference": "reference",
}


def _replay(
    spec: ScenarioSpec,
    trace: LoadTrace,
    infra: BMLInfrastructure,
    predictor: Optional[Predictor],
) -> SimulationResult:
    """Build the policy's plan and replay it on the requested engine."""
    sched = spec.scheduler
    label = spec.scenario_label
    if sched.policy in ("bml", "transition-aware"):
        predictor = predictor if predictor is not None else sched.build_predictor()
        if sched.policy == "transition-aware":
            if sched.inventory is not None or sched.build_app_spec() is not None:
                raise ScenarioError(
                    "the transition-aware policy does not support node "
                    "constraints yet"
                )
            scheduler = TransitionAwareScheduler(
                infra, predictor=predictor, method=sched.method
            )
        else:
            scheduler = BMLScheduler(
                infra,
                predictor=predictor,
                method=sched.method,
                inventory=sched.inventory_dict(),
                app_spec=sched.build_app_spec(),
            )
        if spec.engine == "fast":
            return execute_plan(scheduler.plan(trace), trace, label)
        from ..sim.loop import EventDrivenReplay

        outcome = scheduler.plan_detailed(trace)
        replay = EventDrivenReplay(
            outcome.table,
            trace,
            predictor=predictor,
            inventory=sched.inventory_dict(),
        )
        result = replay.run(engine=_REPLAY_ENGINES[spec.engine])
        result.scenario = label
        return result
    if sched.policy == "upper-global":
        return execute_plan(global_upper_bound_plan(trace, infra.big), trace, label)
    if sched.policy == "upper-per-day":
        return execute_plan(
            per_day_upper_bound_plan(trace, infra.big), trace, label
        )
    if sched.policy == "lower-bound":
        table = infra.table(max(trace.peak, 1.0), sched.method)
        return lower_bound_result(trace, table, label)
    raise ScenarioError(f"unknown policy {sched.policy!r}")


def run_scenario(
    spec: ScenarioSpec,
    trace: Optional[LoadTrace] = None,
    infra: Optional[BMLInfrastructure] = None,
    predictor: Optional[Predictor] = None,
) -> ScenarioRun:
    """Run one scenario end to end.

    ``trace``/``infra``/``predictor`` override the spec-built objects —
    that is how :func:`repro.experiments.run_fig5` keeps accepting
    explicit objects while routing through the one execution path, and
    how suites share a trace across scenarios without rebuilding it.
    """
    t0 = time.perf_counter()
    infra = infra if infra is not None else _infra_for(spec)
    trace = trace if trace is not None else _trace_for(spec.workload)
    result = _replay(spec, trace, infra, predictor)
    return ScenarioRun(
        spec=spec,
        result=result,
        days=trace.n_days,
        trace_peak=trace.peak,
        trace_total_demand=trace.total_demand,
        elapsed_s=time.perf_counter() - t0,
    )


#: Per-worker shared overrides, shipped once at pool start (pickling a
#: 60 MB trace per *task* would dwarf the work being parallelised).
_WORKER_SHARED: Dict[str, object] = {}


def _reset_worker_signals() -> None:
    """Child-side: restore kill-able signal dispositions.

    Forked workers inherit the parent's handlers — including the suite's
    graceful SIGTERM/SIGINT handler when ``run_suite`` installed one.  A
    worker that treats SIGTERM as "set a flag" can no longer be killed
    by ``Pool.terminate()``, which deadlocks the dispatcher's cleanup.
    Workers must die on SIGTERM and leave SIGINT to the dispatcher.
    """
    try:
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread initializer
        pass


def _install_shared(
    trace: Optional[Union[LoadTrace, SharedTraceHandle]],
    infra: Optional[BMLInfrastructure],
    fault_plan: Optional[faults.FaultPlan] = None,
) -> None:
    """Install the worker-shared overrides (parent- or child-side)."""
    if isinstance(trace, SharedTraceHandle):
        trace = attach_trace(trace)
    _WORKER_SHARED["trace"] = trace
    _WORKER_SHARED["infra"] = infra
    if fault_plan is not None:
        faults.install(fault_plan)


def _init_worker(
    trace: Optional[Union[LoadTrace, SharedTraceHandle]],
    infra: Optional[BMLInfrastructure],
    fault_plan: Optional[faults.FaultPlan] = None,
) -> None:
    """Pool initializer for spawn/forkserver children."""
    _reset_worker_signals()
    _install_shared(trace, infra, fault_plan)


def _run_worker(spec: ScenarioSpec) -> ScenarioRun:
    """Pool worker: specs in, ScenarioRuns out (both picklable)."""
    return run_scenario(
        spec,
        trace=_WORKER_SHARED.get("trace"),
        infra=_WORKER_SHARED.get("infra"),
    )


def _workload_key(spec: ScenarioSpec) -> Tuple[WorkloadSpec, int]:
    """The trace-cache key a scenario's workload resolves to."""
    return (spec.workload, spec.workload.resolved_days())


def chunk_specs(
    specs: Sequence[ScenarioSpec],
    jobs: int,
    chunk_size: Optional[int] = None,
) -> List[List[int]]:
    """Partition spec indices into workload-coalesced pool tasks.

    Scenarios sharing a workload land in the same chunk, so the chunk's
    worker builds (or receives) each trace exactly once — no duplicate
    trace construction across the pool.  A group bigger than one
    worker's fair share (``ceil(n / jobs)``) is split into fair-share
    pieces first: a catalogue dominated by one workload still
    parallelises.  ``chunk_size`` caps the piece size below the fair
    share for finer dispatch granularity — smaller chunks mean finer
    retry/timeout units and better straggler balance, and since the
    dispatcher distributes each workload's trace *once* via shared
    memory (not once per piece, see :func:`run_suite`), fine-grained
    pieces no longer pay a per-piece trace cost.

    Each chunk stays **one pool task** (no merging down to exactly
    ``jobs`` chunks): per-scenario runtimes vary wildly, so the pool's
    dynamic dispatch over more-tasks-than-workers balances stragglers
    the way a static assignment cannot.  Chunks are emitted largest
    first (ties in first-appearance order) — the longest-processing-time
    heuristic for dynamic pools — and the whole partition is
    deterministic.
    """
    if jobs < 1:
        raise ScenarioError("jobs must be >= 1")
    if chunk_size is not None and chunk_size < 1:
        raise ScenarioError("chunk_size must be >= 1")
    groups: "OrderedDict[Tuple[WorkloadSpec, int], List[int]]" = OrderedDict()
    for i, spec in enumerate(specs):
        groups.setdefault(_workload_key(spec), []).append(i)
    size = -(-len(specs) // jobs)  # ceil: one worker's fair share
    if chunk_size is not None:
        size = min(size, chunk_size)
    pieces: List[List[int]] = []
    for idxs in groups.values():
        for k in range(0, len(idxs), size):
            pieces.append(idxs[k : k + size])
    return sorted(pieces, key=lambda idxs: (-len(idxs), idxs[0]))


def _spec_outcome(
    spec: ScenarioSpec,
    attempt: int,
    trace: Optional[LoadTrace],
    infra: Optional[BMLInfrastructure],
) -> Tuple[str, object]:
    """Run one spec, degrading exceptions into a portable failure payload.

    Returns ``("ok", ScenarioRun)`` or ``("error", payload)`` where the
    payload carries the exception's type/message/traceback — and the
    exception object itself when it pickles, so ``keep_going=False``
    callers can re-raise the original error across the pool boundary.
    """
    t0 = time.perf_counter()
    try:
        faults.fire("spec-error", spec.name, attempt)
        run = run_scenario(spec, trace=trace, infra=infra)
        return ("ok", run)
    except Exception as exc:
        import pickle

        try:
            # Full round trip: an exception that *dumps* but fails to
            # *load* (mismatched __init__ signature) would kill the
            # pool's result-handler thread on arrival and hang the
            # suite, so it must be degraded to strings right here.
            pickle.loads(pickle.dumps(exc))
            carried: Optional[BaseException] = exc
        except Exception:
            carried = None
        return (
            "error",
            {
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": _traceback.format_exc(),
                "exception": carried,
                "elapsed_s": time.perf_counter() - t0,
            },
        )


def _run_chunk_guarded(payload):
    """Pool worker for one chunk: pre-warm caches, run specs in order.

    ``payload`` is ``(pairs, prebuilt, attempt)``: the chunk's
    ``(index, spec)`` pairs, the traces the dispatcher distributed for
    the chunk's workloads — each either a :class:`SharedTraceHandle`
    (attached here, zero-copy) or a pickled :class:`LoadTrace` — seeded
    into this worker's ``_TRACE_CACHE`` so the chunk never rebuilds
    them, and the chunk's attempt number, which drives deterministic
    fault injection.  Per-spec exceptions are captured
    (``_spec_outcome``), so one bad spec never takes down its
    chunk-mates' finished results.

    Returns ``(results, stats)``: the per-spec outcomes plus this
    chunk's worker-side telemetry (``trace_builds`` — the number of
    traces this worker had to build itself, which the dispatcher
    aggregates into ``fanout_stats()["worker_trace_builds"]``).
    """
    pairs, prebuilt, attempt = payload
    for key, built in prebuilt.items():
        if isinstance(built, SharedTraceHandle):
            built = attach_trace(built)
        _TRACE_CACHE[key] = built
    builds_before = _FANOUT_STATS["trace_builds"]
    out: List[Tuple[int, Tuple[str, object]]] = []
    for i, spec in pairs:
        faults.fire("worker-crash", spec.name, attempt)
        faults.fire("worker-hang", spec.name, attempt)
        out.append(
            (
                i,
                _spec_outcome(
                    spec,
                    attempt,
                    _WORKER_SHARED.get("trace"),
                    _WORKER_SHARED.get("infra"),
                ),
            )
        )
    stats = {"trace_builds": _FANOUT_STATS["trace_builds"] - builds_before}
    return out, stats


def _make_pool(ctx, processes, trace, infra, share_memory=True):
    """A worker pool with the shared overrides installed fork-aware.

    Under the ``fork`` start method the children inherit the parent's
    memory copy-on-write, so serialising ``trace``/``infra`` through the
    pool's ``initargs`` pipe is pure waste (an 87-day trace is ~60 MB).
    Instead the overrides are installed into the parent's module global
    *before* the fork and restored after — the children keep their
    inherited copy.  ``spawn``/``forkserver`` children start from a
    fresh interpreter; with ``share_memory`` a trace override is
    published once in a shared-memory segment and only the handle rides
    the initargs pipe (each worker maps the same pages), otherwise the
    trace is pickled per worker.

    Returns ``(pool, cleanup)``; callers must run ``cleanup()`` after
    closing the pool (it undoes the parent-side global mutation and
    releases the initargs segment).
    """
    if ctx.get_start_method() == "fork":
        saved = dict(_WORKER_SHARED)
        # Parent-side install: the children inherit the overrides (and
        # the active fault plan) through the fork itself.  Only the
        # signal reset must run in the child — never here, where it
        # would strip the suite's own graceful-shutdown handler.
        _install_shared(trace, infra)

        def cleanup():
            _WORKER_SHARED.clear()
            _WORKER_SHARED.update(saved)

        return ctx.Pool(
            processes=processes, initializer=_reset_worker_signals
        ), cleanup
    handle = None
    shipped = trace
    if trace is not None:
        if share_memory:
            try:
                handle = share_trace(trace)
                shipped = handle
                _FANOUT_STATS["segments_shared"] += 1
                # without the segment every spawned worker would have
                # received its own pickled copy through initargs
                _FANOUT_STATS["bytes_pickle_avoided"] += (
                    trace.values.nbytes * processes
                )
            except OSError:  # no usable /dev/shm: fall back to pickling
                handle = None
                shipped = trace
        if handle is None:
            _FANOUT_STATS["bytes_shipped"] += trace.values.nbytes * processes
    pool = ctx.Pool(
        processes=processes,
        initializer=_init_worker,
        initargs=(shipped, infra, faults.active()),
    )

    def cleanup():
        if handle is not None:
            release_segment(handle)

    return pool, cleanup


def _teardown_pool(pool, grace_s: float = 10.0) -> None:
    """``terminate()`` + ``join()`` that cannot wedge the dispatcher.

    ``Pool.terminate`` drains the task queue while holding the queue's
    reader lock (CPython's ``_help_stuff_finish``); a worker that dies
    between acquiring that lock and reading leaves it held forever and
    ``terminate()`` blocked on it.  Graceful shutdown makes "tear down
    a pool with workers in arbitrary states" a supported exit, so the
    teardown runs under a watchdog: past ``grace_s`` every live worker
    is SIGKILLed, the reader lock is force-released to unstick the
    drain, and a still-wedged teardown is abandoned to its daemon
    thread rather than hanging the suite.  The normal path returns the
    moment the plain ``terminate()``/``join()`` completes.
    """
    done = _threading.Event()

    def _graceful() -> None:
        try:
            pool.terminate()
            pool.join()
        finally:
            done.set()

    thread = _threading.Thread(
        target=_graceful, name="pool-teardown", daemon=True
    )
    thread.start()
    if done.wait(grace_s):
        return
    for proc in list(getattr(pool, "_pool", None) or ()):
        if proc.exitcode is None:
            try:
                _os.kill(proc.pid, _signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass
    try:
        # Releasing an unheld lock raises; a dead holder's is freed.
        pool._inqueue._rlock.release()
    except Exception:
        pass
    done.wait(grace_s)


class _Task:
    """One dispatchable unit of work: spec indices + attempt bookkeeping.

    ``isolate`` marks a crash suspect: it runs with the pool otherwise
    empty, so a repeat crash is unambiguously attributable to it.
    """

    __slots__ = ("indices", "attempt", "not_before", "isolate")

    def __init__(
        self,
        indices: Sequence[int],
        attempt: int = 0,
        not_before: float = 0.0,
        isolate: bool = False,
    ):
        self.indices = list(indices)
        self.attempt = attempt
        self.not_before = not_before
        self.isolate = isolate


def _pool_pids(pool) -> set:
    try:
        return {p.pid for p in pool._pool}
    except Exception:  # pragma: no cover - defensive around private API
        return set()


def _pool_impaired(pool, pids: set) -> bool:
    """Has any worker died since ``pids`` was snapshotted?

    ``multiprocessing.Pool`` silently respawns a dead worker — the task
    it held is simply lost and its ``AsyncResult`` never completes — so
    liveness must be observed from outside: a recorded exitcode or a
    pid-set change (the respawn may land before this scan runs).  Reads
    the pool's private worker list defensively; an unreadable pool
    counts as impaired.
    """
    try:
        procs = list(pool._pool)
    except Exception:  # pragma: no cover - defensive around private API
        return True
    if any(p.exitcode is not None for p in procs):
        return True
    return {p.pid for p in procs} != pids


def _resume_index(store) -> Dict[str, object]:
    """Latest stored record per spec key (quarantined dirs are skipped)."""
    index: Dict[str, object] = {}
    for record in store.load_all():  # sequence order: latest save wins
        index[record.spec_key()] = record
    return index


def _run_one_sequential(
    spec: ScenarioSpec,
    policy: RetryPolicy,
    trace: Optional[LoadTrace],
    infra: Optional[BMLInfrastructure],
) -> Tuple[str, object, Optional[BaseException]]:
    """In-process attempt loop with backoff.

    Returns ``("ok", ScenarioRun, None)`` or ``("failed", FailedRun,
    last_exception)`` — the exception rides along so fail-fast callers
    re-raise the original error, not a wrapper.
    """
    t0 = time.perf_counter()
    last_exc: Optional[BaseException] = None
    last_tb = ""
    for attempt in range(policy.max_attempts):
        if attempt:
            delay = policy.delay(attempt)
            if delay:
                time.sleep(delay)
        try:
            faults.fire("spec-error", spec.name, attempt)
            return ("ok", run_scenario(spec, trace=trace, infra=infra), None)
        except Exception as exc:
            last_exc = exc
            last_tb = _traceback.format_exc()
    failed = FailedRun(
        spec=spec,
        error_type=type(last_exc).__name__,
        message=str(last_exc),
        traceback=last_tb,
        attempts=policy.max_attempts,
        elapsed_s=time.perf_counter() - t0,
    )
    return ("failed", failed, last_exc)


def _dispatch_chunks(
    specs: Sequence[ScenarioSpec],
    chunks: Sequence[Sequence[int]],
    pool_size: int,
    ctx,
    trace: Optional[LoadTrace],
    infra: Optional[BMLInfrastructure],
    policy: RetryPolicy,
    keep_going: bool,
    store,
    outcomes: List[Optional[SuiteOutcome]],
    share_memory: bool = True,
    stopped: Optional[Callable[[], Optional[int]]] = None,
) -> List[Tuple[int, FailedRun, Optional[BaseException]]]:
    """The ``apply_async`` dispatcher behind the pool path of
    :func:`run_suite`.

    Successes are written into ``outcomes`` (and checkpointed through
    ``store``) as they land; the return value is the terminal failures
    as ``(spec_index, FailedRun, carried_exception)``.

    Trace distribution (``share_memory``, the default): any workload
    split across several chunks — or already built in the parent — is
    built **once**, published in a shared-memory segment
    (:func:`repro.workload.trace.share_trace`), and referenced by handle
    in every chunk payload; workers map the same physical pages instead
    of unpickling or rebuilding the arrays.  Workloads confined to one
    chunk are left for their worker to build (still exactly one build).
    Segments are owned by this process and released in the ``finally``
    below — they survive pool resurrection (retried chunks re-ship the
    same handle) but never survive the dispatcher, even on error.
    ``share_memory=False`` keeps the per-chunk by-value shipping path
    (the ``perf-sweep`` benchmark's reference).

    Recovery policy:

    * **Per-spec errors** come back inside a completed chunk
      (``_spec_outcome`` payloads); only the failing spec is charged and
      requeued as a singleton with exponential backoff.
    * **Chunk deadline exceeded** (``policy.timeout_s``): the hung
      worker holds a pool slot, so the pool is terminated and
      resurrected.  The expired chunk is charged and *split in half* —
      a poisoned spec cannot keep condemning its chunk-mates — while the
      innocent inflight chunks are requeued at the front, uncharged.
    * **Dead worker** (pid change / exitcode): the pool is resurrected;
      attribution is by *isolation*.  With exactly one chunk inflight
      the culprit is known and charged.  With several, nobody is
      charged: every suspect is requeued marked ``isolate`` and replayed
      with the pool otherwise empty, so innocents complete untouched and
      a repeat crasher crashes alone — unambiguously attributed, then
      charged (and split) on its own budget.  Exactly the poisoned specs
      fail; no innocent ever burns an attempt on a neighbour's crash.
    """
    fork = ctx.get_start_method() == "fork"
    share = share_memory and trace is None
    ship = trace is None and not fork and not share
    pending = deque(_Task(chunk) for chunk in chunks)
    inflight: List[list] = []  # [task, async_result, deadline]
    first_seen: Dict[int, float] = {}
    failures: List[Tuple[int, FailedRun, Optional[BaseException]]] = []
    #: Workload key -> live SharedTraceHandle published by this dispatcher.
    shared_handles: Dict[Tuple[WorkloadSpec, int], SharedTraceHandle] = {}
    #: How many chunks touch each workload: a workload split across
    #: several pieces is worth a parent build + segment; a single-piece
    #: workload is left to its worker (one build either way).
    pieces_per_key: Dict[Tuple[WorkloadSpec, int], int] = {}
    for chunk in chunks:
        for key in {_workload_key(specs[i]) for i in chunk}:
            pieces_per_key[key] = pieces_per_key.get(key, 0) + 1
    #: Keys forked children inherited copy-on-write at pool creation —
    #: publishing a segment for those would be a pure extra copy.
    inherited: set = set()

    def payload_for(task: _Task):
        # Trace distribution: each workload travels at most once per
        # host.  ``share`` publishes it as a named segment and ships the
        # handle with every chunk; ``ship`` (legacy) pickles any parent-
        # built trace into the payload; under plain ``fork`` the
        # children inherit the parent's cache copy-on-write.
        prebuilt = {}
        if trace is None:  # a shared override supersedes per-spec traces
            for i in task.indices:
                key = _workload_key(specs[i])
                if key in prebuilt:
                    continue
                if share:
                    if key in inherited:
                        continue
                    handle = shared_handles.get(key)
                    if handle is None and (
                        pieces_per_key.get(key, 0) > 1 or key in _TRACE_CACHE
                    ):
                        built = _trace_for(specs[i].workload)
                        try:
                            handle = share_trace(built)
                        except OSError:  # no /dev/shm: ship by value
                            prebuilt[key] = built
                            _FANOUT_STATS["bytes_shipped"] += (
                                built.values.nbytes
                            )
                            continue
                        shared_handles[key] = handle
                        _FANOUT_STATS["segments_shared"] += 1
                    if handle is not None:
                        prebuilt[key] = handle
                        _FANOUT_STATS["handles_shipped"] += 1
                        _FANOUT_STATS["bytes_pickle_avoided"] += handle.nbytes
                elif ship:
                    built = _TRACE_CACHE.get(key)
                    if built is not None:
                        prebuilt[key] = built
                        _FANOUT_STATS["bytes_shipped"] += built.values.nbytes
        return ([(i, specs[i]) for i in task.indices], prebuilt, task.attempt)

    def charge(
        task: _Task,
        now: float,
        error_type: str,
        message: str,
        tb: str = "",
        exc: Optional[BaseException] = None,
    ) -> None:
        """Charge one attempt to every spec of ``task``: requeue with
        backoff (splitting multi-spec tasks) or mint ``FailedRun``s."""
        next_attempt = task.attempt + 1
        if next_attempt >= policy.max_attempts:
            for i in task.indices:
                failures.append(
                    (
                        i,
                        FailedRun(
                            spec=specs[i],
                            error_type=error_type,
                            message=message,
                            traceback=tb,
                            attempts=next_attempt,
                            elapsed_s=now - first_seen.get(i, now),
                        ),
                        exc,
                    )
                )
            return
        mid = len(task.indices) // 2
        halves = (
            [task.indices]
            if len(task.indices) == 1
            else [task.indices[:mid], task.indices[mid:]]
        )
        not_before = now + policy.delay(next_attempt)
        for half in halves:
            pending.append(
                _Task(half, next_attempt, not_before, isolate=task.isolate)
            )

    def record_success(i: int, run: ScenarioRun) -> None:
        if store is not None:
            store.save(run.to_record())
        outcomes[i] = run

    def harvest(now: float) -> bool:
        """Collect every ready inflight result; True if any landed."""
        done = [entry for entry in inflight if entry[1].ready()]
        for entry in done:
            inflight.remove(entry)
            task = entry[0]
            try:
                results, wstats = entry[1].get()
            except Exception as exc:
                # The chunk died as a whole (e.g. its result failed to
                # unpickle) without per-spec attribution.
                charge(
                    task, now, "ChunkError", f"{type(exc).__name__}: {exc}"
                )
                continue
            _FANOUT_STATS["worker_trace_builds"] += int(
                wstats.get("trace_builds", 0)
            )
            for i, (status, payload) in results:
                if status == "ok":
                    record_success(i, payload)
                else:
                    charge(
                        _Task([i], task.attempt),
                        now,
                        str(payload["error_type"]),
                        str(payload["message"]),
                        str(payload["traceback"]),
                        payload.get("exception"),
                    )
        return bool(done)

    pool, cleanup = _make_pool(ctx, pool_size, trace, infra, share_memory)
    pids = _pool_pids(pool)
    if fork:
        inherited = set(_TRACE_CACHE)

    def reset_pool() -> None:
        nonlocal pool, cleanup, pids, inherited
        _teardown_pool(pool)
        cleanup()
        pool, cleanup = _make_pool(ctx, pool_size, trace, infra, share_memory)
        pids = _pool_pids(pool)
        if fork:
            inherited = set(_TRACE_CACHE)

    try:
        while pending or inflight:
            now = time.monotonic()
            signum = stopped() if stopped is not None else None
            if signum is not None:
                # Graceful shutdown: stop dispatching, give the inflight
                # chunks one final harvest so every completed result is
                # flushed to the store before the suite dies.
                harvest(now)
                completed = sum(1 for o in outcomes if o is not None)
                raise SuiteInterrupted(signum, completed, len(outcomes))
            for _ in range(len(pending)):
                if len(inflight) >= pool_size:
                    break
                if any(entry[0].isolate for entry in inflight):
                    break  # an isolation round runs alone
                task = pending.popleft()
                if task.not_before > now:  # still backing off: rotate
                    pending.append(task)
                    continue
                if task.isolate and inflight:
                    pending.appendleft(task)  # wait for the pool to drain
                    break
                for i in task.indices:
                    first_seen.setdefault(i, now)
                handle = pool.apply_async(
                    _run_chunk_guarded, (payload_for(task),)
                )
                deadline = (
                    None
                    if policy.timeout_s is None
                    else now + policy.timeout_s
                )
                inflight.append([task, handle, deadline])
            now = time.monotonic()
            progressed = harvest(now)
            if failures and not keep_going:
                break
            expired = [
                entry
                for entry in inflight
                if entry[2] is not None and now > entry[2]
            ]
            if expired:
                expired_ids = {id(entry) for entry in expired}
                innocents = [
                    entry for entry in inflight if id(entry) not in expired_ids
                ]
                inflight.clear()
                for entry in expired:
                    charge(
                        entry[0],
                        now,
                        "ChunkTimeout",
                        f"chunk exceeded the {policy.timeout_s:g}s deadline",
                    )
                for entry in reversed(innocents):
                    pending.appendleft(entry[0])
                reset_pool()
                if failures and not keep_going:
                    break
                continue
            if inflight and _pool_impaired(pool, pids):
                if len(inflight) == 1:  # unambiguous: charge the culprit
                    charge(
                        inflight[0][0],
                        now,
                        "WorkerCrashed",
                        "worker process died mid-chunk",
                    )
                else:
                    # Ambiguous: replay every suspect uncharged, one at a
                    # time, so the next crash identifies its task alone.
                    for entry in reversed(inflight):
                        entry[0].isolate = True
                        pending.appendleft(entry[0])
                inflight.clear()
                reset_pool()
                if failures and not keep_going:
                    break
                continue
            if not progressed and (pending or inflight):
                time.sleep(policy.poll_interval_s)
    finally:
        _teardown_pool(pool)
        cleanup()
        # Segments outlive pool resurrections but never the dispatcher:
        # releasing after the pool is down means no worker still maps
        # them, and /dev/shm is clean even when the suite aborted.
        for handle in shared_handles.values():
            release_segment(handle)
    return failures


def run_suite(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    trace: Optional[LoadTrace] = None,
    infra: Optional[BMLInfrastructure] = None,
    chunked: bool = True,
    start_method: Optional[str] = None,
    keep_going: bool = False,
    retry: Optional[RetryPolicy] = None,
    store=None,
    resume: bool = False,
    chunk_size: Optional[int] = None,
    share_memory: bool = True,
) -> List[SuiteOutcome]:
    """Run many scenarios, optionally fanned out over worker processes.

    ``jobs=1`` runs in-process (sharing this process's caches);
    ``jobs>1`` uses a ``multiprocessing`` pool.  With ``chunked=True``
    (default) the specs are partitioned by workload (:func:`chunk_specs`)
    into one task per workload piece (``chunk_size`` caps the piece size
    for finer dispatch/retry granularity), and each workload's trace is
    distributed **at most once per host**: with ``share_memory`` (the
    default) any workload spanning several chunks is built once by the
    dispatcher, published as a ``multiprocessing.shared_memory``
    segment, and mapped zero-copy by every worker that needs it —
    fan-out cost no longer scales with worker or chunk count.
    ``share_memory=False`` keeps the by-value path (traces pickled per
    chunk payload under ``spawn``) — the reference the ``perf-sweep``
    benchmark group measures against.  ``chunked=False`` keeps the PR 3
    per-spec task scheduling — the ``perf-suite`` reference (it does not
    support the fault-tolerance options below).  Results come back in
    input order and are bit-identical across all modes: scenarios are
    independent, every worker runs the same deterministic code path,
    and a shared-memory attach yields the same float64 arrays a local
    build would.  ``trace``/``infra`` are shared overrides applied to
    *every* scenario (callers that already built the workload pass it
    here instead of paying a rebuild per scenario or per worker).
    ``start_method`` overrides the platform's multiprocessing start
    method (tests pin ``"fork"``/``"spawn"`` to cover both shipping
    regimes).

    Fault tolerance:

    * ``retry`` (:class:`RetryPolicy`) arms per-chunk deadlines and
      exponential-backoff retries; the default (``None``) keeps the
      legacy single-attempt, no-deadline semantics.
    * ``keep_going=True`` degrades gracefully: instead of the first
      error aborting the suite, each spec's slot holds its outcome — a
      :class:`ScenarioRun`, a resumed
      :class:`~repro.results.record.ScenarioResult`, or a
      :class:`FailedRun` after the retry budget.  With
      ``keep_going=False`` the first terminal failure re-raises the
      original exception when it crossed the process boundary intact,
      else a :class:`SuiteExecutionError`.
    * ``store`` (a :class:`~repro.results.store.RunStore`) checkpoints
      every completed result the moment it lands; ``resume=True`` skips
      specs whose results the store already holds (matched by
      ``spec_key()``, latest save wins) and returns the stored records
      in their slots.
    """
    specs = list(specs)
    if jobs < 1:
        raise ScenarioError("jobs must be >= 1")
    if resume and store is None:
        raise ScenarioError("resume=True requires a store")
    if not chunked and (keep_going or retry is not None or store is not None):
        raise ScenarioError(
            "chunked=False (the per-spec reference path) does not support "
            "keep_going/retry/store"
        )
    if not chunked and chunk_size is not None:
        raise ScenarioError(
            "chunk_size only applies to the chunked dispatcher"
        )
    policy = retry if retry is not None else _NO_RETRY
    outcomes: List[Optional[SuiteOutcome]] = [None] * len(specs)
    if resume:
        index = _resume_index(store)
        for i, spec in enumerate(specs):
            record = index.get(spec.spec_key())
            if record is not None:
                outcomes[i] = record
    todo = [i for i, done in enumerate(outcomes) if done is None]

    if jobs == 1 or len(todo) <= 1:
        with _graceful_stop() as stopped:
            for i in todo:
                signum = stopped()
                if signum is not None:
                    # Graceful: everything completed so far is already
                    # saved; resume=True re-runs only the remainder.
                    completed = sum(1 for o in outcomes if o is not None)
                    raise SuiteInterrupted(signum, completed, len(outcomes))
                status, outcome, exc = _run_one_sequential(
                    specs[i], policy, trace, infra
                )
                if status == "ok":
                    if store is not None:
                        store.save(outcome.to_record())
                elif not keep_going:
                    if exc is not None:
                        raise exc
                    raise SuiteExecutionError([outcome])
                outcomes[i] = outcome
        return outcomes  # type: ignore[return-value]

    import multiprocessing

    ctx = multiprocessing.get_context(start_method)
    if not chunked:
        pool, cleanup = _make_pool(
            ctx, min(jobs, len(specs)), trace, infra, share_memory=False
        )
        try:
            with pool:
                return pool.map(_run_worker, specs)
        finally:
            cleanup()

    sub = [specs[i] for i in todo]
    jobs = min(jobs, len(todo))
    local_chunks = chunk_specs(sub, jobs, chunk_size)
    chunks = [[todo[j] for j in local] for local in local_chunks]
    pool_size = max(1, min(jobs, len(chunks)))
    with _graceful_stop() as stopped:
        failures = _dispatch_chunks(
            specs,
            chunks,
            pool_size,
            ctx,
            trace,
            infra,
            policy,
            keep_going,
            store,
            outcomes,
            share_memory=share_memory,
            stopped=stopped,
        )
    if failures and not keep_going:
        for _, _, exc in failures:
            if exc is not None:
                raise exc
        raise SuiteExecutionError([failed for _, failed, _ in failures])
    for i, failed, _ in failures:
        outcomes[i] = failed
    return outcomes  # type: ignore[return-value]
