"""One execution path for every scenario: build, plan, replay, account.

:func:`run_scenario` is the single facade the experiments module, the
CLI, the examples and the benchmarks all route through.  It materialises
the spec's profiles/trace/predictor (memoised: suites re-running the same
workload or infrastructure share the objects *and* the infrastructure's
combination-table cache), builds the plan its policy describes, replays
it on the requested engine, and wraps everything in a
:class:`ScenarioRun`.

:func:`run_suite` fans a list of specs out over a ``multiprocessing``
pool (``jobs`` worker processes; ``jobs=1`` stays in-process), returning
the per-scenario results in input order.  Fan-out is **chunked by
workload** (:func:`chunk_specs`): scenarios sharing a trace land on the
same worker, and traces the parent already built ship to exactly that
worker, so the pool starts warm instead of rebuilding every cache after
the fork.  Parallel results are bit-identical to sequential ones —
pinned by ``tests/test_scenarios.py``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.adaptive import TransitionAwareScheduler
from ..core.baselines import global_upper_bound_plan, per_day_upper_bound_plan
from ..core.bml import BMLInfrastructure, design
from ..core.prediction import Predictor
from ..core.scheduler import BMLScheduler
from ..sim.datacenter import execute_plan, lower_bound_result
from ..sim.results import QoSReport, SimulationResult
from ..workload.trace import LoadTrace
from .spec import ScenarioError, ScenarioSpec, WorkloadSpec

__all__ = [
    "ScenarioRun",
    "run_scenario",
    "run_suite",
    "chunk_specs",
    "clear_caches",
    "infra_cache_stats",
]


# ---------------------------------------------------------------------------
# Shared-object caches (per process)
# ---------------------------------------------------------------------------

#: Infrastructures per (profiles, powercap): sharing the instance shares
#: its combination-table cache across every scenario of a suite.
_INFRA_CACHE: Dict[Tuple[str, Optional[float]], BMLInfrastructure] = {}

#: Built traces per workload spec + resolved day count.  Bounded: an
#: 87-day 1 Hz trace is ~60 MB, so only the most recent few stay alive.
_TRACE_CACHE: "OrderedDict[Tuple[WorkloadSpec, int], LoadTrace]" = OrderedDict()
_TRACE_CACHE_MAX = 4


def clear_caches() -> None:
    """Drop the memoised infrastructures and traces (tests, memory)."""
    _INFRA_CACHE.clear()
    _TRACE_CACHE.clear()


def infra_cache_stats() -> Dict[str, Dict[str, int]]:
    """Combination-table telemetry of every memoised infrastructure.

    One entry per cached :class:`BMLInfrastructure`, labelled by its
    profiles key (``@<powercap>W`` suffixed when capped) — the accessor
    ``repro cache-stats`` consumes, keeping the cache's key shape out of
    the CLI layer.
    """
    out: Dict[str, Dict[str, int]] = {}
    for (profiles, powercap), infra in _INFRA_CACHE.items():
        label = profiles if powercap is None else f"{profiles}@{powercap:g}W"
        out[label] = {
            "table_cache_hits": infra.table_cache_hits,
            "table_cache_misses": infra.table_cache_misses,
        }
    return out


def _infra_for(spec: ScenarioSpec) -> BMLInfrastructure:
    key = (spec.profiles, spec.powercap)
    infra = _INFRA_CACHE.get(key)
    if infra is None:
        infra = design(spec.build_profiles())
        _INFRA_CACHE[key] = infra
    return infra


def _trace_for(workload: WorkloadSpec) -> LoadTrace:
    key = (workload, workload.resolved_days())
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = workload.build()
        _TRACE_CACHE[key] = trace
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            _TRACE_CACHE.popitem(last=False)
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


# ---------------------------------------------------------------------------
# Per-scenario result object
# ---------------------------------------------------------------------------


@dataclass
class ScenarioRun:
    """Outcome of one scenario: the replay result plus run metadata.

    The full trace is *not* carried (87 days of 1 Hz samples do not
    belong in a result that travels across process boundaries); the QoS
    figures that need it are precomputed.
    """

    spec: ScenarioSpec
    result: SimulationResult
    days: int
    trace_peak: float
    trace_total_demand: float
    elapsed_s: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def scenario(self) -> str:
        return self.result.scenario

    def qos(self) -> QoSReport:
        """QoS report against the replayed trace's total demand."""
        from dataclasses import replace

        return replace(
            self.result.qos(), total_demand=self.trace_total_demand
        )

    def to_record(self):
        """Distil this run into a durable
        :class:`~repro.results.record.ScenarioResult` (the unified result
        model the :class:`~repro.results.store.RunStore`,
        :class:`~repro.results.report.SuiteReport` and ``repro scenario
        diff`` all consume)."""
        from ..results.record import ScenarioResult

        return ScenarioResult.from_run(self)

    def summary_row(self) -> Dict[str, object]:
        """One report-table row (same shape as ``Fig5Outcome`` rows).

        Delegates to the distilled record so the row shape has a single
        source of truth (``ScenarioResult.summary_row``).
        """
        return self.to_record().summary_row()


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


#: Spec engine name -> :meth:`EventDrivenReplay.run` engine.  The bare
#: ``"event"`` alias tracks the fastest bit-identical implementation
#: (the two-phase engine since PR 6); the explicit names pin a variant.
_REPLAY_ENGINES = {
    "event": "twophase",
    "event-twophase": "twophase",
    "event-segments": "segments",
    "event-reference": "reference",
}


def _replay(
    spec: ScenarioSpec,
    trace: LoadTrace,
    infra: BMLInfrastructure,
    predictor: Optional[Predictor],
) -> SimulationResult:
    """Build the policy's plan and replay it on the requested engine."""
    sched = spec.scheduler
    label = spec.scenario_label
    if sched.policy in ("bml", "transition-aware"):
        predictor = predictor if predictor is not None else sched.build_predictor()
        if sched.policy == "transition-aware":
            if sched.inventory is not None or sched.build_app_spec() is not None:
                raise ScenarioError(
                    "the transition-aware policy does not support node "
                    "constraints yet"
                )
            scheduler = TransitionAwareScheduler(
                infra, predictor=predictor, method=sched.method
            )
        else:
            scheduler = BMLScheduler(
                infra,
                predictor=predictor,
                method=sched.method,
                inventory=sched.inventory_dict(),
                app_spec=sched.build_app_spec(),
            )
        if spec.engine == "fast":
            return execute_plan(scheduler.plan(trace), trace, label)
        from ..sim.loop import EventDrivenReplay

        outcome = scheduler.plan_detailed(trace)
        replay = EventDrivenReplay(
            outcome.table,
            trace,
            predictor=predictor,
            inventory=sched.inventory_dict(),
        )
        result = replay.run(engine=_REPLAY_ENGINES[spec.engine])
        result.scenario = label
        return result
    if sched.policy == "upper-global":
        return execute_plan(global_upper_bound_plan(trace, infra.big), trace, label)
    if sched.policy == "upper-per-day":
        return execute_plan(
            per_day_upper_bound_plan(trace, infra.big), trace, label
        )
    if sched.policy == "lower-bound":
        table = infra.table(max(trace.peak, 1.0), sched.method)
        return lower_bound_result(trace, table, label)
    raise ScenarioError(f"unknown policy {sched.policy!r}")


def run_scenario(
    spec: ScenarioSpec,
    trace: Optional[LoadTrace] = None,
    infra: Optional[BMLInfrastructure] = None,
    predictor: Optional[Predictor] = None,
) -> ScenarioRun:
    """Run one scenario end to end.

    ``trace``/``infra``/``predictor`` override the spec-built objects —
    that is how :func:`repro.experiments.run_fig5` keeps accepting
    explicit objects while routing through the one execution path, and
    how suites share a trace across scenarios without rebuilding it.
    """
    t0 = time.perf_counter()
    infra = infra if infra is not None else _infra_for(spec)
    trace = trace if trace is not None else _trace_for(spec.workload)
    result = _replay(spec, trace, infra, predictor)
    return ScenarioRun(
        spec=spec,
        result=result,
        days=trace.n_days,
        trace_peak=trace.peak,
        trace_total_demand=trace.total_demand,
        elapsed_s=time.perf_counter() - t0,
    )


#: Per-worker shared overrides, shipped once at pool start (pickling a
#: 60 MB trace per *task* would dwarf the work being parallelised).
_WORKER_SHARED: Dict[str, object] = {}


def _init_worker(
    trace: Optional[LoadTrace], infra: Optional[BMLInfrastructure]
) -> None:
    _WORKER_SHARED["trace"] = trace
    _WORKER_SHARED["infra"] = infra


def _run_worker(spec: ScenarioSpec) -> ScenarioRun:
    """Pool worker: specs in, ScenarioRuns out (both picklable)."""
    return run_scenario(
        spec,
        trace=_WORKER_SHARED.get("trace"),
        infra=_WORKER_SHARED.get("infra"),
    )


def _workload_key(spec: ScenarioSpec) -> Tuple[WorkloadSpec, int]:
    """The trace-cache key a scenario's workload resolves to."""
    return (spec.workload, spec.workload.resolved_days())


def chunk_specs(
    specs: Sequence[ScenarioSpec], jobs: int
) -> List[List[int]]:
    """Partition spec indices into workload-coalesced pool tasks.

    Scenarios sharing a workload land in the same chunk, so the chunk's
    worker builds (or receives) each trace exactly once — no duplicate
    trace construction across the pool.  A group bigger than one
    worker's fair share (``ceil(n / jobs)``) is split into fair-share
    pieces first: a catalogue dominated by one workload still
    parallelises, at the cost of one extra trace build per piece.

    Each chunk stays **one pool task** (no merging down to exactly
    ``jobs`` chunks): per-scenario runtimes vary wildly, so the pool's
    dynamic dispatch over more-tasks-than-workers balances stragglers
    the way a static assignment cannot.  Chunks are emitted largest
    first (ties in first-appearance order) — the longest-processing-time
    heuristic for dynamic pools — and the whole partition is
    deterministic.
    """
    if jobs < 1:
        raise ScenarioError("jobs must be >= 1")
    groups: "OrderedDict[Tuple[WorkloadSpec, int], List[int]]" = OrderedDict()
    for i, spec in enumerate(specs):
        groups.setdefault(_workload_key(spec), []).append(i)
    fair_share = -(-len(specs) // jobs)  # ceil
    pieces: List[List[int]] = []
    for idxs in groups.values():
        for k in range(0, len(idxs), fair_share):
            pieces.append(idxs[k : k + fair_share])
    return sorted(pieces, key=lambda idxs: (-len(idxs), idxs[0]))


def _run_chunk(payload) -> List[Tuple[int, ScenarioRun]]:
    """Pool worker for one chunk: pre-warm caches, run specs in order.

    ``payload`` is ``(pairs, prebuilt)``: the chunk's ``(index, spec)``
    pairs plus any traces the parent had already built for the chunk's
    workloads — seeded into this worker's ``_TRACE_CACHE`` so the fork
    starts warm instead of rebuilding them from scratch.
    """
    pairs, prebuilt = payload
    for key, built in prebuilt.items():
        _TRACE_CACHE[key] = built
    return [
        (
            i,
            run_scenario(
                spec,
                trace=_WORKER_SHARED.get("trace"),
                infra=_WORKER_SHARED.get("infra"),
            ),
        )
        for i, spec in pairs
    ]


def _make_pool(ctx, processes, trace, infra):
    """A worker pool with the shared overrides installed fork-aware.

    Under the ``fork`` start method the children inherit the parent's
    memory copy-on-write, so serialising ``trace``/``infra`` through the
    pool's ``initargs`` pipe is pure waste (an 87-day trace is ~60 MB).
    Instead the overrides are installed into the parent's module global
    *before* the fork and restored after — the children keep their
    inherited copy.  ``spawn``/``forkserver`` children start from a
    fresh interpreter and genuinely need the pickled initargs.

    Returns ``(pool, cleanup)``; callers must run ``cleanup()`` after
    closing the pool (it undoes the parent-side global mutation).
    """
    if ctx.get_start_method() == "fork":
        saved = dict(_WORKER_SHARED)
        _init_worker(trace, infra)

        def cleanup():
            _WORKER_SHARED.clear()
            _WORKER_SHARED.update(saved)

        return ctx.Pool(processes=processes), cleanup
    return (
        ctx.Pool(
            processes=processes,
            initializer=_init_worker,
            initargs=(trace, infra),
        ),
        lambda: None,
    )


def run_suite(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    trace: Optional[LoadTrace] = None,
    infra: Optional[BMLInfrastructure] = None,
    chunked: bool = True,
    start_method: Optional[str] = None,
) -> List[ScenarioRun]:
    """Run many scenarios, optionally fanned out over worker processes.

    ``jobs=1`` runs in-process (sharing this process's caches);
    ``jobs>1`` uses a ``multiprocessing`` pool.  With ``chunked=True``
    (default) the specs are partitioned by workload (:func:`chunk_specs`)
    into one task per workload piece: scenarios sharing a trace run in
    the same process (each trace built once across the whole pool) and
    any trace the parent already holds in its cache ships to exactly the
    worker that needs it.  ``chunked=False`` keeps the PR 3 per-spec task
    scheduling — retained as the fan-out reference the ``perf-suite``
    benchmark group measures against.  Results come back in input order
    and are bit-identical across all modes: scenarios are independent,
    and every worker runs the same deterministic code path.
    ``trace``/``infra`` are shared overrides applied to *every* scenario
    (callers that already built the workload pass it here instead of
    paying a rebuild per scenario or per worker).  ``start_method``
    overrides the platform's multiprocessing start method (tests pin
    ``"fork"``/``"spawn"`` to cover both shipping regimes).
    """
    specs = list(specs)
    if jobs < 1:
        raise ScenarioError("jobs must be >= 1")
    if jobs == 1 or len(specs) <= 1:
        return [run_scenario(s, trace=trace, infra=infra) for s in specs]
    import multiprocessing

    jobs = min(jobs, len(specs))
    ctx = multiprocessing.get_context(start_method)
    fork = ctx.get_start_method() == "fork"
    if not chunked:
        pool, cleanup = _make_pool(ctx, jobs, trace, infra)
        try:
            with pool:
                return pool.map(_run_worker, specs)
        finally:
            cleanup()
    chunks = chunk_specs(specs, jobs)
    # Warm-cache shipping: traces the parent already built travel to
    # exactly the worker that needs them.  Under the "fork" start method
    # the children inherit the parent's cache copy-on-write anyway, so
    # shipping would only duplicate the bytes through a pipe — the
    # method is detected once here and fork payloads stay empty.
    ship = trace is None and not fork
    payloads = []
    for chunk in chunks:
        prebuilt = {}
        if ship:  # a shared trace override supersedes per-spec traces
            for i in chunk:
                key = _workload_key(specs[i])
                built = _TRACE_CACHE.get(key)
                if built is not None:
                    prebuilt[key] = built
        payloads.append(([(i, specs[i]) for i in chunk], prebuilt))
    pool, cleanup = _make_pool(ctx, min(jobs, len(chunks)), trace, infra)
    try:
        with pool:
            # chunksize=1: each workload piece is dispatched to the next
            # free worker, so stragglers don't serialise behind a static
            # split.
            indexed = [
                pair
                for out in pool.map(_run_chunk, payloads, chunksize=1)
                for pair in out
            ]
    finally:
        cleanup()
    runs: List[Optional[ScenarioRun]] = [None] * len(specs)
    for i, run in indexed:
        runs[i] = run
    return runs  # type: ignore[return-value]
