"""The comparison scenarios of the paper's evaluation (Sec. V-C / Fig. 5).

* **UpperBound Global** — a homogeneous data center with a constant number
  of Big servers sized for the trace-wide maximum request rate, always On
  (the classical over-provisioned data center; 4 Paravance machines for
  the World Cup replay).
* **UpperBound PerDay** — homogeneous Big servers, re-dimensioned *each
  day* for the daily maximum (coarse-grain capacity planning); machine
  count changes at midnight and the switching overheads are charged.
* **LowerBound Theoretical** — the minimum computing energy achievable if
  the BML infrastructure were re-dimensioned every second with the ideal
  combination and On/Off actions were free and instantaneous (implemented
  in :func:`repro.sim.datacenter.lower_bound_result`).

Both upper bounds are expressed as :class:`SchedulePlan` objects so the
same executor accounts their energy and QoS.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..workload.trace import LoadTrace
from .combination import Combination
from .profiles import ArchitectureProfile
from .reconfiguration import SchedulePlan, build_plan

__all__ = [
    "global_upper_bound_plan",
    "per_day_upper_bound_plan",
    "big_machines_needed",
]


def big_machines_needed(peak: float, big: ArchitectureProfile) -> int:
    """Number of Big servers a homogeneous data center needs for ``peak``."""
    if peak < 0:
        raise ValueError("peak must be >= 0")
    return int(math.ceil(peak / big.max_perf - 1e-9))


def _bigs(n: int, big: ArchitectureProfile) -> Combination:
    return Combination.of({big: n}) if n > 0 else Combination.empty()


def global_upper_bound_plan(
    trace: LoadTrace, big: ArchitectureProfile
) -> SchedulePlan:
    """UpperBound Global: constant Big servers sized for the global peak."""
    n = big_machines_needed(trace.peak, big)
    return build_plan(len(trace), _bigs(n, big), [])


def per_day_upper_bound_plan(
    trace: LoadTrace,
    big: ArchitectureProfile,
    min_servers: int = 1,
) -> SchedulePlan:
    """UpperBound PerDay: Big servers re-dimensioned each midnight.

    The daily count is ``ceil(daily_max / big.max_perf)`` (never below
    ``min_servers``: a data center keeps at least one frontend up).  The
    first day's machines are on at t=0; later changes are decided at the
    day boundary and their On/Off overheads are charged there.  This is
    the paper's "example of coarse grain capacity planning".
    """
    daily_peaks = np.asarray(trace.per_day_max(), dtype=float)
    if np.any(daily_peaks < 0):
        raise ValueError("peak must be >= 0")
    # Vectorised big_machines_needed over all days; one Combination object
    # per distinct machine count (days sharing a count reuse it).
    counts = np.maximum(
        np.ceil(daily_peaks / big.max_perf - 1e-9).astype(np.int64), min_servers
    )
    spd = trace.samples_per_day
    combos: dict = {}

    def bigs(n: int) -> Combination:
        if n not in combos:
            combos[n] = _bigs(n, big)
        return combos[n]

    initial = bigs(int(counts[0]))
    change_days = np.flatnonzero(counts[1:] != counts[:-1]) + 1
    decisions: List[Tuple[int, Combination]] = [
        (int(day) * spd, bigs(int(counts[day]))) for day in change_days
    ]
    return build_plan(
        len(trace), initial, decisions, allow_overlap_trim=True
    )
