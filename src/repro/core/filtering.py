"""Step 2 of the BML methodology: sort architectures and drop dominated ones.

Building a BML infrastructure starts by sorting the profiled architectures
by decreasing maximum performance and checking that their maximum power
consumptions respect the same ordering.  Architectures are compared in
pairs: one that delivers *lower performance* while *consuming at least as
much power* as a faster one can never improve energy proportionality and is
removed from the BML candidates (in the paper this removes the illustrative
architecture D, and Taurus among the real machines).

The surviving candidates are labelled by decreasing performance.  With
three survivors the labels are the classic ``Big``, ``Medium``, ``Little``;
with other counts the middle tiers are numbered (``Medium-1`` being the
largest medium).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .profiles import ArchitectureProfile, ProfileError

__all__ = [
    "FilterResult",
    "sort_by_performance",
    "filter_dominated",
    "assign_roles",
    "bml_candidates",
]


@dataclass(frozen=True)
class FilterResult:
    """Outcome of Step 2.

    ``kept`` is sorted by decreasing ``max_perf``; ``removed`` maps each
    discarded architecture name to the name of the architecture that
    dominates it (for reporting, e.g. "D removed due to its poor energy
    efficiency compared to A").
    """

    kept: Tuple[ArchitectureProfile, ...]
    removed: Dict[str, str]
    roles: Dict[str, str]

    @property
    def big(self) -> ArchitectureProfile:
        """The most powerful surviving architecture."""
        return self.kept[0]

    @property
    def little(self) -> ArchitectureProfile:
        """The least powerful surviving architecture."""
        return self.kept[-1]

    def role_of(self, name: str) -> str:
        """Role label (``Big``/``Medium``/``Little``) of a kept architecture."""
        return self.roles[name]


def sort_by_performance(
    profiles: Iterable[ArchitectureProfile],
) -> List[ArchitectureProfile]:
    """Sort profiles by decreasing ``max_perf`` (ties: lower max power first).

    Duplicate names are rejected: the methodology identifies architectures
    by name throughout.
    """
    items = list(profiles)
    names = [p.name for p in items]
    if len(set(names)) != len(names):
        raise ProfileError(f"duplicate architecture names in {names}")
    return sorted(items, key=lambda p: (-p.max_perf, p.max_power, p.name))


def filter_dominated(
    profiles: Iterable[ArchitectureProfile],
) -> Tuple[List[ArchitectureProfile], Dict[str, str]]:
    """Remove architectures dominated by a faster, no-hungrier one.

    Returns the kept profiles (sorted by decreasing performance) and a map
    ``removed name -> dominator name``.  The scan keeps a running minimum of
    the max power seen among faster machines, which is equivalent to the
    paper's pairwise comparison of the sorted list.
    """
    ordered = sort_by_performance(profiles)
    kept: List[ArchitectureProfile] = []
    removed: Dict[str, str] = {}
    best_power_so_far = float("inf")
    best_holder = ""
    for prof in ordered:
        if prof.max_power >= best_power_so_far:
            removed[prof.name] = best_holder
            continue
        kept.append(prof)
        best_power_so_far = prof.max_power
        best_holder = prof.name
    return kept, removed


def assign_roles(kept: Sequence[ArchitectureProfile]) -> Dict[str, str]:
    """Label surviving candidates Big / Medium / Little by performance.

    One survivor is just ``Big``; two are ``Big``/``Little``; three map to
    the canonical triple; more than three number the middle tier
    ``Medium-1`` (largest) through ``Medium-k``.
    """
    n = len(kept)
    if n == 0:
        raise ProfileError("no BML candidates survived filtering")
    roles: Dict[str, str] = {}
    for i, prof in enumerate(kept):
        if i == 0:
            roles[prof.name] = "Big"
        elif i == n - 1:
            roles[prof.name] = "Little"
        elif n == 3:
            roles[prof.name] = "Medium"
        else:
            roles[prof.name] = f"Medium-{i}"
    return roles


def bml_candidates(profiles: Iterable[ArchitectureProfile]) -> FilterResult:
    """Run Step 2 end to end: sort, filter dominated, assign roles."""
    kept, removed = filter_dominated(profiles)
    roles = assign_roles(kept)
    return FilterResult(kept=tuple(kept), removed=removed, roles=roles)
