"""Facade running the 5-step BML design methodology end to end.

:func:`design` consumes raw architecture profiles (Step 1 output — either
the published Table I constants or the result of a
:mod:`repro.profiling` campaign) and produces a
:class:`BMLInfrastructure`: the surviving Big/Medium/Little candidates,
their minimum utilization thresholds, and combination builders/tables for
any target performance rate.

Typical use::

    from repro.core import bml, profiles

    infra = bml.design(profiles.table_i_profiles())
    infra.thresholds            # {'paravance': 529.0, 'chromebook': 10.0, 'raspberry': 1.0}
    combo = infra.combination_for(1400)
    combo.describe()            # '1xparavance + 2xchromebook + 1xraspberry'
    combo.power(1400)           # Watts
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .combination import (
    Combination,
    CombinationTable,
    build_table,
    greedy_combination,
    ideal_combination,
    ideal_table,
)
from .crossing import CrossingReport, compute_thresholds
from .filtering import FilterResult, bml_candidates
from .profiles import ArchitectureProfile, ProfileError

__all__ = ["BMLInfrastructure", "design"]


@dataclass
class BMLInfrastructure:
    """Result of the 5-step methodology for one application.

    Attributes
    ----------
    ordered:
        Surviving architectures, big to little.
    thresholds:
        Step 4 minimum utilization thresholds by architecture name.
    step3_thresholds:
        Intermediate Step 3 thresholds (before re-evaluation against mixed
        combinations), kept for the Fig. 2 reproduction.
    roles:
        ``name -> Big/Medium/Little`` labels.
    removed:
        ``name -> reason`` for every architecture eliminated in Steps 2-4
        (``"dominated by X"`` or ``"step3"``/``"step4"`` never-crosses).
    resolution:
        Grid step of the application metric used for thresholds/tables.
    """

    ordered: Tuple[ArchitectureProfile, ...]
    thresholds: Dict[str, float]
    step3_thresholds: Dict[str, float]
    roles: Dict[str, str]
    removed: Dict[str, str]
    resolution: float = 1.0
    _tables: Dict[Tuple[int, str], CombinationTable] = field(
        default_factory=dict, repr=False
    )

    # -- basic views ------------------------------------------------------
    @property
    def big(self) -> ArchitectureProfile:
        """The Big architecture."""
        return self.ordered[0]

    @property
    def little(self) -> ArchitectureProfile:
        """The Little architecture."""
        return self.ordered[-1]

    @property
    def names(self) -> Tuple[str, ...]:
        """Names of the surviving architectures, big to little."""
        return tuple(p.name for p in self.ordered)

    def profile(self, name: str) -> ArchitectureProfile:
        """Profile of a surviving architecture by name."""
        for p in self.ordered:
            if p.name == name:
                return p
        raise ProfileError(f"{name} is not part of the BML infrastructure")

    # -- combinations -------------------------------------------------------
    def combination_for(self, rate: float, method: str = "greedy") -> Combination:
        """Combination serving ``rate`` (``greedy`` = paper, ``ideal`` = DP)."""
        if method == "greedy":
            return greedy_combination(rate, self.ordered, self.thresholds)
        if method == "ideal":
            return ideal_combination(rate, self.ordered, self.resolution)
        raise ValueError(f"unknown method {method!r}")

    def table(self, max_rate: float, method: str = "greedy") -> CombinationTable:
        """Precomputed :class:`CombinationTable` up to ``max_rate`` (cached)."""
        units = int(math.ceil(max_rate / self.resolution - 1e-9))
        key = (units, method)
        if key not in self._tables:
            self._tables[key] = build_table(
                self.ordered,
                self.thresholds,
                units * self.resolution,
                self.resolution,
                method,
            )
        return self._tables[key]

    def power_curve(
        self, rates: Union[Sequence[float], np.ndarray], method: str = "greedy"
    ) -> np.ndarray:
        """Power of the BML combination at each rate (Fig. 4 series)."""
        rates = np.asarray(rates, dtype=float)
        table = self.table(float(np.max(rates)) if rates.size else 0.0, method)
        return np.asarray(table.power_for(rates), dtype=float)

    def ideal_power_curve(self, rates: Union[Sequence[float], np.ndarray]) -> np.ndarray:
        """Exact-DP optimal power at each rate (theoretical reference)."""
        rates = np.asarray(rates, dtype=float)
        max_rate = float(np.max(rates)) if rates.size else 0.0
        tbl = ideal_table(self.ordered, max_rate, self.resolution)
        idx = np.ceil(rates / self.resolution - 1e-9).astype(np.int64)
        return tbl[np.clip(idx, 0, len(tbl) - 1)]

    # -- references ----------------------------------------------------------
    def bml_linear_power(
        self, rates: Union[float, Sequence[float], np.ndarray]
    ) -> Union[float, np.ndarray]:
        """The paper's *BML linear* reference (Fig. 4).

        A straight line from (0, Little's idle power) to (Big's
        ``max_perf``, Big's ``max_power``): the best energy proportionality
        one could hope for with these machines.  Beyond Big's ``max_perf``
        the line continues with the same slope (stacked ideal Bigs).
        """
        r = np.asarray(rates, dtype=float)
        slope = (self.big.max_power - self.little.idle_power) / self.big.max_perf
        out = self.little.idle_power + slope * r
        return float(out) if np.ndim(rates) == 0 else out

    def describe(self) -> str:
        """Multi-line human-readable summary of the design outcome."""
        lines = ["BML infrastructure:"]
        for p in self.ordered:
            lines.append(
                f"  {self.roles[p.name]:>8}: {p.name} "
                f"(maxPerf={p.max_perf:g}, idle={p.idle_power:g} W, "
                f"max={p.max_power:g} W, threshold={self.thresholds[p.name]:g})"
            )
        for name, reason in self.removed.items():
            lines.append(f"  removed: {name} ({reason})")
        return "\n".join(lines)


def design(
    profiles: Iterable[ArchitectureProfile],
    resolution: float = 1.0,
) -> BMLInfrastructure:
    """Run Steps 2-4 on profiled architectures (Step 1 output).

    Step 5 is exposed through the returned infrastructure's
    :meth:`BMLInfrastructure.combination_for` / :meth:`BMLInfrastructure.table`.
    """
    if resolution <= 0:
        raise ProfileError("resolution must be > 0")
    filtered: FilterResult = bml_candidates(profiles)
    report: CrossingReport = compute_thresholds(list(filtered.kept), resolution)
    removed: Dict[str, str] = {
        name: f"dominated by {dom} (step2)" for name, dom in filtered.removed.items()
    }
    for name, step in report.removed.items():
        removed[name] = f"never crosses a smaller architecture ({step})"
    # Roles are re-assigned on the final survivors.
    from .filtering import assign_roles

    roles = assign_roles(report.kept)
    return BMLInfrastructure(
        ordered=report.kept,
        thresholds=dict(report.thresholds),
        step3_thresholds=dict(report.step3),
        roles=roles,
        removed=removed,
        resolution=resolution,
    )
