"""Facade running the 5-step BML design methodology end to end.

:func:`design` consumes raw architecture profiles (Step 1 output — either
the published Table I constants or the result of a
:mod:`repro.profiling` campaign) and produces a
:class:`BMLInfrastructure`: the surviving Big/Medium/Little candidates,
their minimum utilization thresholds, and combination builders/tables for
any target performance rate.

Typical use::

    from repro.core import bml, profiles

    infra = bml.design(profiles.table_i_profiles())
    infra.thresholds            # {'paravance': 529.0, 'chromebook': 10.0, 'raspberry': 1.0}
    combo = infra.combination_for(1400)
    combo.describe()            # '1xparavance + 2xchromebook + 1xraspberry'
    combo.power(1400)           # Watts
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .combination import (
    Combination,
    CombinationTable,
    build_table,
    greedy_combination,
    ideal_combination,
    ideal_table,
)
from .crossing import CrossingReport, compute_thresholds
from .filtering import FilterResult, bml_candidates
from .profiles import ArchitectureProfile, ProfileError

__all__ = ["BMLInfrastructure", "design"]


@dataclass
class BMLInfrastructure:
    """Result of the 5-step methodology for one application.

    Attributes
    ----------
    ordered:
        Surviving architectures, big to little.
    thresholds:
        Step 4 minimum utilization thresholds by architecture name.
    step3_thresholds:
        Intermediate Step 3 thresholds (before re-evaluation against mixed
        combinations), kept for the Fig. 2 reproduction.
    roles:
        ``name -> Big/Medium/Little`` labels.
    removed:
        ``name -> reason`` for every architecture eliminated in Steps 2-4
        (``"dominated by X"`` or ``"step3"``/``"step4"`` never-crosses).
    resolution:
        Grid step of the application metric used for thresholds/tables.
    """

    ordered: Tuple[ArchitectureProfile, ...]
    thresholds: Dict[str, float]
    step3_thresholds: Dict[str, float]
    roles: Dict[str, str]
    removed: Dict[str, str]
    resolution: float = 1.0
    #: Largest table built so far per (method, inventory, app_spec) key;
    #: smaller requests are served as array views of these (monotone reuse).
    _tables: Dict[Tuple, CombinationTable] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Memoised truncated views per key, replaced wholesale when the
    #: backing table grows (stale views must not pin superseded arrays).
    _table_views: Dict[Tuple, Dict[int, CombinationTable]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Cache telemetry: a hit means plan()/power_curve() reused a table
    #: without any construction work (see tests/core/test_bml.py).
    table_cache_hits: int = field(default=0, repr=False, compare=False)
    table_cache_misses: int = field(default=0, repr=False, compare=False)

    # -- basic views ------------------------------------------------------
    @property
    def big(self) -> ArchitectureProfile:
        """The Big architecture."""
        return self.ordered[0]

    @property
    def little(self) -> ArchitectureProfile:
        """The Little architecture."""
        return self.ordered[-1]

    @property
    def names(self) -> Tuple[str, ...]:
        """Names of the surviving architectures, big to little."""
        return tuple(p.name for p in self.ordered)

    def profile(self, name: str) -> ArchitectureProfile:
        """Profile of a surviving architecture by name."""
        for p in self.ordered:
            if p.name == name:
                return p
        raise ProfileError(f"{name} is not part of the BML infrastructure")

    # -- combinations -------------------------------------------------------
    def combination_for(self, rate: float, method: str = "greedy") -> Combination:
        """Combination serving ``rate`` (``greedy`` = paper, ``ideal`` = DP)."""
        if method == "greedy":
            return greedy_combination(rate, self.ordered, self.thresholds)
        if method == "ideal":
            return ideal_combination(rate, self.ordered, self.resolution)
        raise ValueError(f"unknown method {method!r}")

    def table(
        self,
        max_rate: float,
        method: str = "greedy",
        inventory: Optional[Dict[str, int]] = None,
        app_spec: Optional[object] = None,
    ) -> CombinationTable:
        """Precomputed :class:`CombinationTable` up to ``max_rate`` (cached).

        Tables are memoised per ``(method, inventory, app_spec)`` key with
        *monotone reuse*: a table built for a larger ``max_rate`` serves any
        smaller request as a zero-copy array view, and fresh builds round
        the size up to a power-of-two bucket (capped at the inventory's /
        instance bound's reachable capacity) so repeated nearby requests
        coalesce.  ``inventory`` bounds machine counts per architecture;
        ``app_spec`` (instance bounds) switches to the constrained builder
        and takes precedence over ``method``.  Hits and misses are counted
        on :attr:`table_cache_hits` / :attr:`table_cache_misses`.
        """
        units = int(math.ceil(max_rate / self.resolution - 1e-9))
        key = (
            "constrained" if app_spec is not None else method,
            None
            if inventory is None
            else tuple(sorted((str(k), int(v)) for k, v in inventory.items())),
            None
            if app_spec is None
            else (int(app_spec.min_instances), app_spec.max_instances),
        )
        base = self._tables.get(key)
        if base is None or len(base) < units + 1:
            self.table_cache_misses += 1
            build_units = self._bucket_units(units, inventory, app_spec)
            base = self._build_table(build_units, method, inventory, app_spec)
            self._tables[key] = base
            # Views of a superseded base would pin its arrays; drop them.
            self._table_views[key] = {}
        else:
            self.table_cache_hits += 1
        views = self._table_views.setdefault(key, {})
        view = views.get(units)
        if view is None:
            view = base.truncated(units)
            views[units] = view
        return view

    def _bucket_units(
        self,
        units: int,
        inventory: Optional[Dict[str, int]],
        app_spec: Optional[object],
    ) -> int:
        """Round a requested grid size up to its cache bucket.

        Power-of-two buckets amortise monotone growth; the bucket never
        exceeds the largest reachable rate (inventory capacity or
        ``max_instances`` times the biggest machine) and never shrinks
        below the request (infeasible requests must raise as before).
        """
        bucket = 1 << max(units, 256).bit_length()
        cap_units: Optional[int] = None
        if inventory is not None:
            cap = sum(
                p.max_perf * int(inventory.get(p.name, 0)) for p in self.ordered
            )
            cap_units = int(math.floor(cap / self.resolution + 1e-9))
        elif app_spec is not None:
            max_instances = app_spec.max_instances
            if max_instances is not None:
                cap = max_instances * max(p.max_perf for p in self.ordered)
                cap_units = int(math.floor(cap / self.resolution + 1e-9))
        if cap_units is not None:
            bucket = min(bucket, cap_units)
        return max(bucket, units)

    def _build_table(
        self,
        units: int,
        method: str,
        inventory: Optional[Dict[str, int]],
        app_spec: Optional[object],
    ) -> CombinationTable:
        if app_spec is not None:
            from .constraints import constrained_table

            base = None
            if app_spec.max_instances is None:
                # The unconstrained entries are the plain exact-DP optima:
                # serve them from the memoised "ideal" table instead of
                # letting constrained_table rebuild that DP per call.
                base = self.table(units * self.resolution, "ideal")
            return constrained_table(
                self.ordered,
                app_spec,
                units * self.resolution,
                self.resolution,
                base_table=base,
            )
        return build_table(
            self.ordered,
            self.thresholds,
            units * self.resolution,
            self.resolution,
            method,
            inventory=inventory,
        )

    def power_curve(
        self, rates: Union[Sequence[float], np.ndarray], method: str = "greedy"
    ) -> np.ndarray:
        """Power of the BML combination at each rate (Fig. 4 series)."""
        rates = np.asarray(rates, dtype=float)
        table = self.table(float(np.max(rates)) if rates.size else 0.0, method)
        return np.asarray(table.power_for(rates), dtype=float)

    def ideal_power_curve(self, rates: Union[Sequence[float], np.ndarray]) -> np.ndarray:
        """Exact-DP optimal power at each rate (theoretical reference)."""
        rates = np.asarray(rates, dtype=float)
        max_rate = float(np.max(rates)) if rates.size else 0.0
        tbl = ideal_table(self.ordered, max_rate, self.resolution)
        idx = np.ceil(rates / self.resolution - 1e-9).astype(np.int64)
        return tbl[np.clip(idx, 0, len(tbl) - 1)]

    # -- references ----------------------------------------------------------
    def bml_linear_power(
        self, rates: Union[float, Sequence[float], np.ndarray]
    ) -> Union[float, np.ndarray]:
        """The paper's *BML linear* reference (Fig. 4).

        A straight line from (0, Little's idle power) to (Big's
        ``max_perf``, Big's ``max_power``): the best energy proportionality
        one could hope for with these machines.  Beyond Big's ``max_perf``
        the line continues with the same slope (stacked ideal Bigs).
        """
        r = np.asarray(rates, dtype=float)
        slope = (self.big.max_power - self.little.idle_power) / self.big.max_perf
        out = self.little.idle_power + slope * r
        return float(out) if np.ndim(rates) == 0 else out

    def describe(self) -> str:
        """Multi-line human-readable summary of the design outcome."""
        lines = ["BML infrastructure:"]
        for p in self.ordered:
            lines.append(
                f"  {self.roles[p.name]:>8}: {p.name} "
                f"(maxPerf={p.max_perf:g}, idle={p.idle_power:g} W, "
                f"max={p.max_power:g} W, threshold={self.thresholds[p.name]:g})"
            )
        for name, reason in self.removed.items():
            lines.append(f"  removed: {name} ({reason})")
        return "\n".join(lines)


def design(
    profiles: Iterable[ArchitectureProfile],
    resolution: float = 1.0,
) -> BMLInfrastructure:
    """Run Steps 2-4 on profiled architectures (Step 1 output).

    Step 5 is exposed through the returned infrastructure's
    :meth:`BMLInfrastructure.combination_for` / :meth:`BMLInfrastructure.table`.
    """
    if resolution <= 0:
        raise ProfileError("resolution must be > 0")
    filtered: FilterResult = bml_candidates(profiles)
    report: CrossingReport = compute_thresholds(list(filtered.kept), resolution)
    removed: Dict[str, str] = {
        name: f"dominated by {dom} (step2)" for name, dom in filtered.removed.items()
    }
    for name, step in report.removed.items():
        removed[name] = f"never crosses a smaller architecture ({step})"
    # Roles are re-assigned on the final survivors.
    from .filtering import assign_roles

    roles = assign_roles(report.kept)
    return BMLInfrastructure(
        ordered=report.kept,
        thresholds=dict(report.thresholds),
        step3_thresholds=dict(report.step3),
        roles=roles,
        removed=removed,
        resolution=resolution,
    )
