"""Transition-aware scheduling (the paper's Sec. VI future work).

The baseline BML policy always jumps to the precomputed ideal combination
the moment the prediction asks for a different one.  The conclusion of
the paper sketches the refinement implemented here: "it is also worth
considering other hardware combinations than pre-computed BML
combinations as reconfiguration possibilities, and take in account their
corresponding overheads when taking reconfiguration decisions".

:class:`TransitionAwareScheduler` therefore evaluates, at every decision
point, a small set of candidate targets:

* the **ideal** combination for the predicted rate (the baseline's only
  choice);
* **staying** on the current combination, when it can still serve the
  prediction — hysteresis: a Big that would be shut down and re-booted
  minutes later is kept idling instead;
* the **union** of current and ideal (boot what is missing, shut nothing
  down) — halves the blocking window on oscillating loads.

Each candidate is scored over an amortisation horizon (default: the
prediction window) as *switching energy + serving energy over the
horizon*, and the cheapest feasible candidate wins.  With overheads worth
seconds of idling (Table I's Paravance boot costs 21.3 kJ — five minutes
of its idle draw) this prunes most of the reconfiguration thrash the
baseline exhibits on bursty traces, at zero QoS cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.energy import combination_power
from ..workload.trace import LoadTrace
from .bml import BMLInfrastructure
from .combination import Combination, CombinationTable
from .prediction import LookAheadMaxPredictor, Predictor
from .reconfiguration import SchedulePlan, build_plan, reconfiguration_window
from .scheduler import ScheduleOutcome, _next_decision, _row_ids

__all__ = ["TransitionAwareScheduler", "transition_cost"]


def transition_cost(current: Combination, target: Combination) -> float:
    """Energy overhead (J) of moving from ``current`` to ``target``.

    Boot and shutdown energies of the changed machines, plus the idle
    energy of early-booted machines waiting for the slowest boot (the
    make-before-break hand-over).
    """
    if current == target:
        return 0.0
    delta = current.diff(target)
    profs = {p.name: p for p in current.profiles + target.profiles}
    boot_dur, _ = reconfiguration_window(current, target)
    cost = 0.0
    for name, d in delta.items():
        p = profs[name]
        if d > 0:
            waiting = boot_dur - int(math.ceil(p.on_time - 1e-9))
            cost += d * (p.on_energy + waiting * p.idle_power)
        else:
            cost += -d * p.off_energy
    return cost


@dataclass
class TransitionAwareScheduler:
    """Pro-active scheduler that amortises switching overheads.

    Drop-in alternative to :class:`~repro.core.scheduler.BMLScheduler`
    (same ``plan`` / ``plan_detailed`` interface, same plan executor).

    Parameters
    ----------
    infra / predictor / method:
        As in the baseline scheduler.
    horizon:
        Amortisation horizon in seconds; switching costs are weighed
        against serving-energy differences over this span.  ``None``
        (default) uses the predictor's window when it has one, else 378 s.
    consider_union:
        Also evaluate the no-shutdown union candidate.
    recheck_interval:
        When "stay" wins, the next evaluation happens after this many
        seconds (prevents re-scoring every second of a long oscillation).
    """

    infra: BMLInfrastructure
    predictor: Predictor = field(default_factory=LookAheadMaxPredictor)
    method: str = "greedy"
    horizon: Optional[int] = None
    consider_union: bool = True
    recheck_interval: int = 60

    def __post_init__(self) -> None:
        if self.horizon is not None and self.horizon < 1:
            raise ValueError("horizon must be >= 1 second")
        if self.recheck_interval < 1:
            raise ValueError("recheck_interval must be >= 1 second")

    def _effective_horizon(self) -> int:
        if self.horizon is not None:
            return self.horizon
        return int(getattr(self.predictor, "window", 378))

    # ------------------------------------------------------------------
    def plan(self, trace: LoadTrace) -> SchedulePlan:
        """Plan the whole trace (see :meth:`plan_detailed`)."""
        return self.plan_detailed(trace).plan

    def plan_detailed(self, trace: LoadTrace) -> ScheduleOutcome:
        """Decision loop with candidate scoring at every change point."""
        horizon = len(trace)
        window = self._effective_horizon()
        pred = self.predictor.series(trace)
        max_rate = float(max(pred.max(), trace.peak))
        table = self.infra.table(max_rate, self.method)
        loads = trace.values

        counts = table.counts_for(pred)
        cid = _row_ids(counts)
        changes = np.flatnonzero(cid[1:] != cid[:-1]) + 1

        initial = table.combination_for(float(pred[0]))
        current = initial
        cur_id: Optional[int] = int(cid[0])

        decisions: List[Tuple[int, Combination]] = []
        t = 0
        while t < horizon:
            td = _next_decision(cid, changes, t, cur_id)
            if td is None:
                break
            ideal = table.combination_for(float(pred[td]))
            target = self._choose(current, ideal, pred, loads, td, window, table)
            if target == current:
                # hysteresis: stay; look again a bit later (or at the next
                # combination change, whichever is sooner-but-after t)
                cur_id = None  # force re-evaluation at the next change
                t = td + self.recheck_interval
                continue
            decisions.append((td, target))
            boot, off = reconfiguration_window(current, target)
            current = target
            # Ideal targets map to a table row, so the loop can jump to the
            # next change point; union targets are off-table and force a
            # re-evaluation at the next opportunity.
            cur_id = int(cid[td]) if target == ideal else None
            t = td + max(boot + off, 1)
        return ScheduleOutcome(
            plan=build_plan(horizon, initial, decisions),
            predictions=pred,
            table=table,
        )

    # ------------------------------------------------------------------
    def _choose(
        self,
        current: Combination,
        ideal: Combination,
        pred: np.ndarray,
        loads: np.ndarray,
        td: int,
        window: int,
        table: Optional[CombinationTable] = None,
    ) -> Combination:
        """Score the candidates over ``[td, td + window)`` and pick one.

        Two-phase scoring: a candidate serves until the prediction first
        exceeds its capacity; from that point the score charges the
        follow-up switch to the then-ideal combination plus that
        combination's serving energy — so "stay small and re-boot later"
        and "keep the big machine idling" are compared on equal terms.
        """
        end = min(td + window, len(loads))
        span_loads = loads[td:end]
        span_pred = pred[td:end]
        peak_needed = float(pred[td])

        candidates: List[Combination] = [ideal]
        if current.capacity >= peak_needed - 1e-9:
            candidates.append(current)
        if self.consider_union and current != ideal:
            union = current.union_max(ideal)
            if union != ideal and union != current:
                candidates.append(union)

        best = ideal
        best_cost = math.inf
        for cand in candidates:
            cost = transition_cost(current, cand) + self._two_phase_energy(
                cand, span_loads, span_pred, table
            )
            if cost < best_cost - 1e-9:
                best_cost = cost
                best = cand
        return best

    def _two_phase_energy(
        self,
        cand: Combination,
        span_loads: np.ndarray,
        span_pred: np.ndarray,
        table: Optional[CombinationTable],
    ) -> float:
        """Serving energy of ``cand`` with an anticipated follow-up switch."""
        over = span_pred > cand.capacity + 1e-9
        viol = int(np.argmax(over)) if np.any(over) else len(span_loads)
        served = np.minimum(span_loads[:viol], cand.capacity)
        energy = float(np.sum(combination_power(cand, served)))
        if viol < len(span_loads) and table is not None:
            successor = table.combination_for(float(span_pred[viol]))
            energy += transition_cost(cand, successor)
            tail = np.minimum(span_loads[viol:], successor.capacity)
            energy += float(np.sum(combination_power(successor, tail)))
        return energy
