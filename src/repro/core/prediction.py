"""Load predictors driving the proactive scheduler.

The paper *emulates* a prediction mechanism: at each decision time the
predicted target rate is the **maximum of the real trace over a sliding
look-ahead window** of 378 s (two times the longest switch-on duration, so
a machine switched on for a predicted peak is ready before the peak
arrives).  :class:`LookAheadMaxPredictor` implements exactly that.

Sec. III classifies load knowledge as *perfect*, *partial* or *unknown*;
the extra predictors cover those regimes and power the future-work study
on prediction errors (ablation A3):

* :class:`PerfectPredictor` — clairvoyant instantaneous load (window 1);
* :class:`TrailingMaxPredictor` — reactive: holds the recent peak, no
  oracle knowledge;
* :class:`EWMAPredictor` — reactive exponentially weighted average with a
  safety margin;
* :class:`NoisyPredictor` — wraps any predictor with multiplicative
  (log-normal) error and optional bias, modelling imperfect forecasts.

Every predictor exposes :meth:`Predictor.series`, the full per-second
prediction vector, so the scheduler's hot path stays vectorised.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..workload.sliding import lookahead_max, trailing_max
from ..workload.trace import LoadTrace

__all__ = [
    "Predictor",
    "LookAheadMaxPredictor",
    "PerfectPredictor",
    "TrailingMaxPredictor",
    "EWMAPredictor",
    "NoisyPredictor",
    "paper_window",
]

ArrayOrTrace = Union[np.ndarray, LoadTrace]


def _values(load: ArrayOrTrace) -> np.ndarray:
    if isinstance(load, LoadTrace):
        return load.values
    arr = np.asarray(load, dtype=float)
    if arr.ndim != 1:
        raise ValueError("load series must be 1-D")
    return arr


def paper_window(profiles, factor: float = 2.0) -> int:
    """The paper's look-ahead window: ``factor`` x the longest On duration.

    With Table I this is ``2 x 189 s = 378 s``.
    """
    longest = max(p.on_time for p in profiles)
    return max(1, int(round(factor * longest)))


class Predictor(abc.ABC):
    """Maps a load series to a per-time-step predicted target rate."""

    #: Human-readable name used in reports and ablation tables.
    name: str = "predictor"

    @abc.abstractmethod
    def series(self, load: ArrayOrTrace) -> np.ndarray:
        """Predicted target rate for every time step of ``load``."""

    def predict(self, load: ArrayOrTrace, t: int) -> float:
        """Prediction at one time step (convenience; series() is the API)."""
        return float(self.series(load)[t])


@dataclass
class LookAheadMaxPredictor(Predictor):
    """The paper's emulated predictor: max over the next ``window`` seconds.

    ``window`` defaults to 378 s = 2 x the longest On duration of Table I.
    """

    window: int = 378

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 second")
        self.name = f"lookahead-max({self.window}s)"

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        return lookahead_max(_values(load), self.window)


@dataclass
class PerfectPredictor(Predictor):
    """Clairvoyant instantaneous load (equivalent to a window of 1 s)."""

    def __post_init__(self) -> None:
        self.name = "perfect"

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        return _values(load).copy()


@dataclass
class TrailingMaxPredictor(Predictor):
    """Reactive: the maximum load seen over the past ``window`` seconds.

    No oracle knowledge — this is what a real deployment can compute.  It
    lags rising edges by design, which the QoS accounting then exposes.
    """

    window: int = 378

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 second")
        self.name = f"trailing-max({self.window}s)"

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        return trailing_max(_values(load), self.window)


@dataclass
class EWMAPredictor(Predictor):
    """Reactive EWMA with a multiplicative safety ``headroom``.

    ``prediction[t] = headroom * ewma(load[:t])`` (the EWMA of the *past*
    only; the first step predicts the first sample).
    """

    alpha: float = 0.01
    headroom: float = 1.2

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.headroom <= 0:
            raise ValueError("headroom must be > 0")
        self.name = f"ewma(a={self.alpha:g},h={self.headroom:g})"

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        arr = _values(load)
        out = np.empty_like(arr)
        try:
            from scipy.signal import lfilter

            # EWMA as an IIR filter seeded with the first sample.
            b, a = [self.alpha], [1.0, -(1.0 - self.alpha)]
            zi = np.array([(1.0 - self.alpha) * arr[0]])
            ew, _ = lfilter(b, a, arr, zi=zi)
        except Exception:  # pragma: no cover - scipy present in test env
            ew = np.empty_like(arr)
            acc = arr[0]
            for i, v in enumerate(arr):
                acc = self.alpha * v + (1 - self.alpha) * acc
                ew[i] = acc
        # Shift by one step: the prediction for t uses data up to t-1.
        out[0] = arr[0] * self.headroom
        out[1:] = ew[:-1] * self.headroom
        return out


@dataclass
class NoisyPredictor(Predictor):
    """Wraps a predictor with log-normal relative error and bias.

    ``prediction'[t] = prediction[t] * bias * lognormal(sigma)``; the
    future-work study (A3) sweeps ``sigma`` to measure how prediction error
    degrades energy and QoS.  Deterministic given ``seed``.
    """

    base: Predictor = field(default_factory=LookAheadMaxPredictor)
    sigma: float = 0.1
    bias: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if self.bias <= 0:
            raise ValueError("bias must be > 0")
        self.name = f"noisy({self.base.name},s={self.sigma:g},b={self.bias:g})"

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        clean = self.base.series(load)
        if self.sigma == 0 and self.bias == 1.0:
            return clean
        rng = np.random.default_rng(self.seed)
        noise = rng.lognormal(
            mean=-0.5 * self.sigma**2, sigma=self.sigma, size=clean.shape
        )
        return np.maximum(clean * self.bias * noise, 0.0)
