"""Load predictors driving the proactive scheduler.

The paper *emulates* a prediction mechanism: at each decision time the
predicted target rate is the **maximum of the real trace over a sliding
look-ahead window** of 378 s (two times the longest switch-on duration, so
a machine switched on for a predicted peak is ready before the peak
arrives).  :class:`LookAheadMaxPredictor` implements exactly that.

Sec. III classifies load knowledge as *perfect*, *partial* or *unknown*;
the extra predictors cover those regimes and power the future-work study
on prediction errors (ablation A3):

* :class:`PerfectPredictor` — clairvoyant instantaneous load (window 1);
* :class:`TrailingMaxPredictor` — reactive: holds the recent peak, no
  oracle knowledge;
* :class:`EWMAPredictor` — reactive exponentially weighted average with a
  safety margin;
* :class:`NoisyPredictor` — wraps any predictor with multiplicative
  (log-normal) error and optional bias, modelling imperfect forecasts.

Every predictor exposes :meth:`Predictor.series`, the full per-second
prediction vector, so the scheduler's hot path stays vectorised.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..workload.sliding import lookahead_max, trailing_max
from ..workload.trace import LoadTrace

__all__ = [
    "Predictor",
    "LookAheadMaxPredictor",
    "PerfectPredictor",
    "TrailingMaxPredictor",
    "EWMAPredictor",
    "NoisyPredictor",
    "paper_window",
    "cached_prediction_series",
    "prediction_cache_stats",
    "clear_prediction_cache",
]

ArrayOrTrace = Union[np.ndarray, LoadTrace]


def _values(load: ArrayOrTrace) -> np.ndarray:
    if isinstance(load, LoadTrace):
        return load.values
    arr = np.asarray(load, dtype=float)
    if arr.ndim != 1:
        raise ValueError("load series must be 1-D")
    return arr


def paper_window(profiles, factor: float = 2.0) -> int:
    """The paper's look-ahead window: ``factor`` x the longest On duration.

    With Table I this is ``2 x 189 s = 378 s``.
    """
    longest = max(p.on_time for p in profiles)
    return max(1, int(round(factor * longest)))


class Predictor(abc.ABC):
    """Maps a load series to a per-time-step predicted target rate."""

    #: Human-readable name used in reports and ablation tables.
    name: str = "predictor"

    @property
    def cache_token(self) -> Optional[tuple]:
        """Hashable token identifying this predictor's *function*.

        Two predictor instances with equal tokens must produce
        bit-identical :meth:`series` output for the same trace — the
        token is the predictor part of the process-wide series-cache key
        (``name`` is not safe: e.g. :class:`NoisyPredictor` omits its
        seed from the display name).  ``None`` opts out of caching;
        subclasses that are pure functions of their parameters override.
        """
        return None

    @abc.abstractmethod
    def series(self, load: ArrayOrTrace) -> np.ndarray:
        """Predicted target rate for every time step of ``load``."""

    def predict(self, load: ArrayOrTrace, t: int) -> float:
        """Prediction at one time step (convenience; series() is the API)."""
        return float(self.series(load)[t])


@dataclass
class LookAheadMaxPredictor(Predictor):
    """The paper's emulated predictor: max over the next ``window`` seconds.

    ``window`` defaults to 378 s = 2 x the longest On duration of Table I.
    """

    window: int = 378

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 second")
        self.name = f"lookahead-max({self.window}s)"

    @property
    def cache_token(self) -> tuple:
        return ("lookahead-max", self.window)

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        return lookahead_max(_values(load), self.window)


@dataclass
class PerfectPredictor(Predictor):
    """Clairvoyant instantaneous load (equivalent to a window of 1 s)."""

    def __post_init__(self) -> None:
        self.name = "perfect"

    @property
    def cache_token(self) -> tuple:
        return ("perfect",)

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        return _values(load).copy()


@dataclass
class TrailingMaxPredictor(Predictor):
    """Reactive: the maximum load seen over the past ``window`` seconds.

    No oracle knowledge — this is what a real deployment can compute.  It
    lags rising edges by design, which the QoS accounting then exposes.
    """

    window: int = 378

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1 second")
        self.name = f"trailing-max({self.window}s)"

    @property
    def cache_token(self) -> tuple:
        return ("trailing-max", self.window)

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        return trailing_max(_values(load), self.window)


@dataclass
class EWMAPredictor(Predictor):
    """Reactive EWMA with a multiplicative safety ``headroom``.

    ``prediction[t] = headroom * ewma(load[:t])`` (the EWMA of the *past*
    only; the first step predicts the first sample).
    """

    alpha: float = 0.01
    headroom: float = 1.2

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.headroom <= 0:
            raise ValueError("headroom must be > 0")
        self.name = f"ewma(a={self.alpha:g},h={self.headroom:g})"

    @property
    def cache_token(self) -> tuple:
        return ("ewma", self.alpha, self.headroom)

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        arr = _values(load)
        out = np.empty_like(arr)
        try:
            from scipy.signal import lfilter

            # EWMA as an IIR filter seeded with the first sample.
            b, a = [self.alpha], [1.0, -(1.0 - self.alpha)]
            zi = np.array([(1.0 - self.alpha) * arr[0]])
            ew, _ = lfilter(b, a, arr, zi=zi)
        except Exception:  # pragma: no cover - scipy present in test env
            ew = np.empty_like(arr)
            acc = arr[0]
            for i, v in enumerate(arr):
                acc = self.alpha * v + (1 - self.alpha) * acc
                ew[i] = acc
        # Shift by one step: the prediction for t uses data up to t-1.
        out[0] = arr[0] * self.headroom
        out[1:] = ew[:-1] * self.headroom
        return out


@dataclass
class NoisyPredictor(Predictor):
    """Wraps a predictor with log-normal relative error and bias.

    ``prediction'[t] = prediction[t] * bias * lognormal(sigma)``; the
    future-work study (A3) sweeps ``sigma`` to measure how prediction error
    degrades energy and QoS.  Deterministic given ``seed``.
    """

    base: Predictor = field(default_factory=LookAheadMaxPredictor)
    sigma: float = 0.1
    bias: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if self.bias <= 0:
            raise ValueError("bias must be > 0")
        self.name = f"noisy({self.base.name},s={self.sigma:g},b={self.bias:g})"

    @property
    def cache_token(self) -> Optional[tuple]:
        # Deterministic given ``seed`` — cacheable iff the base is, and
        # the seed must be part of the key (the display name drops it).
        base_token = self.base.cache_token
        if base_token is None:
            return None
        return ("noisy", base_token, self.sigma, self.bias, self.seed)

    def series(self, load: ArrayOrTrace) -> np.ndarray:
        clean = self.base.series(load)
        if self.sigma == 0 and self.bias == 1.0:
            return clean
        rng = np.random.default_rng(self.seed)
        noise = rng.lognormal(
            mean=-0.5 * self.sigma**2, sigma=self.sigma, size=clean.shape
        )
        return np.maximum(clean * self.bias * noise, 0.0)


# ---------------------------------------------------------------------------
# Process-wide prediction-series cache
# ---------------------------------------------------------------------------
#
# The sliding-maximum filter is the second-largest cost of a year-scale
# two-phase replay (~1.3 s per run on the reference box), and sweep grids
# over scheduler/inventory axes recompute it per grid point for the *same*
# workload.  The cache memoises the fully post-processed series — filter
# output plus the bounded-cluster clamp — keyed by
# ``(trace content digest, trace timestep, predictor cache_token, clamp)``,
# so any replay over an equal-content trace pays the filter once.
#
# Entries are stored read-only with a sampled CRC self-check (head + tail
# of the buffer) so accidental in-process corruption is detected and the
# entry rebuilt rather than trusted; the ``predict-cache`` fault site
# deliberately poisons entries at store time to prove that path.

#: Lazily constructed :class:`repro.sim.energy.TelemetryLRU` (imported at
#: call time: ``repro.sim`` imports this module at package init).
_SERIES_CACHE = None
_SERIES_CACHE_MAXSIZE = 64
_SERIES_REBUILDS = 0


def _series_cache():
    global _SERIES_CACHE
    if _SERIES_CACHE is None:
        from ..sim.energy import TelemetryLRU

        _SERIES_CACHE = TelemetryLRU(maxsize=_SERIES_CACHE_MAXSIZE)
    return _SERIES_CACHE


def _series_checksum(series: np.ndarray) -> int:
    """Sampled integrity check: CRC of the buffer's head and tail.

    A full-buffer CRC would cost ~100 ms per hit on a year series and
    defeat the cache; sampling the first/last 256 samples plus the length
    is enough to catch truncation and the torn-write/bit-rot class of
    corruption this guards against.
    """
    import zlib

    head = np.ascontiguousarray(series[:256])
    tail = np.ascontiguousarray(series[-256:])
    crc = zlib.crc32(memoryview(head))
    crc = zlib.crc32(memoryview(tail), crc)
    return zlib.crc32(len(series).to_bytes(8, "little"), crc)


def _compute_series(
    predictor: Predictor, trace: ArrayOrTrace, clamp: Optional[float]
) -> np.ndarray:
    pred = predictor.series(trace)
    if clamp is not None:
        pred = np.minimum(pred, clamp)
    return pred


def cached_prediction_series(
    predictor: Predictor,
    trace: ArrayOrTrace,
    clamp: Optional[float] = None,
) -> np.ndarray:
    """Memoised ``predictor.series(trace)`` with an optional upper clamp.

    Returns the post-processed prediction series (``np.minimum`` with
    ``clamp`` applied when given — the bounded-cluster cap of the replay
    loop).  When the predictor declares a :attr:`Predictor.cache_token`
    and ``trace`` is a :class:`LoadTrace`, results are served from a
    process-wide LRU keyed by trace content; cached arrays are read-only
    and bit-identical to a fresh computation.  Predictors without a
    token (or raw ndarray inputs) fall through to direct computation.
    """
    token = predictor.cache_token
    if token is None or not isinstance(trace, LoadTrace):
        return _compute_series(predictor, trace, clamp)

    from .. import faults

    global _SERIES_REBUILDS
    cache = _series_cache()
    key = (
        trace.content_digest(),
        float(trace.timestep),
        token,
        None if clamp is None else float(clamp),
    )
    entry = cache.get(key)
    if entry is not None:
        series, checksum = entry
        if _series_checksum(series) == checksum:
            return series
        # Damaged entry (bit rot / injected poison): drop, rebuild, restore.
        _SERIES_REBUILDS += 1
        cache.pop(key)

    series = _compute_series(predictor, trace, clamp)
    if series.base is not None or not series.flags.owndata:
        series = series.copy()
    series.setflags(write=False)
    checksum = _series_checksum(series)
    stored = series
    if faults.check("predict-cache", trace.name):
        # Poison the stored copy (not the returned series): flip the
        # first sample so the sampled CRC no longer matches.
        stored = series.copy()
        stored[0] = stored[0] + 1.0 if stored[0] == 0.0 else -stored[0]
        stored.setflags(write=False)
    cache.put(key, (stored, checksum))
    return series


def prediction_cache_stats() -> dict:
    """Telemetry for ``repro cache-stats``: hits/misses/size + rebuilds."""
    stats = dict(_series_cache().stats())
    stats["rebuilds"] = _SERIES_REBUILDS
    return stats


def clear_prediction_cache() -> None:
    """Drop every cached series and reset telemetry (tests, forks)."""
    global _SERIES_REBUILDS
    _series_cache().clear()
    _SERIES_REBUILDS = 0
