"""The paper's pro-active BML scheduler (Sec. V-C).

At every time step the scheduler takes the predicted load (by default the
maximum of the trace over a 378 s look-ahead window — twice the longest
switch-on duration), computes the corresponding ideal BML combination, and
— when that combination differs from the current one — decides a
reconfiguration.  While a reconfiguration is in flight no other decision
can be made; the next prediction window starts from the reconfiguration's
completion time.  When nothing changes, the window simply slides one time
step forward.

Implementation note: the decision loop never walks the trace second by
second.  Predictions are vectorised (sliding maximum), rates map to
combination identifiers through the precomputed
:class:`~repro.core.combination.CombinationTable`, and the loop jumps
straight from one decision to the next change point, so planning an
87-day 1 Hz trace costs milliseconds per reconfiguration, not per second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..workload.trace import LoadTrace
from .bml import BMLInfrastructure
from .combination import Combination, CombinationTable
from .prediction import LookAheadMaxPredictor, Predictor
from .reconfiguration import SchedulePlan, build_plan, reconfiguration_window

__all__ = ["BMLScheduler", "ScheduleOutcome"]


@dataclass(frozen=True)
class ScheduleOutcome:
    """A plan plus the planning-time series used to derive it."""

    plan: SchedulePlan
    predictions: np.ndarray
    table: CombinationTable


@dataclass
class BMLScheduler:
    """Pro-active scheduler producing a :class:`SchedulePlan` for a trace.

    Parameters
    ----------
    infra:
        The designed BML infrastructure (Steps 1-4 output).
    predictor:
        Load predictor; defaults to the paper's 378 s look-ahead maximum.
    method:
        Combination builder for sizing (``"greedy"`` = paper Step 5,
        ``"ideal"`` = exact DP).
    initial:
        Combination already running at t=0.  ``None`` (default) starts
        with the combination matching the first prediction, with no boot
        cost — the paper's replays likewise begin in steady state.
    inventory:
        Optional per-architecture machine limits (the paper's "existing
        heterogeneous infrastructure" variant).  Predictions beyond the
        inventory's total capacity are clamped to it — the shortfall shows
        up as unserved demand in the replay's QoS report.
    app_spec:
        Optional application constraints (Sec. III): ``max_instances``
        bounds every combination's machine count (node-bounded optimal
        DP), ``min_instances`` pads combinations for redundancy.
        Mutually exclusive with ``inventory``.
    """

    infra: BMLInfrastructure
    predictor: Predictor = field(default_factory=LookAheadMaxPredictor)
    method: str = "greedy"
    initial: Optional[Combination] = None
    inventory: Optional[Dict[str, int]] = None
    app_spec: Optional[object] = None

    def __post_init__(self) -> None:
        if self.inventory is not None and self.app_spec is not None:
            raise ValueError(
                "inventory limits and application constraints cannot be "
                "combined (pick one table construction)"
            )

    def _capacity_limit(self) -> float:
        assert self.inventory is not None
        return sum(
            p.max_perf * self.inventory.get(p.name, 0) for p in self.infra.ordered
        )

    def plan(self, trace: LoadTrace) -> SchedulePlan:
        """Plan the whole trace (see :meth:`plan_detailed`)."""
        return self.plan_detailed(trace).plan

    def plan_detailed(self, trace: LoadTrace) -> ScheduleOutcome:
        """Run the decision loop over ``trace`` and return plan + series."""
        horizon = len(trace)
        pred = self.predictor.series(trace)
        # All three table variants go through the infrastructure-level
        # cache: repeated plan() calls (ablation sweeps, replays) reuse the
        # memoised table instead of rebuilding it.
        if self.app_spec is not None:
            max_rate = float(max(pred.max(), trace.peak))
            table = self.infra.table(max_rate, self.method, app_spec=self.app_spec)
        elif self.inventory is None:
            max_rate = float(max(pred.max(), trace.peak))
            table = self.infra.table(max_rate, self.method)
        else:
            pred = np.minimum(pred, self._capacity_limit())
            max_rate = float(pred.max())
            table = self.infra.table(
                max_rate, self.method, inventory=self.inventory
            )

        # Combination identifier per time step: two predicted rates that
        # map to the same machine multiset must not trigger a decision.
        counts = table.counts_for(pred)  # (T, n_arch) int array
        cid = _row_ids(counts)
        changes = np.flatnonzero(cid[1:] != cid[:-1]) + 1

        initial = (
            self.initial
            if self.initial is not None
            else table.combination_for(float(pred[0]))
        )
        current = initial
        cur_id = cid[0] if self.initial is None else None

        decisions: List[Tuple[int, Combination]] = []
        t = 0
        while t < horizon:
            td = _next_decision(cid, changes, t, cur_id)
            if td is None:
                break
            target = table.combination_for(float(pred[td]))
            if target == current:
                # distinct row id but same machines (cannot happen with
                # well-formed ids; kept as a safety net)
                cur_id = cid[td]
                t = td + 1
                continue
            decisions.append((td, target))
            boot, off = reconfiguration_window(current, target)
            current = target
            cur_id = cid[td]
            # No decision before the reconfiguration completes; the next
            # prediction window starts from the completion time.
            t = td + max(boot + off, 1)
        return ScheduleOutcome(
            plan=build_plan(horizon, initial, decisions),
            predictions=pred,
            table=table,
        )


def _row_ids(counts: np.ndarray) -> np.ndarray:
    """Collapse machine-count rows into comparable integer identifiers.

    Rows are encoded with a mixed-radix key (one radix per column, sized to
    the column's value range), a single vectorised pass — unlike
    ``np.unique(counts, axis=0)``, which sorts all rows (O(n log n) over
    ~7.5 M rows for the World Cup replay).  Two ids are equal iff the rows
    are equal; nothing else is guaranteed.  Falls back to the sorting path
    in the (practically unreachable) case the key would overflow int64.
    """
    counts = np.asarray(counts)
    n, width = counts.shape
    if n == 0 or width == 0:
        return np.zeros(n, dtype=np.int64)
    mins = counts.min(axis=0)
    spans = [int(s) + 1 for s in (counts.max(axis=0) - mins)]
    total = 1
    for s in spans:
        total *= s
    if total > 2 ** 62:  # pragma: no cover - needs astronomically wide tables
        _, inverse = np.unique(counts, axis=0, return_inverse=True)
        return inverse.reshape(-1)
    weights = np.ones(width, dtype=np.int64)
    for j in range(width - 2, -1, -1):
        weights[j] = weights[j + 1] * spans[j + 1]
    return ((counts - mins).astype(np.int64) * weights).sum(axis=1)


def _next_decision(
    cid: np.ndarray,
    changes: np.ndarray,
    t: int,
    cur_id: Optional[int],
) -> Optional[int]:
    """First time >= t whose target combination differs from the current.

    ``cur_id = None`` forces a decision at ``t`` itself (used when an
    explicit initial combination was supplied and may differ from the
    first prediction's combination).
    """
    n = len(cid)
    if t >= n:
        return None
    if cur_id is None or cid[t] != cur_id:
        return t
    # jump through precomputed change points
    pos = int(np.searchsorted(changes, t, side="right"))
    while pos < len(changes):
        c = int(changes[pos])
        if cid[c] != cur_id:
            return c
        pos += 1
    return None
