"""Machine combinations and ideal-combination computation (Step 5).

The paper frames building a BML combination as a bin-packing problem where
bins are machine types (size = ``max_perf``, cost = power) and the single
"object" — the target performance rate — can be split arbitrarily.  Two
builders are provided:

* :func:`greedy_combination` — the paper's Step 5 algorithm: fill Big nodes
  completely, then Medium, and so on; the remainder is assigned to one
  partially loaded node of the largest architecture whose *minimum
  utilization threshold* (Steps 3-4) the remainder reaches.
* :func:`ideal_table` / :func:`ideal_combination` — an exact dynamic
  program over the integer rate grid.  Under the linear power model an
  optimal machine multiset can always be loaded as "all nodes full except
  at most one partial" (loading by increasing marginal cost leaves at most
  one fractional node), so the optimum decomposes into *exact full-node
  cover* + *one partial node*, which the DP solves in
  ``O(max_rate x n_architectures)`` using a sliding minimum.  The exact DP
  is used by Step 4 (crossing points against mixed combinations of smaller
  architectures), by the theoretical lower bound, and as the reference for
  the greedy-vs-optimal ablation (A1).

Rates are discretised to a configurable ``resolution`` (default: 1 unit of
the application metric, i.e. 1 req/s in the paper) — the paper's thresholds
(1, 10, 529 req/s) live on the same integer grid.

Performance architecture
------------------------
Table construction is the substrate under the scheduler, the crossing
analysis, the constrained variant and the lower bound, so everything on
that path is expressed as numpy array operations; the original pure-Python
formulations are kept as references for the equivalence property tests
(``tests/properties/test_prop_vectorized.py``):

* **Greedy tables** (:func:`build_table`, ``method="greedy"``) compute the
  node-count matrix for *all* grid rates at once with ``O(n_architectures)``
  vectorised passes (:func:`_greedy_counts_grid`), then materialise one
  :class:`Combination` object per *run* of identical rows — the greedy
  multiset only changes at node-capacity and threshold crossings, so this
  is ``O(#distinct combos)`` object constructions instead of
  ``O(max_rate)`` (reference: :func:`greedy_combination` once per rate).
* **The exact DP** (:func:`_solve_dp`) replaces the per-rate Python loops
  with a chunked numpy kernel for the full-cover recurrence
  (:func:`_cover_costs`, blocks of ``min(caps)`` rates have no intra-block
  dependency) and a Gil-Werman block decomposition for the sliding minimum
  (:func:`_sliding_min_with_arg`, ``O(n)`` with three accumulate passes).
  Exact-cover multisets for every grid rate are reconstructed with
  pointer-doubling over the DP's choice chain (``O(n log n)`` gathers)
  instead of ``O(n x nodes)`` backtracking.  Reference:
  :func:`_solve_dp_reference` / :func:`_sliding_min_with_arg_reference`.
* **Grid power evaluation** (:class:`CombinationTable`) mirrors
  :meth:`Combination.power`'s exact operation order over the whole count
  matrix at once (:func:`_grid_power_from_counts`), so the vectorised
  power array is bit-identical to per-rate evaluation.

Both kernels are deterministic replicas of the references (same float
operation order, same tie-breaking), so the produced tables are
bit-identical — counts and power arrays — to the per-rate constructions.
Table *reuse* (memoisation keyed on method/resolution/inventory, with
monotone reuse of larger tables for smaller requests) lives on
:meth:`repro.core.bml.BMLInfrastructure.table`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .profiles import ArchitectureProfile, ProfileError

__all__ = [
    "Combination",
    "CombinationError",
    "greedy_combination",
    "greedy_combination_bounded",
    "ideal_table",
    "ideal_combination",
    "CombinationTable",
    "build_table",
]

_TOL = 1e-9


class CombinationError(ValueError):
    """Raised for infeasible or inconsistent combinations."""


@dataclass(frozen=True)
class Combination:
    """A multiset of machines, as ``((profile, count), ...)`` pairs.

    ``items`` is normalised: sorted by decreasing ``max_perf`` with zero
    counts dropped, so two combinations with the same machines compare
    equal regardless of construction order.
    """

    items: Tuple[Tuple[ArchitectureProfile, int], ...]

    def __post_init__(self) -> None:
        for prof, count in self.items:
            if count < 0:
                raise CombinationError(f"negative count for {prof.name}")
        norm = tuple(
            sorted(
                ((p, c) for p, c in self.items if c > 0),
                key=lambda pc: (-pc[0].max_perf, pc[0].name),
            )
        )
        object.__setattr__(self, "items", norm)

    # -- constructors ---------------------------------------------------
    @classmethod
    def of(cls, counts: Mapping[ArchitectureProfile, int]) -> "Combination":
        """Build from a ``profile -> count`` mapping."""
        return cls(tuple(counts.items()))

    @classmethod
    def empty(cls) -> "Combination":
        """The combination with no machines (serves only rate 0)."""
        return cls(())

    @classmethod
    def _from_normalized(
        cls, items: Tuple[Tuple[ArchitectureProfile, int], ...]
    ) -> "Combination":
        """Fast construction from items already in normalised form.

        ``items`` must be zero-free and sorted by ``(-max_perf, name)`` —
        exactly what ``__post_init__`` would produce.  Used by the
        run-length table builders, which create one object per distinct
        multiset instead of one per grid rate.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "items", items)
        return obj

    # -- basic views ----------------------------------------------------
    @property
    def profiles(self) -> Tuple[ArchitectureProfile, ...]:
        """Distinct architectures present, big to little."""
        return tuple(p for p, _ in self.items)

    @property
    def counts(self) -> Dict[str, int]:
        """``architecture name -> node count`` view (cached; do not mutate)."""
        cached = self.__dict__.get("_counts")
        if cached is None:
            cached = {p.name: c for p, c in self.items}
            object.__setattr__(self, "_counts", cached)
        return cached

    @property
    def total_nodes(self) -> int:
        """Total number of machines in the combination."""
        return sum(c for _, c in self.items)

    @property
    def capacity(self) -> float:
        """Maximum performance rate this combination can serve."""
        return sum(p.max_perf * c for p, c in self.items)

    @property
    def idle_power(self) -> float:
        """Power drawn when every machine idles (all on, zero load)."""
        return sum(p.idle_power * c for p, c in self.items)

    @property
    def peak_power(self) -> float:
        """Power drawn when every machine runs at ``max_perf``."""
        return sum(p.max_power * c for p, c in self.items)

    def count_of(self, name: str) -> int:
        """Node count of architecture ``name`` (0 when absent)."""
        return self.counts.get(name, 0)

    def __bool__(self) -> bool:
        return bool(self.items)

    # -- power models ----------------------------------------------------
    def power(self, rate: float) -> float:
        """Minimal power (W) for this machine set to serve ``rate``.

        All idle powers are sunk once a machine is on, so the optimal load
        assignment fills machines by increasing marginal cost (``slope``);
        this is the assignment used for every power figure in the library.
        """
        if rate < -_TOL:
            raise CombinationError("rate must be >= 0")
        rate = max(rate, 0.0)
        if rate > self.capacity * (1 + 1e-9) + _TOL:
            raise CombinationError(
                f"rate {rate} exceeds capacity {self.capacity} of {self.counts}"
            )
        total = self.idle_power
        remaining = min(rate, self.capacity)
        for prof, count in sorted(self.items, key=lambda pc: pc[0].slope):
            if remaining <= _TOL:
                break
            share = min(remaining, prof.max_perf * count)
            total += prof.slope * share
            remaining -= share
        return total

    def power_canonical(self, rate: float) -> float:
        """Power under the paper's canonical assignment.

        Load is assigned big-to-little, filling each architecture group's
        nodes completely before moving on (one node per group may end up
        partial).  This matches the construction of Step 5 figures; it can
        only exceed :meth:`power` and coincides with it whenever marginal
        costs are ordered big-to-little.
        """
        if rate > self.capacity * (1 + 1e-9) + _TOL:
            raise CombinationError(
                f"rate {rate} exceeds capacity {self.capacity} of {self.counts}"
            )
        total = 0.0
        remaining = max(rate, 0.0)
        for prof, count in self.items:  # already big -> little
            share = min(remaining, prof.max_perf * count)
            remaining -= share
            full = int(share // prof.max_perf + _TOL)
            rem = share - full * prof.max_perf
            partial = 1 if rem > _TOL else 0
            total += full * prof.max_power
            if partial:
                total += prof.idle_power + prof.slope * rem
            total += (count - full - partial) * prof.idle_power
        return total

    # -- set algebra (used by reconfiguration planning) ------------------
    def diff(self, other: "Combination") -> Dict[str, int]:
        """Per-architecture node delta ``other - self`` (start>0, stop<0)."""
        names = set(self.counts) | set(other.counts)
        return {
            n: other.counts.get(n, 0) - self.counts.get(n, 0)
            for n in sorted(names)
            if other.counts.get(n, 0) != self.counts.get(n, 0)
        }

    def union_max(self, other: "Combination") -> "Combination":
        """Per-architecture maximum of two combinations.

        This is the machine set that must be simultaneously on while
        reconfiguring from ``self`` to ``other`` without capacity loss.
        """
        profs = {p.name: p for p in self.profiles + other.profiles}
        return Combination.of(
            {
                profs[n]: max(self.counts.get(n, 0), other.counts.get(n, 0))
                for n in profs
            }
        )

    def describe(self) -> str:
        """Human-readable summary, e.g. ``1xparavance + 2xchromebook``."""
        if not self.items:
            return "(empty)"
        return " + ".join(f"{c}x{p.name}" for p, c in self.items)


# ----------------------------------------------------------------------
# Paper's Step 5 greedy
# ----------------------------------------------------------------------

def greedy_combination(
    rate: float,
    ordered: Sequence[ArchitectureProfile],
    thresholds: Mapping[str, float],
) -> Combination:
    """The paper's ideal BML combination for a target ``rate`` (Step 5).

    ``ordered`` must be the surviving candidates sorted big to little and
    ``thresholds`` their minimum utilization thresholds from Steps 3-4
    (the Little threshold is conventionally 1 and any positive remainder is
    always served).  The algorithm fills whole nodes big-to-little, then
    the first architecture (big to little) whose threshold the remainder
    reaches absorbs it on one partial node.
    """
    if rate < -_TOL:
        raise CombinationError("rate must be >= 0")
    if not ordered:
        raise CombinationError("no architectures to combine")
    counts: Dict[ArchitectureProfile, int] = {}
    remaining = max(float(rate), 0.0)
    last = len(ordered) - 1
    for i, prof in enumerate(ordered):
        if remaining <= _TOL:
            break
        full = int(remaining // prof.max_perf + _TOL)
        if full:
            counts[prof] = counts.get(prof, 0) + full
            remaining -= full * prof.max_perf
        if remaining <= _TOL:
            break
        threshold = thresholds.get(prof.name, 1.0)
        if remaining >= threshold - _TOL or i == last:
            # One partial node of this architecture absorbs the remainder.
            counts[prof] = counts.get(prof, 0) + 1
            remaining = 0.0
            break
    if remaining > _TOL:
        raise CombinationError(f"could not place remainder {remaining}")
    return Combination.of(counts)


def greedy_combination_bounded(
    rate: float,
    ordered: Sequence[ArchitectureProfile],
    thresholds: Mapping[str, float],
    inventory: Mapping[str, int],
) -> Combination:
    """Step 5 greedy under a bounded machine inventory.

    The paper assumes unlimited machines of each type but notes that "with
    minor changes, this work can consider cases of existing heterogeneous
    infrastructure where there is limited numbers of machines".  This
    variant makes those changes: the greedy fill caps each architecture at
    its inventory, and when the threshold-preferred architecture for the
    remainder is exhausted the remainder cascades to whatever machines are
    left (littlest spare machines first), trading optimality for
    feasibility.  Raises :class:`CombinationError` when the whole
    inventory cannot serve ``rate``.
    """
    if rate < -_TOL:
        raise CombinationError("rate must be >= 0")
    if not ordered:
        raise CombinationError("no architectures to combine")
    avail: Dict[str, int] = {
        p.name: int(inventory.get(p.name, 0)) for p in ordered
    }
    counts: Dict[ArchitectureProfile, int] = {}
    remaining = max(float(rate), 0.0)
    last = len(ordered) - 1
    for i, prof in enumerate(ordered):
        if remaining <= _TOL:
            break
        full = min(int(remaining // prof.max_perf + _TOL), avail[prof.name])
        if full:
            counts[prof] = counts.get(prof, 0) + full
            avail[prof.name] -= full
            remaining -= full * prof.max_perf
        if remaining <= _TOL:
            break
        threshold = thresholds.get(prof.name, 1.0)
        if (remaining >= threshold - _TOL or i == last) and avail[prof.name] >= 1:
            counts[prof] = counts.get(prof, 0) + 1
            avail[prof.name] -= 1
            remaining = 0.0
            break
    if remaining > _TOL:
        # Preferred machines exhausted: absorb the rest with whatever is
        # left, smallest machines first (closest to the ideal shape).
        for prof in reversed(ordered):
            if remaining <= _TOL:
                break
            if avail[prof.name] < 1:
                continue
            take = min(
                int(math.ceil((remaining - _TOL) / prof.max_perf)),
                avail[prof.name],
            )
            counts[prof] = counts.get(prof, 0) + take
            avail[prof.name] -= take
            remaining -= take * prof.max_perf
        if remaining > _TOL:
            raise CombinationError(
                f"inventory {dict(inventory)} cannot serve rate {rate} "
                f"(short by {remaining:g})"
            )
    return Combination.of(counts)


# ----------------------------------------------------------------------
# Vectorised greedy: count matrix for the whole rate grid at once
# ----------------------------------------------------------------------

def _normalized_order(profiles: Sequence[ArchitectureProfile]) -> List[int]:
    """Column order matching ``Combination.__post_init__``'s item order."""
    return sorted(
        range(len(profiles)),
        key=lambda i: (-profiles[i].max_perf, profiles[i].name),
    )


def _greedy_counts_grid(
    ordered: Sequence[ArchitectureProfile],
    thresholds: Mapping[str, float],
    max_units: int,
    resolution: float,
    inventory: Optional[Mapping[str, int]] = None,
) -> np.ndarray:
    """Greedy node counts for every grid rate, shape ``(max_units+1, n_arch)``.

    Replays :func:`greedy_combination` (or the bounded variant) for all
    rates simultaneously with one vectorised pass per architecture.  The
    float operations mirror the scalar builders exactly (same floor-divide,
    same tolerance masks), so the resulting matrix is bit-identical to the
    per-rate construction.
    """
    if not ordered:
        raise CombinationError("no architectures to combine")
    n_arch = len(ordered)
    n = max_units + 1
    remaining = np.arange(n, dtype=np.float64) * resolution
    counts = np.zeros((n, n_arch), dtype=np.int64)
    avail: Optional[np.ndarray] = None
    if inventory is not None:
        stock = np.array(
            [int(inventory.get(p.name, 0)) for p in ordered], dtype=np.int64
        )
        avail = np.broadcast_to(stock, (n, n_arch)).copy()
    last = n_arch - 1
    for i, prof in enumerate(ordered):
        active = remaining > _TOL
        if not active.any():
            break
        cap = prof.max_perf
        # int(remaining // cap + _TOL): floor_divide matches Python's //.
        full = np.floor(np.floor_divide(remaining, cap) + _TOL).astype(np.int64)
        full[~active] = 0
        if avail is not None:
            np.minimum(full, avail[:, i], out=full)
            avail[:, i] -= full
        counts[:, i] += full
        remaining = remaining - full.astype(np.float64) * cap
        still = active & (remaining > _TOL)
        if i == last:
            place = still
        else:
            threshold = float(thresholds.get(prof.name, 1.0))
            place = still & (remaining >= threshold - _TOL)
        if avail is not None:
            place &= avail[:, i] >= 1
        counts[place, i] += 1
        if avail is not None:
            avail[place, i] -= 1
        remaining[place] = 0.0
    leftover = remaining > _TOL
    if leftover.any() and inventory is not None:
        # Cascade: absorb the rest with whatever machines are left,
        # smallest first (mirrors greedy_combination_bounded).
        for i in range(n_arch - 1, -1, -1):
            rows = remaining > _TOL
            if not rows.any():
                break
            cap = ordered[i].max_perf
            take = np.ceil((remaining - _TOL) / cap)
            take = np.minimum(take, avail[:, i].astype(np.float64))
            take = take.astype(np.int64)
            take[~rows] = 0
            counts[:, i] += take
            avail[:, i] -= take
            remaining = remaining - take.astype(np.float64) * cap
        leftover = remaining > _TOL
    if leftover.any():
        k = int(np.argmax(leftover))
        if inventory is not None:
            raise CombinationError(
                f"inventory {dict(inventory)} cannot serve rate {k * resolution} "
                f"(short by {remaining[k]:g})"
            )
        raise CombinationError(f"could not place remainder {remaining[k]}")
    return counts


def _combos_from_counts(
    profiles: Sequence[ArchitectureProfile], counts: np.ndarray
) -> List[Combination]:
    """Expand a count matrix into per-rate :class:`Combination` objects.

    One object is materialised per run of identical rows and shared across
    the run — ``O(#distinct combos)`` constructions for the whole grid.
    """
    n = len(counts)
    norm = _normalized_order(profiles)
    if n > 1:
        change = np.any(counts[1:] != counts[:-1], axis=1)
        starts = np.concatenate(([0], np.flatnonzero(change) + 1))
    else:
        starts = np.array([0])
    ends = np.concatenate((starts[1:], [n]))
    combos: List[Combination] = []
    for s, e in zip(starts.tolist(), ends.tolist()):
        row = counts[s]
        items = tuple(
            (profiles[i], int(row[i])) for i in norm if row[i] > 0
        )
        combos += [Combination._from_normalized(items)] * (e - s)
    return combos


def _grid_power_from_counts(
    profiles: Sequence[ArchitectureProfile],
    counts: np.ndarray,
    rates: np.ndarray,
) -> np.ndarray:
    """Power of row ``k``'s machine multiset at ``rates[k]``, vectorised.

    Replicates :meth:`Combination.power`'s operation order exactly (idle
    sum in normalised item order, then shares by increasing marginal cost
    with the same tolerance masks), so the output is bit-identical to
    per-row scalar evaluation.
    """
    n = len(rates)
    norm = _normalized_order(profiles)
    fcounts = counts.astype(np.float64)
    total = np.zeros(n)
    capacity = np.zeros(n)
    for i in norm:
        p = profiles[i]
        total += p.idle_power * fcounts[:, i]
        capacity += p.max_perf * fcounts[:, i]
    bad = rates > capacity * (1 + 1e-9) + _TOL
    if bad.any():
        k = int(np.argmax(bad))
        raise CombinationError(
            f"rate {rates[k]} exceeds capacity {capacity[k]} of row {k}"
        )
    remaining = np.minimum(rates, capacity)
    for i in sorted(norm, key=lambda j: profiles[j].slope):
        p = profiles[i]
        active = remaining > _TOL
        share = np.where(
            active, np.minimum(remaining, p.max_perf * fcounts[:, i]), 0.0
        )
        total += p.slope * share
        remaining = remaining - share
    return total


# ----------------------------------------------------------------------
# Exact DP on the integer rate grid
# ----------------------------------------------------------------------

def _grid_capacities(
    profiles: Sequence[ArchitectureProfile], resolution: float
) -> List[int]:
    caps = []
    for p in profiles:
        cap = int(math.floor(p.max_perf / resolution + _TOL))
        if cap <= 0:
            raise CombinationError(
                f"{p.name}: max_perf {p.max_perf} below grid resolution {resolution}"
            )
        caps.append(cap)
    return caps


def _sliding_min_with_arg_reference(
    values: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """For each index i>=1: min of ``values[max(0, i-window) : i]`` and argmin.

    O(n) monotonic deque, pure Python — the reference implementation the
    vectorised :func:`_sliding_min_with_arg` is property-tested against.
    Entry i of the output corresponds to choosing a partial-load amount
    ``x`` in ``1..window`` with ``values[i - x]``; ties report the latest
    index attaining the minimum.
    """
    n = len(values)
    best = np.full(n, np.inf)
    arg = np.full(n, -1, dtype=np.int64)
    dq: deque = deque()  # indices with increasing values
    for i in range(1, n):
        j = i - 1  # values[j] becomes eligible for position i
        while dq and values[dq[-1]] >= values[j]:
            dq.pop()
        dq.append(j)
        while dq and dq[0] < i - window:
            dq.popleft()
        if dq and np.isfinite(values[dq[0]]):
            best[i] = values[dq[0]]
            arg[i] = dq[0]
    return best, arg


def _sliding_min_with_arg(
    values: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised drop-in for :func:`_sliding_min_with_arg_reference`.

    Gil-Werman block decomposition: prefix/suffix minima over blocks of
    ``window`` elements give every window minimum from two lookups; the
    argmin accumulates the *latest* index attaining the minimum, matching
    the deque's tie-breaking exactly.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    best = np.full(n, np.inf)
    arg = np.full(n, -1, dtype=np.int64)
    w = int(window)
    if n <= 1 or w < 1:
        return best, arg
    # Truncated head windows: i < w sees values[0:i].
    t = min(w, n)
    head = values[:t]
    pm = np.minimum.accumulate(head)
    reset = head <= pm  # == running min -> latest tie wins
    pa = np.maximum.accumulate(np.where(reset, np.arange(t), -1))
    best[1:t] = pm[: t - 1]
    arg[1:t] = pa[: t - 1]
    if n > w:
        # Full windows: i in [w, n) sees values[i-w : i]; window start
        # s = i - w spans at most two width-w blocks.
        m = -(-n // w)
        pad = m * w - n
        v = np.concatenate((values, np.full(pad, np.inf))) if pad else values
        blocks = v.reshape(m, w)
        gidx = np.arange(m * w).reshape(m, w)
        pmin = np.minimum.accumulate(blocks, axis=1)
        reset = blocks <= pmin
        parg = np.maximum.accumulate(np.where(reset, gidx, -1), axis=1)
        rev = blocks[:, ::-1]
        smin_rev = np.minimum.accumulate(rev, axis=1)
        prev = np.concatenate(
            (np.full((m, 1), np.inf), smin_rev[:, :-1]), axis=1
        )
        # Strict improvement only: ties keep the later original index.
        reset_rev = rev < prev
        pos = np.maximum.accumulate(
            np.where(reset_rev, np.arange(w), -1), axis=1
        )
        base = (np.arange(m) * w)[:, None]
        sarg_rev = np.where(pos >= 0, base + (w - 1 - pos), -1)
        smin = smin_rev[:, ::-1]
        sarg = sarg_rev[:, ::-1]
        s = np.arange(n - w)
        b = s + w - 1
        suf_min = smin[s // w, s % w]
        suf_arg = sarg[s // w, s % w]
        pre_min = pmin[b // w, b % w]
        pre_arg = parg[b // w, b % w]
        take_pre = pre_min <= suf_min  # tie -> prefix side (later indices)
        i_idx = s + w
        best[i_idx] = np.where(take_pre, pre_min, suf_min)
        arg[i_idx] = np.where(take_pre, pre_arg, suf_arg)
    unreachable = ~np.isfinite(best)
    best[unreachable] = np.inf
    arg[unreachable] = -1
    return best, arg


def _cover_costs(
    profiles: Sequence[ArchitectureProfile],
    caps: Sequence[int],
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact full-node-cover DP ``g`` and its choice array, chunked numpy.

    ``g[r] = min_a g[r - caps[a]] + max_power[a]``; every dependency spans
    at least ``min(caps)`` grid rates, so blocks of that many rates update
    with pure array slicing (no intra-block dependency).  First-wins tie
    breaking matches the reference loop.
    """
    powers = [p.max_power for p in profiles]
    g = np.full(n, np.inf)
    g[0] = 0.0
    choice = np.full(n, -1, dtype=np.int64)
    block = min(caps)
    s = 1
    while s < n:
        e = min(s + block, n)
        best = np.full(e - s, np.inf)
        best_a = np.full(e - s, -1, dtype=np.int64)
        for a, cap in enumerate(caps):
            lo = max(s, cap)
            if lo >= e:
                continue
            cand = g[lo - cap : e - cap] + powers[a]
            seg = slice(lo - s, e - s)
            better = cand < best[seg]
            best[seg][better] = cand[better]
            best_a[seg][better] = a
        g[s:e] = best
        choice[s:e] = best_a
        s = e
    return g, choice


@dataclass(frozen=True)
class _DPResult:
    resolution: float
    profiles: Tuple[ArchitectureProfile, ...]
    power: np.ndarray          # optimal power per grid rate (index = units)
    cover_cost: np.ndarray     # g: cost of exact full-node cover
    cover_choice: np.ndarray   # arch index used at g[r], -1 = none
    partial_arch: np.ndarray   # arch index of the partial node at f[r]
    partial_from: np.ndarray   # grid index the partial node extends


def _partial_phase(
    profs: Tuple[ArchitectureProfile, ...],
    caps: Sequence[int],
    g: np.ndarray,
    resolution: float,
    sliding_min,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Overlay one partial node on the exact cover (shared f-phase)."""
    n = len(g)
    f = np.full(n, np.inf)
    f[0] = 0.0
    part_arch = np.full(n, -1, dtype=np.int64)
    part_from = np.full(n, -1, dtype=np.int64)
    for a, p in enumerate(profs):
        # g[r - x] + idle + slope * (x * res)
        #   = (g[r - x] - slope * res * (r - x)) + idle + slope * res * r
        h = g - p.slope * resolution * np.arange(n)
        best_h, arg_h = sliding_min(h, caps[a])
        cand = best_h + p.idle_power + p.slope * resolution * np.arange(n)
        better = cand < f
        f = np.where(better, cand, f)
        part_arch = np.where(better, a, part_arch)
        part_from = np.where(better, arg_h, part_from)
    return f, part_arch, part_from


def _solve_dp(
    profiles: Sequence[ArchitectureProfile],
    max_units: int,
    resolution: float,
) -> _DPResult:
    """Exact DP over the rate grid — fully vectorised kernels."""
    profs = tuple(profiles)
    caps = _grid_capacities(profs, resolution)
    n = max_units + 1
    g, choice = _cover_costs(profs, caps, n)
    f, part_arch, part_from = _partial_phase(
        profs, caps, g, resolution, _sliding_min_with_arg
    )
    return _DPResult(
        resolution=resolution,
        profiles=profs,
        power=f,
        cover_cost=g,
        cover_choice=choice,
        partial_arch=part_arch,
        partial_from=part_from,
    )


def _solve_dp_reference(
    profiles: Sequence[ArchitectureProfile],
    max_units: int,
    resolution: float,
) -> _DPResult:
    """The original per-rate Python DP, kept as the property-test reference."""
    profs = tuple(profiles)
    caps = _grid_capacities(profs, resolution)
    n = max_units + 1
    g = np.full(n, np.inf)
    g[0] = 0.0
    choice = np.full(n, -1, dtype=np.int64)
    for r in range(1, n):
        best = np.inf
        best_a = -1
        for a, p in enumerate(profs):
            prev = r - caps[a]
            if prev >= 0 and g[prev] + p.max_power < best:
                best = g[prev] + p.max_power
                best_a = a
        g[r] = best
        choice[r] = best_a
    f, part_arch, part_from = _partial_phase(
        profs, caps, g, resolution, _sliding_min_with_arg_reference
    )
    return _DPResult(
        resolution=resolution,
        profiles=profs,
        power=f,
        cover_cost=g,
        cover_choice=choice,
        partial_arch=part_arch,
        partial_from=part_from,
    )


def _cover_counts_all(
    choice: np.ndarray, caps: Sequence[int], n_arch: int
) -> np.ndarray:
    """Node counts of the exact-cover chain for every grid rate.

    Pointer-doubling over ``choice``'s parent chain (``r -> r - cap``)
    accumulates each rate's multiset in ``O(log chain)`` vectorised gathers
    instead of per-rate backtracking.  Rows with an unreachable cover keep
    whatever partial chain they reach — callers must only read rows whose
    DP cost is finite.
    """
    n = len(choice)
    counts = np.zeros((n, n_arch), dtype=np.int64)
    rows = np.arange(n)
    valid = choice >= 0
    counts[rows[valid], choice[valid]] = 1
    caps_arr = np.asarray(caps, dtype=np.int64)
    jump = np.where(valid, rows - caps_arr[np.where(valid, choice, 0)], 0)
    while np.any(jump > 0):
        counts += counts[jump]
        jump = jump[jump]
    return counts


def ideal_table(
    profiles: Sequence[ArchitectureProfile],
    max_rate: float,
    resolution: float = 1.0,
) -> np.ndarray:
    """Optimal power for every grid rate ``0, res, 2*res, ... >= max_rate``.

    Entry ``k`` is the minimal power of any machine multiset serving rate
    ``k * resolution``.  ``inf`` never appears for rates the architectures
    can reach (the Little node's window always contains a coverable point).
    """
    max_units = int(math.ceil(max_rate / resolution - _TOL))
    return _solve_dp(profiles, max_units, resolution).power


def ideal_combination(
    rate: float,
    profiles: Sequence[ArchitectureProfile],
    resolution: float = 1.0,
) -> Combination:
    """The exact optimal combination for one ``rate`` (DP + backtracking)."""
    if rate <= _TOL:
        return Combination.empty()
    units = int(math.ceil(rate / resolution - _TOL))
    dp = _solve_dp(profiles, units, resolution)
    if not np.isfinite(dp.power[units]):
        raise CombinationError(f"rate {rate} unreachable with given architectures")
    counts: Dict[ArchitectureProfile, int] = {}
    a = int(dp.partial_arch[units])
    r = units
    if a >= 0:
        prof = dp.profiles[a]
        counts[prof] = counts.get(prof, 0) + 1
        r = int(dp.partial_from[units])
    caps = _grid_capacities(dp.profiles, resolution)
    while r > 0:
        a = int(dp.cover_choice[r])
        if a < 0:
            raise CombinationError("DP backtracking hit an unreachable state")
        prof = dp.profiles[a]
        counts[prof] = counts.get(prof, 0) + 1
        r -= caps[a]
    return Combination.of(counts)


# ----------------------------------------------------------------------
# Precomputed tables (used by the scheduler and the bounds)
# ----------------------------------------------------------------------

class CombinationTable:
    """Combinations and their powers precomputed on the integer rate grid.

    The scheduler looks combinations up millions of times (once per
    predicted rate); this table computes them once per grid rate and turns
    lookups into array indexing.  Rates between grid points map to the next
    grid point up (conservative: never under-provisions).
    """

    def __init__(
        self,
        profiles: Sequence[ArchitectureProfile],
        combos: Sequence[Combination],
        resolution: float,
        method: str,
        *,
        _counts: Optional[np.ndarray] = None,
    ) -> None:
        if not combos:
            raise CombinationError("empty combination table")
        self._profiles = tuple(profiles)
        self._combos = list(combos)
        self.resolution = float(resolution)
        self.method = method
        n = len(self._combos)
        if _counts is None:
            index = {p.name: i for i, p in enumerate(self._profiles)}
            _counts = np.zeros((n, len(self._profiles)), dtype=np.int64)
            prev: Optional[Combination] = None
            for i, combo in enumerate(self._combos):
                if combo is prev:  # run-length lists repeat the same object
                    _counts[i] = _counts[i - 1]
                    continue
                prev = combo
                for name, cnt in combo.counts.items():
                    _counts[i, index[name]] = cnt
        self._counts = _counts
        rates = np.arange(n) * self.resolution
        self._power = _grid_power_from_counts(self._profiles, _counts, rates)
        # Power of each grid combination at the *lower* edge of its cell;
        # power is linear within a cell, so (floor, ceil) pairs allow exact
        # evaluation at off-grid loads (see power_at_load).
        floor_rates = np.maximum(np.arange(n) - 1, 0) * self.resolution
        self._power_floor = _grid_power_from_counts(
            self._profiles, _counts, floor_rates
        )

    def truncated(self, max_units: int) -> "CombinationTable":
        """A view of this table covering grid rates ``0..max_units`` only.

        Shares the underlying arrays (numpy slices), so a table built once
        for a large ``max_rate`` serves any smaller request for free —
        the monotone-reuse half of the infrastructure-level table cache.
        """
        n = max_units + 1
        if n >= len(self._combos):
            return self
        if n < 1:
            raise CombinationError("empty combination table")
        view = object.__new__(CombinationTable)
        view._profiles = self._profiles
        view._combos = self._combos[:n]
        view.resolution = self.resolution
        view.method = self.method
        view._counts = self._counts[:n]
        view._power = self._power[:n]
        view._power_floor = self._power_floor[:n]
        return view

    # -- sizes -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._combos)

    @property
    def max_rate(self) -> float:
        """Largest rate the table covers."""
        return (len(self._combos) - 1) * self.resolution

    @property
    def profiles(self) -> Tuple[ArchitectureProfile, ...]:
        """Architectures the table was built over (big to little)."""
        return self._profiles

    # -- lookups -----------------------------------------------------------
    def _index(self, rate: Union[float, np.ndarray]) -> Union[int, np.ndarray]:
        idx = np.ceil(np.asarray(rate, dtype=float) / self.resolution - _TOL)
        idx = np.clip(idx, 0, None).astype(np.int64)
        if np.any(idx >= len(self._combos)):
            raise CombinationError(
                f"rate {np.max(np.asarray(rate))} beyond table max {self.max_rate}"
            )
        return idx

    def clipped_index(
        self, rate: Union[float, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Non-raising grid indices: ``(clipped index, out-of-range mask)``.

        Same rounding as :meth:`_index`, but rates beyond the table clamp
        to the last row and are flagged instead of raising — for callers
        (the segment replay's decision scan) that must defer the error to
        the moment the out-of-range rate is actually consulted.
        """
        arr = np.asarray(rate, dtype=float)
        if arr.ndim:
            # In-place pipeline: year-scale decision scans call this on
            # multi-hundred-MB series, where every extra temporary is a
            # real allocation + memory pass.
            tmp = arr / self.resolution
            np.subtract(tmp, _TOL, out=tmp)
            np.ceil(tmp, out=tmp)
            np.clip(tmp, 0, None, out=tmp)
            idx = tmp.astype(np.int64)
        else:
            idx = np.clip(
                np.ceil(arr / self.resolution - _TOL), 0, None
            ).astype(np.int64)
        oob = idx >= len(self._combos)
        np.minimum(idx, len(self._combos) - 1, out=idx)
        return idx, oob

    def combination_for(self, rate: float) -> Combination:
        """The combination serving ``rate`` (grid-rounded up)."""
        return self._combos[int(self._index(rate))]

    def combo_at(self, idx: int) -> Combination:
        """The combination at a grid index (e.g. from :meth:`clipped_index`).

        ``clipped_index`` applies the same grid rounding as ``_index``,
        so for in-range rates ``combo_at(clipped_index(rate)[0])`` is
        exactly ``combination_for(rate)`` without re-deriving the index —
        the segment replay's decision loop relies on this.
        """
        return self._combos[idx]

    def power_for(self, rate: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Power of the table's combination at ``rate`` (vectorised)."""
        idx = self._index(rate)
        out = self._power[idx]
        return float(out) if np.ndim(out) == 0 else out

    def power_at_load(
        self, load: Union[float, np.ndarray]
    ) -> Union[float, np.ndarray]:
        """Exact power of the grid combination serving the *actual* load.

        The combination is the one :meth:`combination_for` picks (load
        rounded up to the grid), but its draw is evaluated at the
        instantaneous load via linear interpolation inside the grid cell —
        this is what the theoretical lower bound integrates.
        """
        arr = np.asarray(load, dtype=float)
        idx = self._index(arr)
        hi = self._power[idx]
        lo = self._power_floor[idx]
        cell_start = np.maximum(idx - 1, 0) * self.resolution
        frac = np.where(
            idx > 0, (arr - cell_start) / self.resolution, 0.0
        )
        out = lo + (hi - lo) * np.clip(frac, 0.0, 1.0)
        return float(out) if np.ndim(load) == 0 else out

    def counts_for(self, rate: Union[float, np.ndarray]) -> np.ndarray:
        """Node-count row(s) for ``rate`` — shape ``(..., n_architectures)``."""
        return self._counts[self._index(rate)]

    @property
    def power_array(self) -> np.ndarray:
        """Power at every grid rate (read-only view)."""
        view = self._power.view()
        view.flags.writeable = False
        return view

    @property
    def counts_array(self) -> np.ndarray:
        """Counts at every grid rate, shape ``(n_rates, n_architectures)``."""
        view = self._counts.view()
        view.flags.writeable = False
        return view


def _greedy_combos_reference(
    ordered: Sequence[ArchitectureProfile],
    thresholds: Mapping[str, float],
    max_units: int,
    resolution: float,
    inventory: Optional[Mapping[str, int]] = None,
) -> List[Combination]:
    """Per-rate greedy construction — the property-test/benchmark reference."""
    combos: List[Combination] = []
    for k in range(max_units + 1):
        if inventory is None:
            combos.append(greedy_combination(k * resolution, ordered, thresholds))
        else:
            combos.append(
                greedy_combination_bounded(
                    k * resolution, ordered, thresholds, inventory
                )
            )
    return combos


def build_table(
    ordered: Sequence[ArchitectureProfile],
    thresholds: Mapping[str, float],
    max_rate: float,
    resolution: float = 1.0,
    method: str = "greedy",
    inventory: Optional[Mapping[str, int]] = None,
) -> CombinationTable:
    """Precompute combinations for rates ``0..max_rate`` on the grid.

    ``method="greedy"`` uses the paper's Step 5 builder (needs
    ``thresholds``); ``method="ideal"`` uses the exact DP (thresholds are
    ignored).  ``inventory`` bounds the machine counts per architecture
    (greedy method only); rates the inventory cannot serve raise.

    Both methods run entirely on numpy kernels (see the module docstring's
    performance notes); the tables are bit-identical to per-rate
    construction with :func:`greedy_combination` / DP backtracking.
    """
    max_units = int(math.ceil(max_rate / resolution - _TOL))
    if method == "greedy":
        counts = _greedy_counts_grid(
            ordered, thresholds, max_units, resolution, inventory
        )
    elif method == "ideal":
        if inventory is not None:
            raise CombinationError(
                "inventory bounds are only supported with the greedy method"
            )
        dp = _solve_dp(ordered, max_units, resolution)
        bad = ~np.isfinite(dp.power)
        bad[0] = False
        if bad.any():
            k = int(np.argmax(bad))
            raise CombinationError(f"rate {k * resolution} unreachable")
        caps = _grid_capacities(ordered, resolution)
        cover = _cover_counts_all(dp.cover_choice, caps, len(ordered))
        rows = np.arange(max_units + 1)
        has_partial = dp.partial_arch >= 0
        src = np.where(has_partial, dp.partial_from, rows)
        counts = cover[src].copy()
        counts[rows[has_partial], dp.partial_arch[has_partial]] += 1
    else:
        raise CombinationError(f"unknown method {method!r}")
    combos = _combos_from_counts(ordered, counts)
    return CombinationTable(ordered, combos, resolution, method, _counts=counts)
