"""Application-constrained combinations (Sec. III's malleability bounds).

Sec. III characterises applications by *malleability*: whether the
service can be distributed across several machines, and if not, the
minimum and maximum number of instances that may run.  Since the paper's
deployment model hosts one instance per machine, instance bounds become
**node-count bounds on the machine combinations** — "this criterion poses
a constraint when computing the possible hosting machine combinations".

This module computes optimal combinations under those bounds:

* :func:`bounded_nodes_table` / :func:`bounded_nodes_combination` — a DP
  over (rate, node budget) that yields the cheapest machine multiset
  serving each rate with **at most** ``max_nodes`` machines.  It extends
  the unconstrained DP of :mod:`repro.core.combination` with a node
  dimension (full-cover layers ``g[n][r]`` + one partial machine).
* :func:`enforce_min_nodes` — pads a combination with the cheapest idle
  machines to reach a **minimum** instance count (redundancy floors:
  "at least 2 instances at all times").
* :func:`constrained_table` — a drop-in
  :class:`~repro.core.combination.CombinationTable` whose entries respect
  ``ApplicationSpec.min_instances`` / ``max_instances``, usable by every
  scheduler in the library.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # avoid a core -> sim import cycle at runtime
    from ..sim.application import ApplicationSpec

from .combination import (
    Combination,
    CombinationError,
    CombinationTable,
    _grid_capacities,
    _sliding_min_with_arg,
)
from .profiles import ArchitectureProfile

__all__ = [
    "bounded_nodes_table",
    "bounded_nodes_combination",
    "enforce_min_nodes",
    "constrained_table",
]

_TOL = 1e-9


def _solve_bounded(
    profiles: Sequence[ArchitectureProfile],
    max_units: int,
    resolution: float,
    max_nodes: int,
):
    """DP layers: ``g[n][r]`` = cheapest exact cover of rate ``r`` with
    ``n`` fully loaded machines; then one partial machine on top."""
    if max_nodes < 1:
        raise CombinationError("max_nodes must be >= 1")
    profs = tuple(profiles)
    caps = _grid_capacities(profs, resolution)
    n_rates = max_units + 1

    g = np.full((max_nodes + 1, n_rates), np.inf)
    g[0, 0] = 0.0
    g_choice = np.full((max_nodes + 1, n_rates), -1, dtype=np.int64)
    for n in range(1, max_nodes + 1):
        for a, p in enumerate(profs):
            cap = caps[a]
            if cap >= n_rates:
                continue
            cand = g[n - 1, : n_rates - cap] + p.max_power
            better = cand < g[n, cap:]
            g[n, cap:][better] = cand[better]
            g_choice[n, cap:][better] = a

    # f[r]: cheapest combination (full layers + <=1 partial machine)
    f = np.full(n_rates, np.inf)
    f[0] = 0.0
    f_n = np.full(n_rates, -1, dtype=np.int64)       # full-layer count used
    f_arch = np.full(n_rates, -1, dtype=np.int64)    # partial machine arch
    f_from = np.full(n_rates, -1, dtype=np.int64)    # grid index it extends
    rates = np.arange(n_rates) * resolution
    for n in range(0, max_nodes):
        layer = g[n]
        # full layers alone (rate must be exactly covered)
        exact = layer < f
        f[exact] = layer[exact]
        f_n[exact] = n
        f_arch[exact] = -1
        f_from[exact] = -1
        for a, p in enumerate(profs):
            h = layer - p.slope * rates
            best_h, arg_h = _sliding_min_with_arg(h, caps[a])
            cand = best_h + p.idle_power + p.slope * rates
            better = cand < f
            f[better] = cand[better]
            f_n[better] = n
            f_arch[better] = a
            f_from[better] = arg_h[better]
    # the full budget may also be spent entirely on full machines
    exact = g[max_nodes] < f
    f[exact] = g[max_nodes][exact]
    f_n[exact] = max_nodes
    f_arch[exact] = -1
    f_from[exact] = -1
    return profs, caps, g_choice, f, f_n, f_arch, f_from


def bounded_nodes_table(
    profiles: Sequence[ArchitectureProfile],
    max_rate: float,
    max_nodes: int,
    resolution: float = 1.0,
) -> np.ndarray:
    """Optimal power per grid rate using at most ``max_nodes`` machines.

    Entries are ``inf`` where the node budget cannot reach the rate (the
    budget times the biggest machine is the hard ceiling).
    """
    max_units = int(math.ceil(max_rate / resolution - _TOL))
    _, _, _, f, _, _, _ = _solve_bounded(profiles, max_units, resolution, max_nodes)
    return f


def bounded_nodes_combination(
    rate: float,
    profiles: Sequence[ArchitectureProfile],
    max_nodes: int,
    resolution: float = 1.0,
) -> Combination:
    """The cheapest combination for ``rate`` with at most ``max_nodes``."""
    if rate <= _TOL:
        return Combination.empty()
    units = int(math.ceil(rate / resolution - _TOL))
    profs, caps, g_choice, f, f_n, f_arch, f_from = _solve_bounded(
        profiles, units, resolution, max_nodes
    )
    if not np.isfinite(f[units]):
        raise CombinationError(
            f"{max_nodes} machines cannot serve rate {rate} with these architectures"
        )
    counts: Dict[ArchitectureProfile, int] = {}
    r = units
    n = int(f_n[units])
    a = int(f_arch[units])
    if a >= 0:
        counts[profs[a]] = counts.get(profs[a], 0) + 1
        r = int(f_from[units])
    while r > 0 or n > 0:
        if r == 0 and n > 0:
            # remaining layers are zero-rate covers: impossible except n=0
            raise CombinationError("inconsistent DP backtrack")
        choice = int(g_choice[n, r])
        if choice < 0:
            raise CombinationError("inconsistent DP backtrack")
        counts[profs[choice]] = counts.get(profs[choice], 0) + 1
        r -= caps[choice]
        n -= 1
    return Combination.of(counts)


def enforce_min_nodes(
    combo: Combination,
    min_nodes: int,
    ordered: Sequence[ArchitectureProfile],
) -> Combination:
    """Pad ``combo`` up to ``min_nodes`` machines with the cheapest idlers.

    Redundancy floors ("always at least k instances") add machines that
    carry no load; the Little architecture has the lowest idle power, so
    padding uses the smallest-idle machine available.
    """
    if min_nodes < 0:
        raise CombinationError("min_nodes must be >= 0")
    deficit = min_nodes - combo.total_nodes
    if deficit <= 0:
        return combo
    filler = min(ordered, key=lambda p: p.idle_power)
    counts = {p: c for p, c in combo.items}
    counts[filler] = counts.get(filler, 0) + deficit
    return Combination.of(counts)


def constrained_table(
    ordered: Sequence[ArchitectureProfile],
    spec: "ApplicationSpec",
    max_rate: float,
    resolution: float = 1.0,
) -> CombinationTable:
    """A combination table honouring the application's instance bounds.

    With no ``max_instances`` the entries are the unconstrained DP optima;
    otherwise each rate's combination uses at most that many machines.
    ``min_instances`` pads every non-empty entry (rate 0 keeps the empty
    combination: the service is scaled to zero, as in the unconstrained
    tables).
    """
    max_units = int(math.ceil(max_rate / resolution - _TOL))
    combos: List[Combination] = []
    if spec.max_instances is None:
        from .combination import build_table

        base = build_table(ordered, {}, max_units * resolution, resolution, "ideal")
        combos = [base.combination_for(k * resolution) for k in range(max_units + 1)]
    else:
        profs, caps, g_choice, f, f_n, f_arch, f_from = _solve_bounded(
            ordered, max_units, resolution, spec.max_instances
        )
        # The backtrack start (layer count, partial arch, chain origin)
        # fully determines the reconstructed multiset, so consecutive rates
        # sharing it reuse one object instead of rebuilding per grid rate.
        memo: Dict[Tuple[int, int, int], Combination] = {}
        for k in range(max_units + 1):
            if not np.isfinite(f[k]):
                raise CombinationError(
                    f"max_instances={spec.max_instances} cannot serve "
                    f"rate {k * resolution}"
                )
            n, a = int(f_n[k]), int(f_arch[k])
            r = int(f_from[k]) if a >= 0 else k
            sig = (n, a, r)
            combo = memo.get(sig)
            if combo is None:
                counts: Dict[ArchitectureProfile, int] = {}
                if a >= 0:
                    counts[profs[a]] = counts.get(profs[a], 0) + 1
                while n > 0:
                    choice = int(g_choice[n, r])
                    counts[profs[choice]] = counts.get(profs[choice], 0) + 1
                    r -= caps[choice]
                    n -= 1
                combo = Combination.of(counts)
                memo[sig] = combo
            combos.append(combo)
    padded: Dict[Combination, Combination] = {}

    def _pad(combo: Combination) -> Combination:
        out = padded.get(combo)
        if out is None:
            out = enforce_min_nodes(combo, spec.min_instances, ordered)
            padded[combo] = out
        return out

    combos = [c if not c else _pad(c) for c in combos]
    return CombinationTable(ordered, combos, resolution, "constrained")
