"""Application-constrained combinations (Sec. III's malleability bounds).

Sec. III characterises applications by *malleability*: whether the
service can be distributed across several machines, and if not, the
minimum and maximum number of instances that may run.  Since the paper's
deployment model hosts one instance per machine, instance bounds become
**node-count bounds on the machine combinations** — "this criterion poses
a constraint when computing the possible hosting machine combinations".

This module computes optimal combinations under those bounds:

* :func:`bounded_nodes_table` / :func:`bounded_nodes_combination` — a DP
  over (rate, node budget) that yields the cheapest machine multiset
  serving each rate with **at most** ``max_nodes`` machines.  It extends
  the unconstrained DP of :mod:`repro.core.combination` with a node
  dimension (full-cover layers ``g[n][r]`` + one partial machine).
* :func:`enforce_min_nodes` — pads a combination with the cheapest idle
  machines to reach a **minimum** instance count (redundancy floors:
  "at least 2 instances at all times").
* :func:`constrained_table` — a drop-in
  :class:`~repro.core.combination.CombinationTable` whose entries respect
  ``ApplicationSpec.min_instances`` / ``max_instances``, usable by every
  scheduler in the library.

Performance architecture
------------------------
Like the unconstrained engine, the bounded DP runs on numpy kernels with
the original formulations kept as references for the equivalence property
tests (``tests/properties/test_prop_constraints.py``):

* the layer recurrence stacks every architecture's shifted candidate row
  and reduces with one ``argmin`` pass per layer
  (first-occurrence ties match the sequential update order exactly);
* table reconstruction replaces the per-rate Python backtracking of
  :func:`constrained_table` with pointer-doubling over the flattened
  ``(layer, rate)`` choice chain (:func:`_bounded_counts_all`), then
  materialises one :class:`Combination` object per run of identical rows;
* ``min_instances`` padding is applied on the count matrix directly.

Table *reuse* lives on :meth:`repro.core.bml.BMLInfrastructure.table`,
which memoises constrained tables per instance-bound key and hands the
unconstrained (``max_instances is None``) variant its cached exact-DP
base table via ``base_table`` instead of rebuilding it per call.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # avoid a core -> sim import cycle at runtime
    from ..sim.application import ApplicationSpec

from .combination import (
    Combination,
    CombinationError,
    CombinationTable,
    _combos_from_counts,
    _grid_capacities,
    _sliding_min_with_arg,
)
from .profiles import ArchitectureProfile

__all__ = [
    "bounded_nodes_table",
    "bounded_nodes_combination",
    "enforce_min_nodes",
    "constrained_table",
]

_TOL = 1e-9


def _solve_bounded(
    profiles: Sequence[ArchitectureProfile],
    max_units: int,
    resolution: float,
    max_nodes: int,
):
    """DP layers: ``g[n][r]`` = cheapest exact cover of rate ``r`` with
    ``n`` fully loaded machines; then one partial machine on top.

    The per-architecture masked updates of the reference are replaced by
    one stacked candidate matrix and a single ``argmin`` reduction per
    layer; ``np.argmin``'s first-occurrence tie rule reproduces the
    sequential ``cand < best`` updates bit for bit.
    """
    if max_nodes < 1:
        raise CombinationError("max_nodes must be >= 1")
    profs = tuple(profiles)
    caps = _grid_capacities(profs, resolution)
    n_rates = max_units + 1
    n_arch = len(profs)

    g = np.full((max_nodes + 1, n_rates), np.inf)
    g[0, 0] = 0.0
    g_choice = np.full((max_nodes + 1, n_rates), -1, dtype=np.int64)
    cand = np.empty((n_arch, n_rates))
    for n in range(1, max_nodes + 1) if n_arch else ():
        cand[:] = np.inf
        for a, p in enumerate(profs):
            cap = caps[a]
            if cap >= n_rates:
                continue
            cand[a, cap:] = g[n - 1, : n_rates - cap] + p.max_power
        best_a = np.argmin(cand, axis=0)
        best = cand[best_a, np.arange(n_rates)]
        g[n] = best
        g_choice[n] = np.where(np.isfinite(best), best_a, -1)

    # f[r]: cheapest combination (full layers + <=1 partial machine)
    f = np.full(n_rates, np.inf)
    f[0] = 0.0
    f_n = np.full(n_rates, -1, dtype=np.int64)       # full-layer count used
    f_arch = np.full(n_rates, -1, dtype=np.int64)    # partial machine arch
    f_from = np.full(n_rates, -1, dtype=np.int64)    # grid index it extends
    rates = np.arange(n_rates) * resolution
    for n in range(0, max_nodes):
        layer = g[n]
        # full layers alone (rate must be exactly covered)
        exact = layer < f
        f[exact] = layer[exact]
        f_n[exact] = n
        f_arch[exact] = -1
        f_from[exact] = -1
        for a, p in enumerate(profs):
            h = layer - p.slope * rates
            best_h, arg_h = _sliding_min_with_arg(h, caps[a])
            cand_f = best_h + p.idle_power + p.slope * rates
            better = cand_f < f
            f[better] = cand_f[better]
            f_n[better] = n
            f_arch[better] = a
            f_from[better] = arg_h[better]
    # the full budget may also be spent entirely on full machines
    exact = g[max_nodes] < f
    f[exact] = g[max_nodes][exact]
    f_n[exact] = max_nodes
    f_arch[exact] = -1
    f_from[exact] = -1
    return profs, caps, g_choice, f, f_n, f_arch, f_from


def _solve_bounded_reference(
    profiles: Sequence[ArchitectureProfile],
    max_units: int,
    resolution: float,
    max_nodes: int,
):
    """The original masked per-architecture layer updates (test reference)."""
    if max_nodes < 1:
        raise CombinationError("max_nodes must be >= 1")
    profs = tuple(profiles)
    caps = _grid_capacities(profs, resolution)
    n_rates = max_units + 1

    g = np.full((max_nodes + 1, n_rates), np.inf)
    g[0, 0] = 0.0
    g_choice = np.full((max_nodes + 1, n_rates), -1, dtype=np.int64)
    for n in range(1, max_nodes + 1):
        for a, p in enumerate(profs):
            cap = caps[a]
            if cap >= n_rates:
                continue
            cand = g[n - 1, : n_rates - cap] + p.max_power
            better = cand < g[n, cap:]
            g[n, cap:][better] = cand[better]
            g_choice[n, cap:][better] = a

    f = np.full(n_rates, np.inf)
    f[0] = 0.0
    f_n = np.full(n_rates, -1, dtype=np.int64)
    f_arch = np.full(n_rates, -1, dtype=np.int64)
    f_from = np.full(n_rates, -1, dtype=np.int64)
    rates = np.arange(n_rates) * resolution
    for n in range(0, max_nodes):
        layer = g[n]
        exact = layer < f
        f[exact] = layer[exact]
        f_n[exact] = n
        f_arch[exact] = -1
        f_from[exact] = -1
        for a, p in enumerate(profs):
            h = layer - p.slope * rates
            best_h, arg_h = _sliding_min_with_arg(h, caps[a])
            cand = best_h + p.idle_power + p.slope * rates
            better = cand < f
            f[better] = cand[better]
            f_n[better] = n
            f_arch[better] = a
            f_from[better] = arg_h[better]
    exact = g[max_nodes] < f
    f[exact] = g[max_nodes][exact]
    f_n[exact] = max_nodes
    f_arch[exact] = -1
    f_from[exact] = -1
    return profs, caps, g_choice, f, f_n, f_arch, f_from


def bounded_nodes_table(
    profiles: Sequence[ArchitectureProfile],
    max_rate: float,
    max_nodes: int,
    resolution: float = 1.0,
) -> np.ndarray:
    """Optimal power per grid rate using at most ``max_nodes`` machines.

    Entries are ``inf`` where the node budget cannot reach the rate (the
    budget times the biggest machine is the hard ceiling).
    """
    max_units = int(math.ceil(max_rate / resolution - _TOL))
    _, _, _, f, _, _, _ = _solve_bounded(profiles, max_units, resolution, max_nodes)
    return f


def bounded_nodes_combination(
    rate: float,
    profiles: Sequence[ArchitectureProfile],
    max_nodes: int,
    resolution: float = 1.0,
) -> Combination:
    """The cheapest combination for ``rate`` with at most ``max_nodes``."""
    if rate <= _TOL:
        return Combination.empty()
    units = int(math.ceil(rate / resolution - _TOL))
    profs, caps, g_choice, f, f_n, f_arch, f_from = _solve_bounded(
        profiles, units, resolution, max_nodes
    )
    if not np.isfinite(f[units]):
        raise CombinationError(
            f"{max_nodes} machines cannot serve rate {rate} with these architectures"
        )
    counts: Dict[ArchitectureProfile, int] = {}
    r = units
    n = int(f_n[units])
    a = int(f_arch[units])
    if a >= 0:
        counts[profs[a]] = counts.get(profs[a], 0) + 1
        r = int(f_from[units])
    while r > 0 or n > 0:
        if r == 0 and n > 0:
            # remaining layers are zero-rate covers: impossible except n=0
            raise CombinationError("inconsistent DP backtrack")
        choice = int(g_choice[n, r])
        if choice < 0:
            raise CombinationError("inconsistent DP backtrack")
        counts[profs[choice]] = counts.get(profs[choice], 0) + 1
        r -= caps[choice]
        n -= 1
    return Combination.of(counts)


def enforce_min_nodes(
    combo: Combination,
    min_nodes: int,
    ordered: Sequence[ArchitectureProfile],
) -> Combination:
    """Pad ``combo`` up to ``min_nodes`` machines with the cheapest idlers.

    Redundancy floors ("always at least k instances") add machines that
    carry no load; the Little architecture has the lowest idle power, so
    padding uses the smallest-idle machine available.
    """
    if min_nodes < 0:
        raise CombinationError("min_nodes must be >= 0")
    deficit = min_nodes - combo.total_nodes
    if deficit <= 0:
        return combo
    filler = min(ordered, key=lambda p: p.idle_power)
    counts = {p: c for p, c in combo.items}
    counts[filler] = counts.get(filler, 0) + deficit
    return Combination.of(counts)


def _bounded_counts_all(
    g_choice: np.ndarray, caps: Sequence[int], n_arch: int
) -> np.ndarray:
    """Node counts of the exact-cover chain for every ``(layer, rate)`` state.

    The bounded DP's backtrack walks ``(n, r) -> (n-1, r - caps[choice])``;
    flattening states to ``n * n_rates + r`` turns that walk into a parent
    chain that pointer-doubling resolves in ``O(log max_nodes)`` vectorised
    gathers — the layered counterpart of
    :func:`repro.core.combination._cover_counts_all`.  Rows whose state is
    unreachable (choice ``-1``) stay at whatever partial chain they reach;
    callers must only read states with a finite DP cost.
    """
    n_layers, n_rates = g_choice.shape
    choice = g_choice.reshape(-1)
    states = np.arange(n_layers * n_rates)
    counts = np.zeros((n_layers * n_rates, n_arch), dtype=np.int64)
    valid = choice >= 0
    counts[states[valid], choice[valid]] = 1
    caps_arr = np.asarray(caps, dtype=np.int64)
    jump = np.where(valid, states - n_rates - caps_arr[np.where(valid, choice, 0)], 0)
    # A valid state's parent is valid (finite costs chain to (0, 0)), so
    # every chain terminates at flat index 0 where the jump is 0.
    jump = np.maximum(jump, 0)
    while np.any(jump > 0):
        counts += counts[jump]
        jump = jump[jump]
    return counts


def _constrained_counts_reference(
    ordered: Sequence[ArchitectureProfile],
    spec: "ApplicationSpec",
    max_units: int,
    resolution: float,
) -> List[Combination]:
    """Per-rate backtracking construction — the property-test reference."""
    combos: List[Combination] = []
    if spec.max_instances is None:
        from .combination import build_table

        base = build_table(ordered, {}, max_units * resolution, resolution, "ideal")
        combos = [base.combination_for(k * resolution) for k in range(max_units + 1)]
    else:
        profs, caps, g_choice, f, f_n, f_arch, f_from = _solve_bounded_reference(
            ordered, max_units, resolution, spec.max_instances
        )
        memo: Dict[Tuple[int, int, int], Combination] = {}
        for k in range(max_units + 1):
            if not np.isfinite(f[k]):
                raise CombinationError(
                    f"max_instances={spec.max_instances} cannot serve "
                    f"rate {k * resolution}"
                )
            n, a = int(f_n[k]), int(f_arch[k])
            r = int(f_from[k]) if a >= 0 else k
            sig = (n, a, r)
            combo = memo.get(sig)
            if combo is None:
                counts: Dict[ArchitectureProfile, int] = {}
                if a >= 0:
                    counts[profs[a]] = counts.get(profs[a], 0) + 1
                while n > 0:
                    choice = int(g_choice[n, r])
                    counts[profs[choice]] = counts.get(profs[choice], 0) + 1
                    r -= caps[choice]
                    n -= 1
                combo = Combination.of(counts)
                memo[sig] = combo
            combos.append(combo)
    padded: Dict[Combination, Combination] = {}

    def _pad(combo: Combination) -> Combination:
        out = padded.get(combo)
        if out is None:
            out = enforce_min_nodes(combo, spec.min_instances, ordered)
            padded[combo] = out
        return out

    return [c if not c else _pad(c) for c in combos]


def constrained_table(
    ordered: Sequence[ArchitectureProfile],
    spec: "ApplicationSpec",
    max_rate: float,
    resolution: float = 1.0,
    base_table: Optional[CombinationTable] = None,
) -> CombinationTable:
    """A combination table honouring the application's instance bounds.

    With no ``max_instances`` the entries are the unconstrained DP optima
    (``base_table``, when given, supplies that exact-DP table — the
    infrastructure-level cache passes its memoised one); otherwise each
    rate's combination uses at most that many machines.  ``min_instances``
    pads every non-empty entry (rate 0 keeps the empty combination: the
    service is scaled to zero, as in the unconstrained tables).
    """
    max_units = int(math.ceil(max_rate / resolution - _TOL))
    n_rates = max_units + 1
    if spec.max_instances is None:
        if base_table is None:
            from .combination import build_table

            base_table = build_table(
                ordered, {}, max_units * resolution, resolution, "ideal"
            )
        if len(base_table) < n_rates:
            raise CombinationError(
                f"base table covers {base_table.max_rate}, need {max_rate}"
            )
        counts = base_table.counts_array[:n_rates].copy()
    else:
        profs, caps, g_choice, f, f_n, f_arch, f_from = _solve_bounded(
            ordered, max_units, resolution, spec.max_instances
        )
        bad = ~np.isfinite(f)
        if bad.any():
            k = int(np.argmax(bad))
            raise CombinationError(
                f"max_instances={spec.max_instances} cannot serve "
                f"rate {k * resolution}"
            )
        layer_counts = _bounded_counts_all(g_choice, caps, len(profs))
        rows = np.arange(n_rates)
        has_partial = f_arch >= 0
        start_r = np.where(has_partial, f_from, rows)
        # Rate 0 keeps f_n == -1 (the empty combination, never updated by
        # the layer loop); route it to flat state 0 — (layer 0, rate 0),
        # whose chain is empty — instead of a wrapped negative index.
        state = np.where(f_n >= 0, f_n * n_rates + start_r, 0)
        counts = layer_counts[state].copy()
        counts[rows[has_partial], f_arch[has_partial]] += 1
    # min_instances padding on the count matrix (empty rows stay empty).
    if spec.min_instances > 0:
        filler = min(ordered, key=lambda p: p.idle_power)
        col = next(i for i, p in enumerate(ordered) if p is filler)
        totals = counts.sum(axis=1)
        deficit = spec.min_instances - totals
        pad_rows = (totals > 0) & (deficit > 0)
        counts[pad_rows, col] += deficit[pad_rows]
    combos = _combos_from_counts(ordered, counts)
    return CombinationTable(ordered, combos, resolution, "constrained", _counts=counts)
