"""Steps 3-4 of the BML methodology: crossing points between architectures.

The *minimum utilization threshold* of an architecture is the performance
rate from which using one (partially loaded) node of it draws less power
than serving the same rate with smaller machines.  The rates where the
power profiles meet are the paper's *crossing points*.

* **Step 3** compares each architecture against homogeneous stacks of the
  next smaller surviving candidate.  An architecture whose profile *never*
  crosses the smaller one's stack within its own performance range can
  never win and is removed (this eliminates Graphene in the paper's
  evaluation).
* **Step 4** re-evaluates the thresholds against *ideal mixed combinations*
  of **all** smaller surviving architectures (computed with the exact DP
  of :mod:`repro.core.combination`), because e.g. topping up full Medium
  nodes with Little nodes postpones the point where Big pays off — in the
  paper this raises Big's threshold, and for the real machines yields the
  published thresholds 1 / 10 / 529 req/s.

Ties prefer the bigger architecture (switching to one bigger node at equal
power reduces node count and future switching).
The Little architecture's threshold is 1 grid unit by definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .combination import ideal_table
from .profiles import ArchitectureProfile

__all__ = [
    "CrossingReport",
    "crossing_vs_stack",
    "crossing_vs_ideal",
    "step3_thresholds",
    "step4_thresholds",
    "compute_thresholds",
]

_TOL = 1e-9


@dataclass(frozen=True)
class CrossingReport:
    """Result of the full Step 3 + Step 4 pipeline.

    ``kept`` are the final candidates big to little, ``thresholds`` their
    Step 4 minimum utilization thresholds (in application-metric units),
    ``step3`` the intermediate Step 3 thresholds of the kept candidates,
    and ``removed`` maps eliminated architectures to the step that removed
    them (``"step3"`` / ``"step4"``).
    """

    kept: Tuple[ArchitectureProfile, ...]
    thresholds: Dict[str, float]
    step3: Dict[str, float]
    removed: Dict[str, str]


def _single_node_power_grid(
    prof: ArchitectureProfile, max_units: int, resolution: float
) -> np.ndarray:
    """Power of one node at grid rates ``0..max_units`` (inf beyond max_perf)."""
    rates = np.arange(max_units + 1) * resolution
    out = np.full(max_units + 1, np.inf)
    ok = rates <= prof.max_perf * (1 + 1e-12)
    out[ok] = prof.idle_power + prof.slope * rates[ok]
    return out


def crossing_vs_stack(
    big: ArchitectureProfile,
    little: ArchitectureProfile,
    resolution: float = 1.0,
) -> Optional[float]:
    """Step 3 crossing point of ``big`` against homogeneous ``little`` stacks.

    Returns the smallest grid rate (in ``(0, big.max_perf]``) at which one
    ``big`` node draws no more power than the minimal homogeneous stack of
    ``little`` nodes, or ``None`` when the profiles never cross.
    """
    max_units = int(math.floor(big.max_perf / resolution + _TOL))
    rates = np.arange(1, max_units + 1) * resolution
    big_power = big.idle_power + big.slope * rates
    stack = np.asarray(little.stack_power(rates))
    wins = big_power <= stack + _TOL
    if not np.any(wins):
        return None
    return float(rates[int(np.argmax(wins))])


class _SharedIdealTables:
    """Exact-DP adversary tables shared across Step-4 candidates.

    The Step-4 adversary of candidate ``kept[i]`` is the ideal-combination
    power curve of the suffix ``kept[i+1:]``; the elimination loop
    re-queries the same suffix with ever-bigger candidates as it removes
    architectures.  The DP is prefix-stable (every entry depends only on
    smaller rates), so each suffix's table is built once at the largest
    rate requested so far and smaller requests are served as zero-copy
    slices — monotone reuse, exactly like the infrastructure table cache.
    """

    def __init__(self, resolution: float) -> None:
        self.resolution = resolution
        self._tables: Dict[Tuple[str, ...], np.ndarray] = {}
        self.builds = 0
        self.hits = 0

    def power(
        self, smaller: Sequence[ArchitectureProfile], max_units: int
    ) -> np.ndarray:
        """Ideal power for grid rates ``0..max_units`` of ``smaller``."""
        key = tuple(p.name for p in smaller)
        table = self._tables.get(key)
        if table is None or len(table) < max_units + 1:
            self.builds += 1
            table = ideal_table(
                smaller, max_units * self.resolution, self.resolution
            )
            self._tables[key] = table
        else:
            self.hits += 1
        return table[: max_units + 1]


def crossing_vs_ideal(
    big: ArchitectureProfile,
    smaller: Sequence[ArchitectureProfile],
    resolution: float = 1.0,
    tables: Optional[_SharedIdealTables] = None,
) -> Optional[float]:
    """Step 4 crossing point of ``big`` against ideal mixed combinations.

    ``smaller`` are all surviving architectures below ``big``; their ideal
    combination power curve (exact DP) is the adversary.  ``tables``
    (optional) supplies shared adversary tables so repeated queries over
    the same survivor set reuse one DP solve.
    """
    if not smaller:
        return resolution  # nothing below: usable from the first grid rate
    max_units = int(math.floor(big.max_perf / resolution + _TOL))
    if tables is not None:
        ideal = tables.power(smaller, max_units)
    else:
        ideal = ideal_table(smaller, max_units * resolution, resolution)
    rates = np.arange(1, max_units + 1) * resolution
    big_power = big.idle_power + big.slope * rates
    wins = big_power <= ideal[1:] + _TOL
    if not np.any(wins):
        return None
    return float(rates[int(np.argmax(wins))])


def step3_thresholds(
    ordered: Sequence[ArchitectureProfile],
    resolution: float = 1.0,
) -> Tuple[List[ArchitectureProfile], Dict[str, float], Dict[str, str]]:
    """Step 3: thresholds vs the next smaller candidate; drop non-crossers.

    Works on the Step 2 output (big to little).  When an architecture never
    crosses the next smaller surviving one, it is removed and the
    comparison repeats with the candidate above it, until the list is
    stable.  The Little architecture keeps threshold ``resolution``.
    """
    kept = list(ordered)
    removed: Dict[str, str] = {}
    # The elimination loop and the threshold pass evaluate the same pure
    # crossing computations; memoise them per (big, little) pair.
    cache: Dict[Tuple[str, str], Optional[float]] = {}

    def cross(big: ArchitectureProfile, little: ArchitectureProfile) -> Optional[float]:
        key = (big.name, little.name)
        if key not in cache:
            cache[key] = crossing_vs_stack(big, little, resolution)
        return cache[key]

    changed = True
    while changed:
        changed = False
        for i in range(len(kept) - 2, -1, -1):
            if cross(kept[i], kept[i + 1]) is None:
                # ``big`` can never beat stacks of the machine right below
                # it; with profiles sorted by efficiency this means it never
                # participates in an ideal combination.
                removed[kept[i].name] = "step3"
                del kept[i]
                changed = True
                break
    thresholds: Dict[str, float] = {}
    for i, prof in enumerate(kept):
        if i == len(kept) - 1:
            thresholds[prof.name] = resolution
        else:
            result = cross(prof, kept[i + 1])
            assert result is not None  # guaranteed by the elimination loop
            thresholds[prof.name] = result
    return kept, thresholds, removed


def step4_thresholds(
    ordered: Sequence[ArchitectureProfile],
    resolution: float = 1.0,
) -> Tuple[List[ArchitectureProfile], Dict[str, float], Dict[str, str]]:
    """Step 4: thresholds vs ideal combinations of all smaller survivors."""
    kept = list(ordered)
    removed: Dict[str, str] = {}
    # The Step 4 adversary (exact-DP table of all smaller survivors) is the
    # expensive part and is recomputed by both the elimination loop and the
    # threshold pass; memoise crossings per (big, smaller-set) key and share
    # the underlying DP tables per survivor set across candidates (after an
    # elimination, the bigger candidate inherits the removed one's suffix,
    # whose table is then served as a slice instead of a fresh solve).
    cache: Dict[Tuple[str, Tuple[str, ...]], Optional[float]] = {}
    tables = _SharedIdealTables(resolution)

    def cross(
        big: ArchitectureProfile, smaller: List[ArchitectureProfile]
    ) -> Optional[float]:
        key = (big.name, tuple(p.name for p in smaller))
        if key not in cache:
            cache[key] = crossing_vs_ideal(big, smaller, resolution, tables)
        return cache[key]

    changed = True
    while changed:
        changed = False
        for i in range(len(kept) - 2, -1, -1):
            if cross(kept[i], kept[i + 1 :]) is None:
                removed[kept[i].name] = "step4"
                del kept[i]
                changed = True
                break
    thresholds: Dict[str, float] = {}
    for i, prof in enumerate(kept):
        if i == len(kept) - 1:
            thresholds[prof.name] = resolution
        else:
            result = cross(prof, kept[i + 1 :])
            assert result is not None
            thresholds[prof.name] = result
    return kept, thresholds, removed


def compute_thresholds(
    ordered: Sequence[ArchitectureProfile],
    resolution: float = 1.0,
) -> CrossingReport:
    """Run Steps 3 and 4 and return the consolidated report."""
    kept3, thr3, removed3 = step3_thresholds(ordered, resolution)
    kept4, thr4, removed4 = step4_thresholds(kept3, resolution)
    removed = dict(removed3)
    removed.update(removed4)
    step3_kept = {p.name: thr3[p.name] for p in kept4}
    return CrossingReport(
        kept=tuple(kept4),
        thresholds=thr4,
        step3=step3_kept,
        removed=removed,
    )
