"""The paper's primary contribution: the 5-step BML design methodology and
the pro-active energy-proportional scheduler.

Typical end-to-end flow::

    from repro.core import design, BMLScheduler, table_i_profiles
    from repro.workload import synthesize
    from repro.sim import execute_plan

    infra = design(table_i_profiles())
    trace = synthesize()
    result = execute_plan(BMLScheduler(infra).plan(trace), trace, "BML")
"""

from .adaptive import TransitionAwareScheduler, transition_cost
from .baselines import (
    big_machines_needed,
    global_upper_bound_plan,
    per_day_upper_bound_plan,
)
from .bml import BMLInfrastructure, design
from .combination import (
    Combination,
    CombinationError,
    CombinationTable,
    build_table,
    greedy_combination,
    ideal_combination,
    ideal_table,
)
from .constraints import (
    bounded_nodes_combination,
    bounded_nodes_table,
    constrained_table,
    enforce_min_nodes,
)
from .crossing import (
    CrossingReport,
    compute_thresholds,
    crossing_vs_ideal,
    crossing_vs_stack,
)
from .filtering import FilterResult, bml_candidates, filter_dominated, sort_by_performance
from .prediction import (
    EWMAPredictor,
    LookAheadMaxPredictor,
    NoisyPredictor,
    PerfectPredictor,
    Predictor,
    TrailingMaxPredictor,
    paper_window,
)
from .profiles import (
    ILLUSTRATIVE,
    TABLE_I,
    ArchitectureProfile,
    ProfileError,
    illustrative_profiles,
    table_i_profiles,
)
from .reconfiguration import (
    Reconfiguration,
    SchedulePlan,
    Segment,
    build_plan,
    plan_reconfiguration,
    reconfiguration_window,
)
from .scheduler import BMLScheduler, ScheduleOutcome

__all__ = [
    "ArchitectureProfile",
    "ProfileError",
    "TABLE_I",
    "ILLUSTRATIVE",
    "table_i_profiles",
    "illustrative_profiles",
    "FilterResult",
    "bml_candidates",
    "filter_dominated",
    "sort_by_performance",
    "CrossingReport",
    "compute_thresholds",
    "crossing_vs_stack",
    "crossing_vs_ideal",
    "Combination",
    "CombinationError",
    "CombinationTable",
    "build_table",
    "greedy_combination",
    "ideal_combination",
    "ideal_table",
    "BMLInfrastructure",
    "design",
    "Predictor",
    "LookAheadMaxPredictor",
    "PerfectPredictor",
    "TrailingMaxPredictor",
    "EWMAPredictor",
    "NoisyPredictor",
    "paper_window",
    "Segment",
    "Reconfiguration",
    "SchedulePlan",
    "plan_reconfiguration",
    "reconfiguration_window",
    "build_plan",
    "BMLScheduler",
    "ScheduleOutcome",
    "TransitionAwareScheduler",
    "transition_cost",
    "bounded_nodes_combination",
    "bounded_nodes_table",
    "constrained_table",
    "enforce_min_nodes",
    "big_machines_needed",
    "global_upper_bound_plan",
    "per_day_upper_bound_plan",
]
