"""Reconfiguration planning: turning combination changes into timed actions.

A *reconfiguration* moves the data center from one machine combination to
another.  The library models it make-before-break, charging the paper's
measured overheads (Table I):

1. at the decision time, every machine to be added starts **booting**; a
   booting machine of architecture ``a`` draws ``OnE_a / Ont_a`` Watts for
   ``Ont_a`` seconds (then idles until the hand-over if other architectures
   boot longer);
2. when the slowest boot completes, the application instances **migrate**
   (stateless: stop instance, start instance, update the load balancer) and
   the new combination takes over the serving;
3. machines leaving the combination then **shut down**, drawing
   ``OffE_a / Offt_a`` Watts for ``Offt_a`` seconds.

During the whole window no new decision may be taken (the paper's policy
"ensures the completion of On/Off actions before a new decision"); the
scheduler resumes its sliding window at the completion time.

The planner emits :class:`Segment` lists — contiguous spans with a constant
*serving* combination and constant *overhead* power — which the simulator
integrates against the load trace fully vectorised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .combination import Combination
from .profiles import ArchitectureProfile

__all__ = [
    "Segment",
    "Reconfiguration",
    "SchedulePlan",
    "plan_reconfiguration",
    "reconfiguration_window",
    "build_plan",
]


@dataclass(frozen=True)
class Segment:
    """A span ``[t_start, t_end)`` with constant serving set and overhead.

    ``serving`` is the combination actually processing requests during the
    span; ``overhead_power`` is the constant extra draw of machines booting,
    waiting for hand-over, or shutting down.
    """

    t_start: int
    t_end: int
    serving: Combination
    overhead_power: float = 0.0

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError(f"empty segment [{self.t_start}, {self.t_end})")
        if self.overhead_power < 0:
            raise ValueError("overhead power must be >= 0")

    @property
    def duration(self) -> int:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class Reconfiguration:
    """One reconfiguration event and its accounted overheads."""

    decided_at: int
    completes_at: int
    before: Combination
    after: Combination
    boot_duration: int
    off_duration: int
    on_energy: float
    off_energy: float

    @property
    def duration(self) -> int:
        """Total blocking duration in seconds."""
        return self.completes_at - self.decided_at

    @property
    def switch_energy(self) -> float:
        """Total switching energy in Joules (On + Off overheads).

        Note the *waiting* energy of early-booted machines idling until the
        hand-over is carried by the segments' ``overhead_power``, not here.
        """
        return self.on_energy + self.off_energy


@dataclass
class SchedulePlan:
    """A complete, validated execution plan over ``[0, horizon)`` seconds."""

    horizon: int
    initial: Combination
    segments: List[Segment]
    reconfigurations: List[Reconfiguration] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")
        if not self.segments:
            raise ValueError("plan needs at least one segment")
        t = 0
        for seg in self.segments:
            if seg.t_start != t:
                raise ValueError(
                    f"segments not contiguous at t={t} (got {seg.t_start})"
                )
            t = seg.t_end
        if t != self.horizon:
            raise ValueError(f"plan covers [0, {t}), expected [0, {self.horizon})")

    @property
    def final(self) -> Combination:
        """Combination serving at the end of the horizon."""
        return self.segments[-1].serving

    @property
    def n_reconfigurations(self) -> int:
        return len(self.reconfigurations)

    @property
    def total_switch_energy(self) -> float:
        """Sum of On/Off energies over all reconfigurations (Joules)."""
        return sum(r.switch_energy for r in self.reconfigurations)


def _ceil_s(x: float) -> int:
    return int(math.ceil(x - 1e-9))


def reconfiguration_window(
    current: Combination, target: Combination
) -> Tuple[int, int]:
    """(boot, shutdown) durations in whole seconds for a combination change.

    The blocking window of the decision is their sum: boots run first
    (make-before-break), shutdowns start at the hand-over.
    """
    delta = current.diff(target)
    profs = {p.name: p for p in current.profiles + target.profiles}
    boot = max(
        (_ceil_s(profs[n].on_time) for n, d in delta.items() if d > 0), default=0
    )
    off = max(
        (_ceil_s(profs[n].off_time) for n, d in delta.items() if d < 0), default=0
    )
    return boot, off


def plan_reconfiguration(
    decided_at: int,
    current: Combination,
    target: Combination,
    horizon: int,
) -> Tuple[List[Segment], Reconfiguration]:
    """Plan one reconfiguration; returns its segments and event record.

    Segments are clipped to ``horizon`` (a reconfiguration may be decided
    close to the end of the trace); energies are *not* pro-rated in the
    event record, but the clipped segments carry pro-rated overhead, so the
    integrated energy stays consistent with what physically happened before
    the horizon.
    """
    delta = current.diff(target)
    profs: Dict[str, ArchitectureProfile] = {
        p.name: p for p in current.profiles + target.profiles
    }
    starts = {n: d for n, d in delta.items() if d > 0}
    stops = {n: -d for n, d in delta.items() if d < 0}
    if not starts and not stops:
        raise ValueError("reconfiguration with no machine changes")

    boot_dur = max((_ceil_s(profs[n].on_time) for n in starts), default=0)
    off_dur = max((_ceil_s(profs[n].off_time) for n in stops), default=0)
    handover = decided_at + boot_dur
    completes = handover + off_dur

    # Overhead power is piecewise constant; collect the change points.
    # Booting arch a: boot power for Ont_a, then idle until hand-over.
    # Stopping arch a: shutdown power for Offt_a after hand-over, then 0.
    boundaries = {decided_at, handover, completes}
    for n in starts:
        boundaries.add(decided_at + _ceil_s(profs[n].on_time))
    for n in stops:
        boundaries.add(handover + _ceil_s(profs[n].off_time))
    cuts = sorted(b for b in boundaries if decided_at <= b <= completes)

    segments: List[Segment] = []
    for a, b in zip(cuts[:-1], cuts[1:]):
        if a >= horizon:
            break
        b_clip = min(b, horizon)
        overhead = 0.0
        for n, cnt in starts.items():
            p = profs[n]
            boot_end = decided_at + _ceil_s(p.on_time)
            if a < boot_end:
                # Average boot power over the (integer-rounded) duration so
                # the integrated boot energy equals OnE exactly.
                overhead += cnt * (p.on_energy / max(_ceil_s(p.on_time), 1))
            elif a < handover:
                overhead += cnt * p.idle_power  # booted, waiting for hand-over
        for n, cnt in stops.items():
            p = profs[n]
            off_end = handover + _ceil_s(p.off_time)
            if handover <= a < off_end:
                overhead += cnt * (p.off_energy / max(_ceil_s(p.off_time), 1))
        serving = current if a < handover else target
        segments.append(Segment(a, b_clip, serving, overhead))
        if b_clip < b:
            break

    event = Reconfiguration(
        decided_at=decided_at,
        completes_at=completes,
        before=current,
        after=target,
        boot_duration=boot_dur,
        off_duration=off_dur,
        on_energy=sum(cnt * profs[n].on_energy for n, cnt in starts.items()),
        off_energy=sum(cnt * profs[n].off_energy for n, cnt in stops.items()),
    )
    return segments, event


def build_plan(
    horizon: int,
    initial: Combination,
    decisions: Sequence[Tuple[int, Combination]],
    allow_overlap_trim: bool = False,
) -> SchedulePlan:
    """Assemble a full plan from ``(decision_time, target_combination)``.

    Decisions must be strictly increasing in time and each must fire after
    the previous reconfiguration completed (the scheduler guarantees this;
    ``allow_overlap_trim=True`` instead silently drops late-arriving
    decisions that fall inside a running reconfiguration — useful for
    simple calendar policies like the per-day baseline).
    """
    segments: List[Segment] = []
    events: List[Reconfiguration] = []
    current = initial
    t = 0
    for when, target in decisions:
        if when >= horizon:
            break
        if when < t:
            if allow_overlap_trim:
                continue
            raise ValueError(
                f"decision at t={when} inside the reconfiguration "
                f"running until t={t}"
            )
        if target == current:
            continue
        if when > t:
            segments.append(Segment(t, when, current))
        recon_segs, event = plan_reconfiguration(when, current, target, horizon)
        segments.extend(recon_segs)
        events.append(event)
        current = target
        t = min(event.completes_at, horizon)
        if t >= horizon:
            break
    if t < horizon:
        segments.append(Segment(t, horizon, current))
    return SchedulePlan(
        horizon=horizon, initial=initial, segments=segments, reconfigurations=events
    )
