"""Architecture energy/performance profiles (Step 1 of the BML methodology).

An :class:`ArchitectureProfile` is the tuple the paper measures for every
candidate machine type (Table I):

* ``max_perf`` — maximum application performance rate a single node can
  sustain, expressed in the application metric (requests/s for the paper's
  stateless web server);
* ``idle_power`` / ``max_power`` — average electrical power (Watts) drawn
  when idle and when running at ``max_perf``;
* ``on_time`` / ``on_energy`` — duration (s) and energy (J) of switching the
  node on;
* ``off_time`` / ``off_energy`` — duration (s) and energy (J) of switching
  the node off.

Between idle and full load the paper assumes a *linear* power model
(Sec. IV-A, citing Rivoire et al. for the approximation error).  A
homogeneous *stack* of nodes repeats the profile beyond ``max_perf``
(Fig. 1): the canonical loading of ``k`` nodes serving rate ``r`` is
``k - 1`` fully loaded nodes plus one node absorbing the remainder, which is
optimal for a homogeneous group under the linear model because machines are
most energy-efficient when fully loaded.

The module also ships the paper's published profiles:

* :data:`TABLE_I` — the five real machines of Table I;
* :data:`ILLUSTRATIVE` — the four illustrative architectures A-D used by
  Figs. 1 and 2 (the paper gives only the plots; the constants here are
  chosen to reproduce the narrated behaviour: D dominated by A, Medium
  threshold near 150, Big threshold jumping at Medium's ``max_perf`` in
  Step 3 and increasing in Step 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ArchitectureProfile",
    "ProfileError",
    "TABLE_I",
    "ILLUSTRATIVE",
    "table_i_profiles",
    "illustrative_profiles",
]

ArrayLike = Union[float, int, np.ndarray]


class ProfileError(ValueError):
    """Raised when a profile is internally inconsistent."""


@dataclass(frozen=True)
class ArchitectureProfile:
    """Energy/performance profile of one machine architecture.

    Parameters mirror Table I of the paper.  All powers are in Watts, times
    in seconds, energies in Joules, and performance rates in the abstract
    application metric (requests/s in the paper's evaluation).
    """

    name: str
    max_perf: float
    idle_power: float
    max_power: float
    on_time: float = 0.0
    on_energy: float = 0.0
    off_time: float = 0.0
    off_energy: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("profile needs a non-empty name")
        if not (self.max_perf > 0):
            raise ProfileError(f"{self.name}: max_perf must be > 0, got {self.max_perf}")
        if self.idle_power < 0:
            raise ProfileError(f"{self.name}: idle_power must be >= 0, got {self.idle_power}")
        if self.max_power < self.idle_power:
            raise ProfileError(
                f"{self.name}: max_power ({self.max_power}) must be >= idle_power "
                f"({self.idle_power}); the linear model needs a non-negative slope"
            )
        for attr in ("on_time", "on_energy", "off_time", "off_energy"):
            if getattr(self, attr) < 0:
                raise ProfileError(f"{self.name}: {attr} must be >= 0")
        # Precompute the hot derived scalars once; `slope` in particular is
        # read on every power-model evaluation and every balancer fill, and
        # a per-access division shows up in replay profiles.  Stored via
        # object.__setattr__ because the dataclass is frozen; not declared
        # as fields so equality/hash/repr stay defined by Table I inputs.
        object.__setattr__(self, "_dynamic_range", self.max_power - self.idle_power)
        object.__setattr__(
            self, "_slope", (self.max_power - self.idle_power) / self.max_perf
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def dynamic_range(self) -> float:
        """Dynamic power range ``max_power - idle_power`` in Watts."""
        return self._dynamic_range

    @property
    def slope(self) -> float:
        """Marginal power in W per unit of performance rate (linear model)."""
        return self._slope

    @property
    def full_load_efficiency(self) -> float:
        """Watts per unit of rate when fully loaded (``max_power/max_perf``).

        The *lower*, the more efficient; architectures are most efficient
        when fully loaded, which motivates Step 5's fill-the-big-nodes-first
        greedy.
        """
        return self.max_power / self.max_perf

    @property
    def boot_power(self) -> float:
        """Average power drawn while booting (``on_energy / on_time``)."""
        return self.on_energy / self.on_time if self.on_time > 0 else 0.0

    @property
    def shutdown_power(self) -> float:
        """Average power drawn while shutting down (``off_energy/off_time``)."""
        return self.off_energy / self.off_time if self.off_time > 0 else 0.0

    @property
    def switching_energy(self) -> float:
        """Total energy of one on+off cycle in Joules."""
        return self.on_energy + self.off_energy

    @property
    def switching_time(self) -> float:
        """Total duration of one on+off cycle in seconds."""
        return self.on_time + self.off_time

    # ------------------------------------------------------------------
    # Single-node linear power model
    # ------------------------------------------------------------------
    def power(self, rate: ArrayLike) -> ArrayLike:
        """Power (W) of a single node serving ``rate``.

        ``rate`` may be a scalar or a numpy array; it must lie in
        ``[0, max_perf]`` (up to a small tolerance to absorb float noise).
        """
        r = np.asarray(rate, dtype=float)
        if np.any(r < -1e-9) or np.any(r > self.max_perf * (1 + 1e-9)):
            raise ProfileError(
                f"{self.name}: rate out of [0, {self.max_perf}] for single node"
            )
        r = np.clip(r, 0.0, self.max_perf)
        out = self.idle_power + self.slope * r
        return float(out) if np.isscalar(rate) or out.ndim == 0 else out

    def nodes_required(self, rate: ArrayLike) -> ArrayLike:
        """Minimum number of nodes of this architecture needed for ``rate``."""
        r = np.asarray(rate, dtype=float)
        if np.any(r < -1e-9):
            raise ProfileError(f"{self.name}: negative rate")
        # ceil with tolerance so that rate == k * max_perf needs exactly k.
        n = np.ceil(np.maximum(r, 0.0) / self.max_perf - 1e-12).astype(int)
        return int(n) if np.isscalar(rate) or n.ndim == 0 else n

    def stack_power(self, rate: ArrayLike, nodes: Optional[int] = None) -> ArrayLike:
        """Power of a homogeneous stack serving ``rate``.

        The canonical loading is used: all nodes but one are fully loaded
        and the last absorbs the remainder ("the profile is repeated",
        Fig. 1).  With ``nodes=None`` the minimal node count is used; an
        explicit larger ``nodes`` models over-provisioned stacks whose spare
        nodes idle.
        """
        r = np.asarray(rate, dtype=float)
        needed = np.ceil(np.maximum(r, 0.0) / self.max_perf - 1e-12).astype(int)
        if nodes is None:
            n = needed
        else:
            if np.any(needed > nodes):
                raise ProfileError(
                    f"{self.name}: {nodes} nodes cannot serve rate {r} "
                    f"(need {np.max(needed)})"
                )
            n = np.full_like(needed, nodes)
        full = np.maximum(needed - 1, 0)
        remainder = np.clip(r - full * self.max_perf, 0.0, self.max_perf)
        # Nodes beyond the needed count idle; a zero-rate stack of n nodes
        # draws n * idle_power (0 when n == 0 and nodes is None).
        partial_active = (needed > 0).astype(float)
        out = (
            full * self.max_power
            + partial_active * (self.idle_power + self.slope * remainder)
            + (n - full - partial_active.astype(int)) * self.idle_power
        )
        return float(out) if np.isscalar(rate) or out.ndim == 0 else out

    def energy_full_day(self, rate: float) -> float:
        """Energy in Joules for a stack serving a constant ``rate`` for 24 h."""
        return float(self.stack_power(rate)) * 86400.0

    # ------------------------------------------------------------------
    # Comparisons / utilities
    # ------------------------------------------------------------------
    def dominates(self, other: "ArchitectureProfile") -> bool:
        """True when ``self`` makes ``other`` useless for BML (Step 2).

        ``other`` is dominated when it delivers lower performance while its
        maximum power consumption is at least as high — it can never improve
        energy proportionality.
        """
        return self.max_perf > other.max_perf and other.max_power >= self.max_power

    def scaled(self, factor: float, name: Optional[str] = None) -> "ArchitectureProfile":
        """A copy whose performance axis is scaled by ``factor``.

        Useful for what-if studies: power characteristics are unchanged,
        only ``max_perf`` scales.
        """
        if factor <= 0:
            raise ProfileError("scale factor must be > 0")
        return replace(self, name=name or self.name, max_perf=self.max_perf * factor)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (for CSV/JSON export and table rendering)."""
        return {
            "name": self.name,
            "max_perf": self.max_perf,
            "idle_power": self.idle_power,
            "max_power": self.max_power,
            "on_time": self.on_time,
            "on_energy": self.on_energy,
            "off_time": self.off_time,
            "off_energy": self.off_energy,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ArchitectureProfile":
        """Inverse of :meth:`as_dict`."""
        return cls(
            name=str(data["name"]),
            max_perf=float(data["max_perf"]),
            idle_power=float(data["idle_power"]),
            max_power=float(data["max_power"]),
            on_time=float(data.get("on_time", 0.0)),
            on_energy=float(data.get("on_energy", 0.0)),
            off_time=float(data.get("off_time", 0.0)),
            off_energy=float(data.get("off_energy", 0.0)),
        )


# ----------------------------------------------------------------------
# Published profiles
# ----------------------------------------------------------------------

#: The five architectures of Table I, verbatim from the paper.
TABLE_I: Dict[str, ArchitectureProfile] = {
    "paravance": ArchitectureProfile(
        name="paravance", max_perf=1331.0, idle_power=69.9, max_power=200.5,
        on_time=189.0, on_energy=21341.0, off_time=10.0, off_energy=657.0,
    ),
    "taurus": ArchitectureProfile(
        name="taurus", max_perf=860.0, idle_power=95.8, max_power=223.7,
        on_time=164.0, on_energy=20628.0, off_time=11.0, off_energy=1173.0,
    ),
    "graphene": ArchitectureProfile(
        name="graphene", max_perf=272.0, idle_power=47.7, max_power=123.8,
        on_time=71.0, on_energy=4940.0, off_time=16.0, off_energy=760.0,
    ),
    "chromebook": ArchitectureProfile(
        name="chromebook", max_perf=33.0, idle_power=4.0, max_power=7.6,
        on_time=12.0, on_energy=49.3, off_time=21.0, off_energy=77.6,
    ),
    "raspberry": ArchitectureProfile(
        name="raspberry", max_perf=9.0, idle_power=3.1, max_power=3.7,
        on_time=16.0, on_energy=40.5, off_time=14.0, off_energy=36.2,
    ),
}

#: Illustrative architectures A-D of Sec. IV / Figs. 1-2.  The paper only
#: plots them; these constants reproduce the narrated behaviour (see module
#: docstring).  On/Off costs are plausible placeholders scaled with size.
ILLUSTRATIVE: Dict[str, ArchitectureProfile] = {
    "A": ArchitectureProfile(
        name="A", max_perf=600.0, idle_power=60.0, max_power=80.0,
        on_time=120.0, on_energy=9000.0, off_time=12.0, off_energy=700.0,
    ),
    "B": ArchitectureProfile(
        name="B", max_perf=150.0, idle_power=15.0, max_power=50.0,
        on_time=60.0, on_energy=2000.0, off_time=10.0, off_energy=300.0,
    ),
    "C": ArchitectureProfile(
        name="C", max_perf=30.0, idle_power=2.0, max_power=10.0,
        on_time=15.0, on_energy=60.0, off_time=10.0, off_energy=30.0,
    ),
    "D": ArchitectureProfile(
        name="D", max_perf=300.0, idle_power=40.0, max_power=90.0,
        on_time=90.0, on_energy=5000.0, off_time=12.0, off_energy=500.0,
    ),
}


def table_i_profiles() -> List[ArchitectureProfile]:
    """The five Table I profiles as a list (paper's presentation order)."""
    return [TABLE_I[k] for k in ("paravance", "taurus", "graphene", "chromebook", "raspberry")]


def illustrative_profiles() -> List[ArchitectureProfile]:
    """The four illustrative architectures A, B, C, D of Fig. 1."""
    return [ILLUSTRATIVE[k] for k in ("A", "B", "C", "D")]
