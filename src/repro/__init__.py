"""repro — Big/Medium/Little energy-proportional data centers.

A faithful, fully offline reproduction of Villebonnet, Da Costa, Lefèvre,
Pierson and Stolf, *"Dynamically Building Energy Proportional Data Centers
with Heterogeneous Computing Resources"*, IEEE CLUSTER 2016.

Quick start::

    import repro

    infra = repro.design(repro.table_i_profiles())   # Steps 1-4
    print(infra.thresholds)                          # {'paravance': 529, ...}
    combo = infra.combination_for(1400)              # Step 5
    trace = repro.synthesize(n_days=7)               # WC98-shaped workload
    plan = repro.BMLScheduler(infra).plan(trace)     # pro-active scheduling
    result = repro.execute_plan(plan, trace, "BML")  # energy + QoS
    print(result.total_energy_kwh, result.qos(trace).served_fraction)

Sub-packages: :mod:`repro.core` (methodology + scheduler),
:mod:`repro.sim` (data-center simulator), :mod:`repro.workload` (traces),
:mod:`repro.scenarios` (declarative scenario specs, registry and runner),
:mod:`repro.profiling` (Table I substrate), :mod:`repro.analysis`
(metrics/figures), :mod:`repro.experiments` (one entry point per paper
table/figure).
"""

from .core import (
    ArchitectureProfile,
    BMLInfrastructure,
    BMLScheduler,
    Combination,
    CombinationTable,
    EWMAPredictor,
    LookAheadMaxPredictor,
    NoisyPredictor,
    PerfectPredictor,
    SchedulePlan,
    TrailingMaxPredictor,
    TransitionAwareScheduler,
    design,
    global_upper_bound_plan,
    greedy_combination,
    ideal_combination,
    illustrative_profiles,
    paper_window,
    per_day_upper_bound_plan,
    table_i_profiles,
)
from .sim import SimulationResult, execute_plan, lower_bound_result
from .workload import LoadTrace, WorldCupSynthesizer, synthesize
from . import scenarios
from .scenarios import (
    ScenarioRun,
    ScenarioSpec,
    SchedulerSpec,
    WorkloadSpec,
    run_scenario,
    run_suite,
)
from . import results
from .results import RunStore, ScenarioResult, SuiteReport, diff_results

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ArchitectureProfile",
    "BMLInfrastructure",
    "BMLScheduler",
    "TransitionAwareScheduler",
    "Combination",
    "CombinationTable",
    "SchedulePlan",
    "design",
    "greedy_combination",
    "ideal_combination",
    "table_i_profiles",
    "illustrative_profiles",
    "paper_window",
    "LookAheadMaxPredictor",
    "PerfectPredictor",
    "TrailingMaxPredictor",
    "EWMAPredictor",
    "NoisyPredictor",
    "global_upper_bound_plan",
    "per_day_upper_bound_plan",
    "execute_plan",
    "lower_bound_result",
    "SimulationResult",
    "LoadTrace",
    "WorldCupSynthesizer",
    "synthesize",
    "scenarios",
    "ScenarioSpec",
    "WorkloadSpec",
    "SchedulerSpec",
    "ScenarioRun",
    "run_scenario",
    "run_suite",
    "results",
    "ScenarioResult",
    "RunStore",
    "SuiteReport",
    "diff_results",
]
