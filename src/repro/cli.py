"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------

``repro profile``
    Run the simulated profiling campaign (E1) and print the Table I
    reproduction.
``repro design [--source table1|campaign|illustrative]``
    Run Steps 2-4 and print the BML candidates, roles and thresholds.
``repro combination RATE [RATE ...]``
    Print the ideal BML combination (Step 5) for the given rates.
``repro simulate [--days N] [--seed S] [--window W] [--csv DIR]``
    Full Fig. 5 replay: four scenarios, per-day energies, headline
    overhead statistics.
``repro experiment {table1,fig1,fig2,fig3,fig4,fig5}``
    Regenerate one paper artifact and print its series/rows.
``repro scenario list [--tag TAG]``
    Show the declarative scenario registry.
``repro scenario show NAME``
    Print one scenario spec as JSON (``from_dict``-compatible).
``repro scenario run [NAME ...|--all] [--jobs N] [--days D] [--csv DIR]
[--save DIR]``
    Run scenarios through the one execution path, optionally fanned out
    over worker processes; ``--save`` persists every run into a
    :class:`~repro.results.store.RunStore` directory.
``repro scenario diff A B [--store DIR]``
    Compare two persisted runs (run ids in the store, or paths to run
    directories): headline metric deltas, per-day energy deltas and spec
    field changes.
``repro scenario report [NAME ...] [--store DIR ...] [--baseline NAME]
[--prune N] [--facet AXIS]``
    Aggregate the latest stored run of each scenario into a suite report
    (summary table, savings vs a baseline); ``--prune N`` first applies
    the store's retention policy (keep each scenario's newest N runs).
    ``--store`` repeats to federate several stores (newest record per
    scenario wins — the half-sweep-per-host case); ``--facet AXIS``
    adds per-axis aggregate tables for sweep-minted runs.
``repro sweep list|show|expand|run``
    Parametric scenario grids: list the registered sweeps, show one as
    JSON, expand one into its minted scenario specs, or run the whole
    grid through the suite runner (same fan-out, checkpoint and
    fault-tolerance options as ``scenario run``).
``repro serve FEED --dir DIR [--resume] [--max-rate R] [--window W]``
    Streaming provisioning daemon: follow a growing rate feed (one
    rate per line, ``END`` terminates), emit the batch engine's exact
    reconfiguration decisions into a crash-safe journal under DIR, and
    checkpoint so ``--resume`` continues exactly after any crash.
    ``repro serve --status --dir DIR`` prints the daemon's health file.
``repro cache-stats [--json]``
    Surface every process-level cache's telemetry in one view: the
    memoised infrastructures' combination-table counters, the
    breakpoint-table LRU, the serving-set kernel LRU, and the
    shared-memory trace fan-out counters (segments, bytes shipped vs
    pickled).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from . import experiments
from .analysis.tables import render_table, write_csv
from .core.bml import design
from .core.prediction import LookAheadMaxPredictor
from .core.profiles import illustrative_profiles, table_i_profiles
from .profiling.harness import ProfilingCampaign
from .profiling.hardware import paper_hardware

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing and ``--help`` docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "BML energy-proportional data centers "
            "(reproduction of Villebonnet et al., CLUSTER 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_prof = sub.add_parser("profile", help="run the Step 1 profiling campaign")
    p_prof.add_argument("--noise", type=float, default=0.05, help="wattmeter noise (W)")
    p_prof.add_argument("--seed", type=int, default=0)

    p_design = sub.add_parser("design", help="run Steps 2-4 and print thresholds")
    p_design.add_argument(
        "--source",
        choices=("table1", "campaign", "illustrative"),
        default="table1",
        help="where Step 1 profiles come from",
    )

    p_combo = sub.add_parser("combination", help="Step 5 combination for given rates")
    p_combo.add_argument("rates", type=float, nargs="+")
    p_combo.add_argument("--method", choices=("greedy", "ideal"), default="greedy")

    p_sim = sub.add_parser("simulate", help="full Fig. 5 World Cup replay")
    p_sim.add_argument("--days", type=int, default=87)
    p_sim.add_argument("--seed", type=int, default=1998)
    p_sim.add_argument("--window", type=int, default=378, help="look-ahead (s)")
    p_sim.add_argument("--method", choices=("greedy", "ideal"), default="greedy")
    p_sim.add_argument(
        "--policy",
        choices=("bml", "transition-aware"),
        default="bml",
        help="scheduler for the BML scenario",
    )
    p_sim.add_argument(
        "--engine",
        choices=("segments", "reference", "twophase"),
        default=None,
        help="replay the BML scenario on this event-driven engine variant "
             "instead of the fast plan executor",
    )
    p_sim.add_argument(
        "--stats", action="store_true",
        help="print replay statistics (segments, serving sets, batches)",
    )
    p_sim.add_argument("--csv", type=Path, default=None, help="dump series to DIR")
    p_sim.add_argument(
        "--save", type=Path, default=None,
        help="persist the four scenario runs into a run store at DIR",
    )

    p_trace = sub.add_parser(
        "trace", help="synthesize a WC98-shaped workload trace to a file"
    )
    p_trace.add_argument("out", type=Path, help="output path (.npz or .csv)")
    p_trace.add_argument("--days", type=int, default=7)
    p_trace.add_argument("--seed", type=int, default=1998)
    p_trace.add_argument("--peak", type=float, default=5000.0)
    p_trace.add_argument(
        "--wc98-binary",
        action="store_true",
        help="also write .log.gz files in the original archive record format",
    )

    p_exp = sub.add_parser("experiment", help="regenerate one paper artifact")
    p_exp.add_argument(
        "name", choices=("table1", "fig1", "fig2", "fig3", "fig4", "fig5")
    )
    p_exp.add_argument("--days", type=int, default=87, help="fig5 trace length")
    p_exp.add_argument("--csv", type=Path, default=None, help="dump series to DIR")

    p_scen = sub.add_parser("scenario", help="declarative scenario registry")
    scen_sub = p_scen.add_subparsers(dest="scenario_command", required=True)
    p_list = scen_sub.add_parser("list", help="show registered scenarios")
    p_list.add_argument("--tag", default=None, help="only scenarios with TAG")
    p_show = scen_sub.add_parser("show", help="print one spec as JSON")
    p_show.add_argument("name")
    p_run = scen_sub.add_parser("run", help="run scenarios by name")
    p_run.add_argument("names", nargs="*", help="registry names (see list)")
    p_run.add_argument(
        "--all", action="store_true", help="run every registered scenario"
    )
    p_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    p_run.add_argument(
        "--days", type=int, default=None,
        help="override every scenario's workload length (days)",
    )
    p_run.add_argument(
        "--engine",
        choices=("segments", "reference", "twophase"),
        default=None,
        help="replay scheduling-policy scenarios on this event-driven "
             "engine variant (baseline policies keep their engine)",
    )
    p_run.add_argument(
        "--stats", action="store_true",
        help="print replay statistics (segments, serving sets, batches)",
    )
    p_run.add_argument("--csv", type=Path, default=None, help="dump series to DIR")
    p_run.add_argument(
        "--save", type=Path, default=None,
        help="persist every run into a run store at DIR as it completes "
             "(prints run ids)",
    )
    p_run.add_argument(
        "--keep-going", action="store_true",
        help="run every scenario even when some fail: survivors are "
             "reported normally, failures go to stderr and the exit "
             "code is 2",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="skip scenarios whose results the --save store already "
             "holds (checkpoint/resume; requires --save)",
    )
    p_run.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per scenario before it is declared failed "
             "(default 1: no retry)",
    )
    p_run.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-chunk deadline in seconds with --jobs > 1 (hung "
             "workers are detected, the pool resurrected, their work "
             "retried)",
    )
    p_run.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="cap fan-out chunks at N scenarios (finer dispatch/retry "
             "granularity; shared-memory traces keep it cheap)",
    )
    p_run.add_argument(
        "--no-shm", action="store_true",
        help="disable shared-memory trace distribution (ship traces "
             "by value per chunk instead)",
    )
    p_diff = scen_sub.add_parser(
        "diff", help="compare two persisted runs (metrics, series, spec)"
    )
    p_diff.add_argument("run_a", help="run id in --store, or a run directory")
    p_diff.add_argument("run_b", help="run id in --store, or a run directory")
    p_diff.add_argument(
        "--store", type=Path, default=Path("runs"),
        help="run store directory resolving bare run ids (default: runs/)",
    )
    p_diff.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="write the full diff as JSON to FILE ('-' for stdout)",
    )
    p_diff.add_argument(
        "--csv", type=Path, default=None, metavar="FILE",
        help="write metric/spec delta rows as CSV to FILE",
    )
    p_report = scen_sub.add_parser(
        "report", help="aggregate stored runs into a suite report"
    )
    p_report.add_argument(
        "names", nargs="*",
        help="scenario names to include (default: every stored scenario)",
    )
    p_report.add_argument(
        "--store", type=Path, action="append", default=None,
        help="run store directory (default: runs/); repeat to federate "
             "several stores — the newest record per scenario wins",
    )
    p_report.add_argument(
        "--baseline", default=None,
        help="scenario name to compute savings against",
    )
    p_report.add_argument(
        "--csv", type=Path, default=None, help="dump series to DIR"
    )
    p_report.add_argument(
        "--prune", type=int, default=None, metavar="N",
        help="first prune the store to each scenario's newest N runs "
             "(single --store only)",
    )
    p_report.add_argument(
        "--facet", action="append", default=None, metavar="AXIS",
        help="add an aggregate table grouped by this sweep axis "
             "(repeatable; see 'repro sweep list')",
    )

    p_sweep = sub.add_parser("sweep", help="parametric scenario grids")
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)
    sw_list = sweep_sub.add_parser("list", help="show registered sweeps")
    sw_list.add_argument("--tag", default=None, help="only sweeps with TAG")
    sw_show = sweep_sub.add_parser("show", help="print one sweep as JSON")
    sw_show.add_argument("name")
    sw_expand = sweep_sub.add_parser(
        "expand", help="mint a sweep's scenario specs"
    )
    sw_expand.add_argument("name")
    sw_expand.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the first N grid points",
    )
    sw_expand.add_argument(
        "--json", action="store_true",
        help="print the minted specs as a JSON list (from_dict-compatible)",
    )
    sw_run = sweep_sub.add_parser(
        "run", help="run a whole grid through the suite runner"
    )
    sw_run.add_argument("name")
    sw_run.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the first N grid points",
    )
    sw_run.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = in-process)"
    )
    sw_run.add_argument(
        "--save", type=Path, default=None,
        help="persist every run into a run store at DIR as it completes",
    )
    sw_run.add_argument(
        "--resume", action="store_true",
        help="skip grid points the --save store already holds",
    )
    sw_run.add_argument(
        "--keep-going", action="store_true",
        help="run every grid point even when some fail (exit code 2)",
    )
    sw_run.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per scenario before it is declared failed",
    )
    sw_run.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-chunk deadline in seconds with --jobs > 1",
    )
    sw_run.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="cap fan-out chunks at N scenarios",
    )
    sw_run.add_argument(
        "--no-shm", action="store_true",
        help="disable shared-memory trace distribution",
    )
    sw_run.add_argument(
        "--engine",
        choices=("segments", "reference", "twophase"),
        default=None,
        help="replay scheduling-policy grid points on this event-driven "
             "engine variant (baseline policies keep their engine)",
    )
    sw_run.add_argument(
        "--stats", action="store_true",
        help="print replay statistics (segments, serving sets, batches, "
             "per-phase wall time)",
    )
    sw_run.add_argument(
        "--baseline", default=None,
        help="grid-point name to compute savings against",
    )
    sw_run.add_argument(
        "--facet", action="append", default=None, metavar="AXIS",
        help="add an aggregate table grouped by this sweep axis "
             "(repeatable)",
    )

    p_serve = sub.add_parser(
        "serve", help="streaming provisioning daemon over a growing feed"
    )
    p_serve.add_argument(
        "feed", type=Path, nargs="?", default=None,
        help="rate feed to follow (one rate per line; 'END' terminates)",
    )
    p_serve.add_argument(
        "--dir", type=Path, default=Path("serve"), dest="state_dir",
        help="state directory: journal, checkpoints, health (default: serve/)",
    )
    p_serve.add_argument(
        "--resume", action="store_true",
        help="continue from the directory's checkpoint (exact resume: "
             "the final journal is byte-identical to an uninterrupted run)",
    )
    p_serve.add_argument(
        "--status", action="store_true",
        help="print the daemon's health file and exit",
    )
    p_serve.add_argument(
        "--max-rate", type=float, default=5000.0,
        help="largest rate the combination table must cover (req/s)",
    )
    p_serve.add_argument(
        "--window", type=int, default=378, help="look-ahead window (s)"
    )
    p_serve.add_argument(
        "--method", choices=("greedy", "ideal"), default="greedy"
    )
    p_serve.add_argument(
        "--poll", type=float, default=0.05, metavar="S",
        help="feed poll interval in seconds",
    )
    p_serve.add_argument(
        "--stall-timeout", type=float, default=5.0, metavar="S",
        help="seconds without feed data before health flips to 'stalled' "
             "(the daemon holds the last plan and keeps listening)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=3600, metavar="N",
        help="samples between periodic checkpoints",
    )
    p_serve.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="stop (resumable) after N feed polls — smoke tests",
    )

    p_cache = sub.add_parser(
        "cache-stats", help="show process-level cache telemetry"
    )
    p_cache.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    return parser


def _cmd_profile(args: argparse.Namespace) -> int:
    campaign = ProfilingCampaign(wattmeter_noise=args.noise, seed=args.seed)
    reports = experiments.run_table1(campaign)
    rows = [r.as_table_row() for r in reports]
    print(render_table(rows, title="Table I (simulated profiling campaign)"))
    return 0


def _profiles_from_source(source: str):
    if source == "table1":
        return table_i_profiles()
    if source == "illustrative":
        return illustrative_profiles()
    return ProfilingCampaign().profiles(paper_hardware())


def _cmd_design(args: argparse.Namespace) -> int:
    infra = design(_profiles_from_source(args.source))
    print(infra.describe())
    return 0


def _cmd_combination(args: argparse.Namespace) -> int:
    infra = design(table_i_profiles())
    rows = []
    for rate in args.rates:
        combo = infra.combination_for(rate, method=args.method)
        rows.append(
            {
                "rate": rate,
                "combination": combo.describe(),
                "power_w": round(combo.power(min(rate, combo.capacity)), 2),
                "capacity": combo.capacity,
                "nodes": combo.total_nodes,
            }
        )
    print(render_table(rows, title=f"Step 5 combinations ({args.method})"))
    return 0


def _replay_stats_rows(results) -> list:
    """Replay-engine telemetry rows for ``--stats`` (scenario, engine,
    segments, unique serving sets, batch count, and the per-phase
    wall-time breakdown of the vectorized control plane — blank where
    an engine does not produce the figure)."""
    rows = []
    for res in results:
        meta = res.meta
        if meta.get("engine") is None:
            continue
        phase_s = meta.get("phase_s") or {}
        row = {
            "scenario": res.scenario,
            "engine": meta["engine"],
            "segments": meta.get("segments", ""),
            "serving_sets": meta.get("serving_sets", ""),
            "batches": meta.get("batches", ""),
        }
        for phase in ("predict", "control", "evaluate", "settle"):
            v = phase_s.get(phase)
            row[f"{phase}_s"] = "" if v is None else f"{v:.3f}"
        rows.append(row)
    return rows


def _print_replay_stats(results) -> None:
    rows = _replay_stats_rows(results)
    if not rows:
        print(
            "no replay statistics: every scenario ran on the fast plan "
            "executor (pass --engine to use the event-driven simulator)"
        )
        return
    print(render_table(rows, title="replay statistics"))


def _cmd_simulate(args: argparse.Namespace) -> int:
    engine = getattr(args, "engine", None)
    outcome = experiments.run_fig5(
        n_days=args.days,
        seed=args.seed,
        predictor=LookAheadMaxPredictor(args.window),
        method=args.method,
        policy=getattr(args, "policy", "bml"),
        engine=None if engine is None else f"event-{engine}",
    )
    print(render_table(outcome.summary_rows(), title="Fig. 5 scenarios"))
    if getattr(args, "stats", False):
        print()
        _print_replay_stats(outcome.results)
    print()
    from .analysis.charts import sparkline

    width = 60
    for res in outcome.results:
        daily = res.per_day_energy_kwh()
        print(f"{res.scenario:>22} {sparkline(daily, width=min(width, len(daily)))}")
    print(f"{'(per-day energy, kWh)':>22}")
    print()
    print(
        "BML vs theoretical lower bound (per-day energy overhead): "
        + outcome.overhead.describe()
    )
    print("paper reports: avg 32% / min 6.8% / max 161.4%")
    if args.csv:
        args.csv.mkdir(parents=True, exist_ok=True)
        fig = outcome.figure()
        write_csv(args.csv / "fig5_daily_energy.csv", fig.rows())
        write_csv(args.csv / "fig5_summary.csv", outcome.summary_rows())
        print(f"series written to {args.csv}")
    if getattr(args, "save", None):
        from .results import RunStore

        store = RunStore(args.save)
        for run_id in outcome.save(store):
            print(f"saved {run_id} -> {store.root / run_id}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis.charts import sparkline
    from .workload.worldcup import synthesize

    trace = synthesize(n_days=args.days, seed=args.seed, peak_rate=args.peak)
    if args.out.suffix == ".csv":
        trace.to_csv(args.out)
    elif args.out.suffix == ".npz":
        trace.to_npz(args.out)
    else:
        raise SystemExit(f"unsupported trace format {args.out.suffix!r}")
    print(f"wrote {args.out} ({args.days} days, peak {trace.peak:.0f} req/s)")
    print("load  " + sparkline(trace.values, width=64))
    if args.wc98_binary:
        from .workload.wc98format import write_records

        rng = np.random.default_rng(args.seed)
        base = 894_000_000
        for day in range(trace.n_days):
            sub = trace.day(day)
            # expand the per-second rates into request timestamps
            counts = np.round(sub.values).astype(np.int64)
            stamps = np.repeat(
                base + day * 86_400 + np.arange(len(sub)), counts
            )
            path = args.out.with_suffix("").with_name(
                f"{args.out.stem}_day{day:02d}.log.gz"
            )
            n = write_records(path, stamps, rng)
            print(f"wrote {path} ({n} records, archive format)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "table1":
        return _cmd_profile(argparse.Namespace(noise=0.05, seed=0))
    if name == "fig5":
        return _cmd_simulate(
            argparse.Namespace(
                days=args.days, seed=1998, window=378, method="greedy",
                csv=args.csv, save=None,
            )
        )
    fig = {
        "fig1": experiments.run_fig1,
        "fig2": experiments.run_fig2,
        "fig3": experiments.run_fig3,
        "fig4": experiments.run_fig4,
    }[name]()
    print(f"{fig.figure}: {fig.x_label} vs {fig.y_label}")
    for key, value in fig.annotations.items():
        print(f"  {key}: {value}")
    from .analysis.charts import line_chart

    print()
    print(
        line_chart(
            fig.series, width=72, height=16,
            x_label=fig.x_label, y_label=fig.y_label,
        )
    )
    print()
    step = max(1, len(next(iter(fig.series.values()))[0]) // 20)
    print(render_table(fig.rows(step=step)))
    if args.csv:
        args.csv.mkdir(parents=True, exist_ok=True)
        write_csv(args.csv / f"{fig.figure}.csv", fig.rows())
        print(f"series written to {args.csv}")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from . import scenarios

    if args.scenario_command == "list":
        rows = []
        for spec in (scenarios.by_tag(args.tag) if args.tag else scenarios.specs()):
            rows.append(
                {
                    "name": spec.name,
                    "policy": spec.scheduler.policy,
                    "workload": spec.workload.source,
                    "days": spec.workload.days,
                    "engine": spec.engine,
                    "tags": ",".join(spec.tags),
                }
            )
        print(render_table(rows, title="scenario registry"))
        return 0
    if args.scenario_command == "show":
        try:
            spec = scenarios.get(args.name)
        except scenarios.ScenarioError as exc:
            raise SystemExit(str(exc))
        print(json.dumps(spec.to_dict(), indent=2))
        return 0
    if args.scenario_command == "diff":
        return _cmd_scenario_diff(args)
    if args.scenario_command == "report":
        return _cmd_scenario_report(args)
    # run
    if args.all and args.names:
        raise SystemExit(
            "scenario run: --all runs the whole catalogue; it cannot be "
            "combined with explicit scenario names"
        )
    if args.all:
        specs = scenarios.specs()
        skipped = [s.name for s in specs if not s.workload.is_available()]
        if skipped:
            print(
                "skipping scenarios whose workload files are missing: "
                + ", ".join(skipped)
            )
        specs = [s for s in specs if s.workload.is_available()]
    elif args.names:
        try:
            specs = [scenarios.get(name) for name in args.names]
        except scenarios.ScenarioError as exc:
            raise SystemExit(str(exc))
    else:
        raise SystemExit("scenario run: give scenario names or --all")
    if args.days is not None:
        specs = [spec.with_days(args.days) for spec in specs]
    if args.engine is not None:
        from dataclasses import replace as _replace

        # Only scheduling policies replay on the event-driven simulator;
        # baselines (upper/lower bounds) have no machine-level replay.
        engine = f"event-{args.engine}"
        unchanged = [
            s.name
            for s in specs
            if s.scheduler.policy not in ("bml", "transition-aware")
        ]
        if unchanged:
            print(
                "--engine applies to scheduling-policy scenarios only; "
                "unchanged: " + ", ".join(unchanged)
            )
        specs = [
            _replace(s, engine=engine)
            if s.scheduler.policy in ("bml", "transition-aware")
            else s
            for s in specs
        ]
    from .analysis.tables import render_suite
    from .results import RunStore, ScenarioResult, SuiteReport

    store = RunStore(args.save) if args.save else None
    if args.resume and store is None:
        raise SystemExit("scenario run: --resume requires --save DIR")
    retry = None
    if args.retries != 1 or args.timeout is not None:
        try:
            retry = scenarios.RetryPolicy(
                max_attempts=args.retries, timeout_s=args.timeout
            )
        except scenarios.ScenarioError as exc:
            raise SystemExit(f"scenario run: {exc}")
    saved_before = {s.run_id for s in store.list()} if store else set()
    try:
        runs = scenarios.run_suite(
            specs,
            jobs=args.jobs,
            keep_going=args.keep_going,
            retry=retry,
            store=store,
            resume=args.resume,
            chunk_size=args.chunk_size,
            share_memory=not args.no_shm,
        )
    except scenarios.SuiteInterrupted as exc:
        # Graceful shutdown: completed scenarios are checkpointed, the
        # rest re-run under --resume.  130 = killed-by-signal exit.
        print(f"scenario run: {exc}", file=sys.stderr)
        return 130
    except Exception as exc:
        # Fatal: a failure run_suite could not degrade (keep_going off,
        # or infrastructure trouble).  Exit 1 with the message, not a
        # traceback.
        print(
            f"scenario run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.stats:
        _print_replay_stats([r.result for r in runs if hasattr(r, "result")])
        print()
    report = SuiteReport.from_runs(runs)
    if report.results:
        print(render_suite(report, title="scenario suite"))
    if args.resume:
        resumed = [r.name for r in runs if isinstance(r, ScenarioResult)]
        if resumed:
            print(
                "resumed from store (skipped): " + ", ".join(resumed)
            )
    if store:
        for stored in store.list():
            if stored.run_id not in saved_before:
                print(f"saved {stored.run_id} -> {store.root / stored.run_id}")
    if args.csv and report.results:
        from .analysis.figures import suite_series

        args.csv.mkdir(parents=True, exist_ok=True)
        fig = suite_series(report)
        write_csv(args.csv / "scenario_daily_energy.csv", fig.rows())
        write_csv(args.csv / "scenario_summary.csv", report.rows())
        print(f"series written to {args.csv}")
    if report.failures:
        print(
            render_table(
                report.failure_rows(),
                title=f"failures ({len(report.failures)})",
            ),
            file=sys.stderr,
        )
        return 2
    return 0


def _load_stored_run(arg: str, store_dir: Path):
    """A diff operand: a run directory path, or a run id in the store."""
    from .results import RunStore, load_run_dir

    path = Path(arg)
    try:
        if path.is_dir() and (path / "result.json").exists():
            return load_run_dir(path)
        return RunStore(store_dir).load(arg)
    except ValueError as exc:
        # StoreError/ResultError and malformed-JSON errors are all
        # ValueErrors; surface them as clean CLI messages, not tracebacks
        raise SystemExit(f"{arg}: {exc}")


def _cmd_scenario_diff(args: argparse.Namespace) -> int:
    import json

    from .analysis.charts import sparkline
    from .results import diff

    a = _load_stored_run(args.run_a, args.store)
    b = _load_stored_run(args.run_b, args.store)
    d = diff(a, b)
    if args.json is not None:
        payload = json.dumps(d.to_json_dict(), indent=2) + "\n"
        if str(args.json) == "-":
            print(payload, end="")
        else:
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(payload)
            print(f"diff written to {args.json}")
    if args.csv is not None:
        args.csv.parent.mkdir(parents=True, exist_ok=True)
        write_csv(args.csv, d.csv_rows())
        # keep stdout a clean JSON stream when --json - is also given
        notice_stream = sys.stderr if str(args.json) == "-" else sys.stdout
        print(f"diff rows written to {args.csv}", file=notice_stream)
    if args.json is not None or args.csv is not None:
        return 0
    print(f"a: {args.run_a}  ({a.name}, {a.days} days, engine {a.engine})")
    print(f"b: {args.run_b}  ({b.name}, {b.days} days, engine {b.engine})")
    print(d.describe())
    print()
    print(render_table(d.metric_rows(), title="headline metrics (b vs a)"))
    if d.spec_changes:
        print()
        print(render_table(d.spec_rows(), title="spec changes"))
    if d.per_day_delta_j is not None and len(d.per_day_delta_j):
        delta_kwh = d.per_day_delta_j / 3.6e6
        print()
        print(
            "per-day energy delta (kWh): "
            f"mean {delta_kwh.mean():+.3f}, "
            f"min {delta_kwh.min():+.3f}, max {delta_kwh.max():+.3f}"
        )
        if len(delta_kwh) > 1:
            print("delta/day  " + sparkline(delta_kwh, width=min(60, len(delta_kwh))))
    return 0


def _print_facets(report, facets) -> None:
    """Render one aggregate table per requested sweep axis."""
    for axis in facets:
        try:
            rows = report.facet_rows(axis)
        except ValueError as exc:
            raise SystemExit(f"--facet {axis}: {exc}")
        print()
        print(render_table(rows, title=f"facet: {axis}"))


def _cmd_scenario_report(args: argparse.Namespace) -> int:
    from .analysis.tables import render_suite
    from .results import RunStore, SuiteReport

    from .results import load_run_dir, merged_results

    stores = [RunStore(p) for p in (args.store or [Path("runs")])]
    if args.prune is not None:
        if len(stores) > 1:
            raise SystemExit(
                "scenario report: --prune mutates a store and is "
                "ambiguous across several --store directories; prune "
                "them one at a time"
            )
        if args.prune < 1:
            raise SystemExit(
                "scenario report: --prune keeps each scenario's newest N "
                "runs; N must be >= 1"
            )
        removed = stores[0].prune(keep_last=args.prune)
        if removed:
            print(
                f"pruned {len(removed)} run(s) past keep-last={args.prune}: "
                + ", ".join(removed)
            )
    roots = ", ".join(str(s.root) for s in stores)
    if len(stores) == 1:
        store = stores[0]
        stored = store.list()
        if not stored:
            raise SystemExit(f"no stored runs in {store.root}")
        # one directory scan: stored is in save order, so the last entry
        # per name is that scenario's latest run
        latest = {s.name: s for s in stored}
        names = args.names or list(dict.fromkeys(s.name for s in stored))
        missing = [name for name in names if name not in latest]
        if missing:
            raise SystemExit(
                f"no stored run for {missing[0]!r} in {store.root} "
                f"(stored: {', '.join(sorted(latest))})"
            )
        records = [load_run_dir(latest[name].path) for name in names]
    else:
        # federated view: newest record per scenario across all stores
        merged = {r.name: r for r in merged_results(stores)}
        if not merged:
            raise SystemExit(f"no stored runs in any of: {roots}")
        names = args.names or list(merged)
        missing = [name for name in names if name not in merged]
        if missing:
            raise SystemExit(
                f"no stored run for {missing[0]!r} in any of: {roots} "
                f"(stored: {', '.join(sorted(merged))})"
            )
        records = [merged[name] for name in names]
    try:
        report = SuiteReport(tuple(records), baseline=args.baseline)
    except ValueError as exc:
        raise SystemExit(str(exc))
    title = f"suite report ({roots}, latest run per scenario)"
    print(render_suite(report, title=title))
    if args.facet:
        _print_facets(report, args.facet)
    if args.baseline:
        base = report.get(args.baseline)
        print()
        print(f"savings vs {args.baseline} ({base.total_energy_kwh:.2f} kWh)")
    if args.csv:
        from .analysis.figures import suite_series

        args.csv.mkdir(parents=True, exist_ok=True)
        fig = suite_series(report)
        write_csv(args.csv / "report_daily_energy.csv", fig.rows())
        write_csv(args.csv / "report_summary.csv", report.rows())
        print(f"series written to {args.csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from . import scenarios

    if args.sweep_command == "list":
        rows = []
        for sweep in scenarios.sweeps():
            if args.tag and args.tag not in sweep.tags:
                continue
            rows.append(
                {
                    "name": sweep.name,
                    "base": sweep.base,
                    "size": sweep.size,
                    "axes": sweep.axes_summary(),
                    "tags": ",".join(sweep.tags),
                }
            )
        print(render_table(rows, title="sweep registry"))
        return 0
    try:
        sweep = scenarios.get_sweep(args.name)
    except scenarios.ScenarioError as exc:
        raise SystemExit(str(exc))
    if args.sweep_command == "show":
        print(json.dumps(sweep.to_dict(), indent=2))
        return 0
    try:
        specs = sweep.expand()
    except scenarios.ScenarioError as exc:
        raise SystemExit(str(exc))
    if args.limit is not None:
        if args.limit < 1:
            raise SystemExit(f"sweep {args.sweep_command}: --limit must be >= 1")
        specs = specs[: args.limit]
    if args.sweep_command == "expand":
        if args.json:
            print(json.dumps([s.to_dict() for s in specs], indent=2))
            return 0
        rows = [
            {
                "name": s.name,
                "policy": s.scheduler.policy,
                "workload": s.workload.source,
                "days": s.workload.days,
                "peak": s.workload.peak_rate,
                "seed": s.workload.seed,
            }
            for s in specs
        ]
        print(
            render_table(
                rows, title=f"sweep {sweep.name} ({len(specs)}/{sweep.size} points)"
            )
        )
        return 0
    # run: the same execution/checkpoint path as `scenario run`
    from .analysis.tables import render_suite
    from .results import RunStore, SuiteReport

    if args.engine is not None:
        from dataclasses import replace as _replace

        # Only scheduling policies replay on the event-driven simulator;
        # baselines (upper/lower bounds) have no machine-level replay.
        engine = f"event-{args.engine}"
        unchanged = [
            s.name
            for s in specs
            if s.scheduler.policy not in ("bml", "transition-aware")
        ]
        if unchanged:
            print(
                "--engine applies to scheduling-policy grid points only; "
                "unchanged: " + ", ".join(unchanged)
            )
        specs = [
            _replace(s, engine=engine)
            if s.scheduler.policy in ("bml", "transition-aware")
            else s
            for s in specs
        ]
    store = RunStore(args.save) if args.save else None
    if args.resume and store is None:
        raise SystemExit("sweep run: --resume requires --save DIR")
    retry = None
    if args.retries != 1 or args.timeout is not None:
        try:
            retry = scenarios.RetryPolicy(
                max_attempts=args.retries, timeout_s=args.timeout
            )
        except scenarios.ScenarioError as exc:
            raise SystemExit(f"sweep run: {exc}")
    saved_before = {s.run_id for s in store.list()} if store else set()
    try:
        runs = scenarios.run_suite(
            specs,
            jobs=args.jobs,
            keep_going=args.keep_going,
            retry=retry,
            store=store,
            resume=args.resume,
            chunk_size=args.chunk_size,
            share_memory=not args.no_shm,
        )
    except scenarios.SuiteInterrupted as exc:
        print(f"sweep run: {exc}", file=sys.stderr)
        return 130
    except Exception as exc:
        print(
            f"sweep run failed: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.stats:
        _print_replay_stats([r.result for r in runs if hasattr(r, "result")])
        print()
    try:
        report = SuiteReport.from_runs(runs, baseline=args.baseline)
    except ValueError as exc:
        raise SystemExit(f"sweep run: {exc}")
    if report.results:
        print(render_suite(report, title=f"sweep {sweep.name}"))
    if args.facet:
        _print_facets(report, args.facet)
    if store:
        saved = [
            s.run_id for s in store.list() if s.run_id not in saved_before
        ]
        if saved:
            print(f"saved {len(saved)} run(s) into {store.root}")
    if report.failures:
        print(
            render_table(
                report.failure_rows(),
                title=f"failures ({len(report.failures)})",
            ),
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .serve import ServeConfig, ServeDaemon, ServeError, read_health
    from .serve.journal import JournalCorruptError

    if args.status:
        health = read_health(args.state_dir)
        if health is None:
            print(
                f"no serve health file in {args.state_dir}", file=sys.stderr
            )
            return 1
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0
    if args.feed is None:
        raise SystemExit("serve: give a feed file (or --status)")
    config = ServeConfig(
        feed=args.feed,
        state_dir=args.state_dir,
        window=args.window,
        max_rate=args.max_rate,
        method=args.method,
        poll_s=args.poll,
        stall_timeout_s=args.stall_timeout,
        checkpoint_every=args.checkpoint_every,
    )
    try:
        daemon = ServeDaemon(config, resume=args.resume)
        status = daemon.run(max_polls=args.max_polls)
    except (ServeError, JournalCorruptError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    print(
        f"serve {status}: {daemon.engine.samples_in} samples in, "
        f"{daemon.journal.count} decision(s) journaled, "
        f"{daemon.rejected} record(s) rejected "
        f"(generation {daemon.generation}, state in {config.state_dir})"
    )
    return 0 if status == "done" else 3


def collect_cache_stats() -> dict:
    """Every process-level cache's telemetry in one mapping.

    Sections: one ``infrastructure[<key>]`` entry per memoised
    :class:`~repro.core.bml.BMLInfrastructure` (the combination-table
    cache counters), the breakpoint-table LRU of :mod:`repro.sim.energy`,
    the serving-set kernel LRU of :mod:`repro.sim.loadbalancer`, and the
    ``shared_memory`` trace fan-out counters (segments live/peak, bytes
    attached zero-copy vs bytes that would otherwise have been pickled).
    Exposed as a function (not just a CLI command) so tests and
    long-running drivers can snapshot it programmatically.
    """
    from .core.prediction import prediction_cache_stats
    from .scenarios.runner import fanout_stats, infra_cache_stats
    from .sim import breakpoint_cache_stats, serving_kernel_cache_stats
    from .workload.trace import shm_stats

    return {
        "infrastructure": infra_cache_stats(),
        "breakpoint_tables": breakpoint_cache_stats(),
        "serving_set_kernels": serving_kernel_cache_stats(),
        "predictor_series": prediction_cache_stats(),
        "shared_memory": {**shm_stats(), **fanout_stats()},
    }


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    import json

    stats = collect_cache_stats()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    rows = []
    for label, counters in stats["infrastructure"].items():
        rows.append({"cache": f"infrastructure[{label}]", **counters})
    for section in (
        "breakpoint_tables", "serving_set_kernels", "predictor_series"
    ):
        rows.append({"cache": section, **stats[section]})
    if rows:
        print(
            render_table(
                rows,
                columns=[
                    "cache",
                    "table_cache_hits",
                    "table_cache_misses",
                    "table_cache_size",
                    "table_cache_maxsize",
                    "rebuilds",
                ],
                title="cache telemetry (this process)",
            )
        )
    else:
        print("no caches populated in this process")
    # The shm counters have their own shape (bytes, segment lifecycle),
    # so they get their own key/value table rather than blank columns.
    shm_rows = [
        {"counter": key, "value": value}
        for key, value in stats["shared_memory"].items()
    ]
    print()
    print(render_table(shm_rows, title="shared-memory trace fan-out"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    handlers = {
        "profile": _cmd_profile,
        "design": _cmd_design,
        "combination": _cmd_combination,
        "simulate": _cmd_simulate,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "scenario": _cmd_scenario,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "cache-stats": _cmd_cache_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
