"""Golden pinning for the sweep catalogue's grid expansion.

Sweeps promise *deterministic* expansion: the same declaration mints the
same scenario names and spec keys on every host — that identity is what
lets two machines run halves of one grid and merge their stores.  This
file pins every registered sweep's expansion (size, the leading minted
names, and a SHA-256 over all spec keys) as
``tests/golden/sweep_catalogue.json``; expansion is pure spec
construction, so the whole check costs milliseconds even for the
288-point fleet grid.

When a change is *intentional* (a new sweep, a new axis, a renamed
base), regenerate and commit the golden file::

    PYTHONPATH=src python tests/test_sweep_golden.py --regen
"""

import hashlib
import json
from pathlib import Path

from repro import scenarios

GOLDEN_PATH = (
    Path(__file__).resolve().parent / "golden" / "sweep_catalogue.json"
)

#: How many leading minted names each sweep pins verbatim (the rest are
#: covered by the spec-key hash).
NAMES_HEAD = 8


def compute_sweep_pins():
    """name -> {size, base, names_head, spec_keys_sha256} per sweep."""
    pins = {}
    for sweep in scenarios.sweeps():
        specs = sweep.expand()
        digest = hashlib.sha256()
        for spec in specs:
            digest.update(spec.spec_key().encode())
            digest.update(b"\n")
        pins[sweep.name] = {
            "size": sweep.size,
            "base": sweep.base,
            "names_head": [s.name for s in specs[:NAMES_HEAD]],
            "spec_keys_sha256": digest.hexdigest(),
        }
    return pins


class TestSweepGolden:
    def test_golden_file_checked_in(self):
        assert GOLDEN_PATH.exists(), (
            "tests/golden/sweep_catalogue.json is missing; regenerate "
            "with: PYTHONPATH=src python tests/test_sweep_golden.py --regen"
        )

    def test_expansion_matches_golden_bit_identically(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        current = compute_sweep_pins()
        assert sorted(current) == sorted(golden["sweeps"]), (
            "the sweep registry and the golden file disagree on the "
            "sweep set; regenerate with --regen"
        )
        for name, pin in current.items():
            assert pin == golden["sweeps"][name], (
                f"{name}: grid expansion drifted from the golden pin "
                "(names or spec keys changed); if intentional, "
                "regenerate with --regen"
            )


def regen() -> Path:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_comment": (
            "Golden expansion pins of the registered sweep catalogue: "
            "per sweep, the grid size, the first minted names and a "
            "SHA-256 over every minted ScenarioSpec.spec_key(). "
            "Regenerate with: PYTHONPATH=src python "
            "tests/test_sweep_golden.py --regen"
        ),
        "names_head": NAMES_HEAD,
        "sweeps": compute_sweep_pins(),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return GOLDEN_PATH


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="regenerate the sweep-catalogue golden file"
    )
    parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite tests/golden/sweep_catalogue.json from the "
        "current sweep registry",
    )
    args = parser.parse_args()
    if not args.regen:
        parser.error("pass --regen to rewrite the golden file")
    print(f"wrote {regen()}")
