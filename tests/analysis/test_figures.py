"""Unit tests for figure series builders."""

import numpy as np
import pytest

from repro.analysis.figures import (
    fig1_series,
    fig2_series,
    fig3_series,
    fig4_series,
    fig5_series,
)
from repro.core.profiles import illustrative_profiles, table_i_profiles
from repro.sim.results import SimulationResult
from repro.workload.trace import SECONDS_PER_DAY


class TestFig1:
    def test_series_per_architecture(self):
        fig = fig1_series(
            illustrative_profiles(), kept=("A", "B", "C"), removed={"D": "A"}
        )
        assert set(fig.series) == {"A", "B", "C", "D"}
        assert fig.annotations["removed"] == {"D": "A"}

    def test_stack_curves_repeat_profiles(self):
        fig = fig1_series(illustrative_profiles(), ("A",), {}, max_rate=400.0)
        x, y = fig.series["C"]  # C has max_perf 30 -> staircase by 30
        idx60 = int(np.searchsorted(x, 60.0))
        assert y[idx60] == pytest.approx(20.0)  # two full C nodes


class TestFig2:
    def test_adversary_series_present(self, infra_abc):
        fig = fig2_series(infra_abc)
        names = list(fig.series)
        assert any("single node" in n for n in names)
        assert any("step3 adversary" in n for n in names)
        assert any("step4 adversary" in n for n in names)

    def test_threshold_annotations(self, infra_abc):
        fig = fig2_series(infra_abc)
        assert fig.annotations["step3_thresholds"]["A"] == 151.0
        assert fig.annotations["step4_thresholds"]["A"] > 151.0

    def test_step4_adversary_never_above_step3(self, infra_abc):
        fig = fig2_series(infra_abc)
        s3 = dict(fig.series)["B stack (step3 adversary of A)"]
        s4 = dict(fig.series)["ideal mix below A (step4 adversary)"]
        assert np.all(s4[1] <= s3[1] + 1e-9)


class TestFig3:
    def test_five_profiles(self):
        fig = fig3_series(table_i_profiles())
        assert len(fig.series) == 5
        x, y = fig.series["paravance"]
        assert y[0] == pytest.approx(69.9)
        assert y[-1] == pytest.approx(200.5)
        assert x[-1] == pytest.approx(1331.0)

    def test_annotations_carry_table_values(self):
        fig = fig3_series(table_i_profiles())
        assert fig.annotations["raspberry"]["max_perf"] == 9.0


class TestFig4:
    def test_three_series(self, infra):
        fig = fig4_series(infra)
        assert set(fig.series) == {"BML combination", "Big only", "BML linear"}

    def test_range_up_to_big_max_perf(self, infra):
        fig = fig4_series(infra)
        x, _ = fig.series["BML combination"]
        assert x[-1] == pytest.approx(1331.0)

    def test_bml_below_big(self, infra):
        fig = fig4_series(infra)
        _, bml = fig.series["BML combination"]
        _, big = fig.series["Big only"]
        assert np.all(bml[1:] <= big[1:] + 1e-9)

    def test_threshold_annotation(self, infra):
        assert fig4_series(infra).annotations["thresholds"]["paravance"] == 529.0


class TestFig5:
    def _result(self, name, level):
        power = np.full(2 * SECONDS_PER_DAY, level)
        return SimulationResult(
            scenario=name,
            trace_name="t",
            timestep=1.0,
            power=power,
            unserved=np.zeros_like(power),
        )

    def test_per_day_series(self):
        a = self._result("A", 100.0)
        b = self._result("B", 50.0)
        fig = fig5_series([a, b], reference=b)
        days, kwh = fig.series["A"]
        assert len(days) == 2
        assert kwh[0] == pytest.approx(100.0 * 86400 / 3.6e6)

    def test_overhead_annotations_vs_reference(self):
        a = self._result("A", 132.0)
        ref = self._result("LB", 100.0)
        fig = fig5_series([a, ref], reference=ref)
        note = fig.annotations["A vs LB"]
        assert note["avg_overhead"] == pytest.approx(0.32)

    def test_rows_long_format(self):
        a = self._result("A", 1.0)
        rows = fig5_series([a]).rows()
        assert rows[0] == {"series": "A", "x": 0.0, "y": pytest.approx(0.024)}
