"""Unit tests for terminal charts."""

import numpy as np
import pytest

from repro.analysis.charts import line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_width_resampling(self):
        out = sparkline(np.arange(1000.0), width=20)
        assert len(out) == 20

    def test_monotone_series_monotone_glyphs(self):
        out = sparkline([0.0, 1.0, 2.0, 3.0])
        assert list(out) == sorted(out)

    def test_constant_series(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert len(set(out)) == 1

    def test_peak_survives_resampling(self):
        values = np.zeros(1000)
        values[123] = 9.0
        out = sparkline(values, width=10)
        assert "█" in out

    def test_ascii_mode(self):
        out = sparkline([0.0, 9.0], unicode=False)
        assert all(ord(ch) < 128 for ch in out)

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestLineChart:
    def test_renders_all_series_markers(self):
        x = np.arange(10.0)
        chart = line_chart({"a": (x, x), "b": (x, x[::-1])})
        assert "*" in chart and "o" in chart
        assert "* a" in chart and "o b" in chart

    def test_axis_labels(self):
        x = np.arange(5.0)
        chart = line_chart({"s": (x, x)}, x_label="rate", y_label="W")
        assert "rate" in chart and chart.splitlines()[0] == "W"

    def test_bounds_in_output(self):
        x = np.array([0.0, 100.0])
        y = np.array([3.0, 47.0])
        chart = line_chart({"s": (x, y)})
        assert "47" in chart and "3" in chart and "100" in chart

    def test_figure_series_compatible(self, infra):
        from repro.analysis.figures import fig4_series

        fig = fig4_series(infra)
        chart = line_chart(fig.series, width=60, height=12)
        assert "BML combination" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": ([0.0], [1.0])}, width=4)
