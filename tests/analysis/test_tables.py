"""Unit tests for table rendering and CSV output."""

import csv

import pytest

from repro.analysis.tables import format_value, render_table, write_csv


class TestFormatValue:
    def test_none_is_dash(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int(self):
        assert format_value(42) == "42"

    def test_float_trims_zeros(self):
        assert format_value(1.5) == "1.5"
        assert format_value(2.0) == "2"

    def test_large_and_tiny_use_general_format(self):
        assert format_value(123456.0) == "1.23e+05"
        assert format_value(0.00001) == "1e-05"

    def test_zero(self):
        assert format_value(0.0) == "0"


class TestRenderTable:
    def test_empty(self):
        assert "(empty)" in render_table([])

    def test_header_and_rows(self):
        out = render_table([{"name": "a", "v": 1}, {"name": "bb", "v": 22}])
        lines = out.splitlines()
        assert lines[0].split() == ["name", "v"]
        assert lines[2].split() == ["a", "1"]
        assert lines[3].split() == ["bb", "22"]

    def test_title(self):
        out = render_table([{"x": 1}], title="T")
        assert out.splitlines()[0] == "T"

    def test_numeric_right_aligned(self):
        out = render_table([{"value": 1}, {"value": 100}])
        lines = out.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")

    def test_column_selection_and_order(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert out.splitlines()[0].split() == ["b", "a"]

    def test_missing_cells_dash(self):
        out = render_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in out.splitlines()[2]


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = tmp_path / "out.csv"
        write_csv(path, rows)
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back == [{"x": "1", "y": "a"}, {"x": "2", "y": "b"}]

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(path, [])
        assert path.read_text() == ""

    def test_column_filter(self, tmp_path):
        path = tmp_path / "cols.csv"
        write_csv(path, [{"a": 1, "b": 2}], columns=["a"])
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back == [{"a": "1"}]
