"""Unit tests for energy-proportionality metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    energy_savings,
    ipr,
    ldr,
    overhead_stats,
    proportionality_gap,
)


class TestIPR:
    def test_half_idle_server(self):
        # the paper's motivating case: idle = 50 % of peak
        assert ipr([50.0, 75.0, 100.0]) == pytest.approx(0.5)

    def test_perfectly_proportional(self):
        assert ipr([0.0, 50.0, 100.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ipr([10.0])
        with pytest.raises(ValueError):
            ipr([1.0, 0.0])


class TestLDR:
    def test_linear_curve_has_zero_ldr(self):
        assert ldr(np.linspace(10, 100, 50)) == pytest.approx(0.0)

    def test_bulge_above_line_positive(self):
        x = np.linspace(0, 1, 101)
        curve = 10 + 90 * np.sqrt(x)  # concave: above the chord
        assert ldr(curve) > 0

    def test_sag_below_line_negative(self):
        x = np.linspace(0, 1, 101)
        curve = 10 + 90 * x**2
        assert ldr(curve) < 0

    def test_known_midpoint_deviation(self):
        # line 10..30, curve hits 30 at midpoint: deviation (30-20)/20 = 0.5
        assert ldr([10.0, 30.0, 30.0]) == pytest.approx(0.5)


class TestProportionalityGap:
    def test_proportional_curve_zero(self):
        assert proportionality_gap(np.linspace(0, 100, 11)) == pytest.approx(0.0)

    def test_idle_dominated_curve_positive(self):
        assert proportionality_gap([50.0, 75.0, 100.0]) > 0

    def test_bml_smaller_gap_than_big_only(self, infra):
        rates = np.arange(0.0, 1332.0)
        bml = infra.power_curve(rates)
        big = np.asarray(infra.big.stack_power(rates))
        big[0] = infra.big.idle_power  # one big always on at rate 0
        assert proportionality_gap(bml) < proportionality_gap(big)


class TestOverheadStats:
    def test_stats_values(self):
        stats = overhead_stats([110.0, 150.0, 100.0], [100.0, 100.0, 100.0])
        assert stats.mean == pytest.approx(0.2)
        assert stats.minimum == pytest.approx(0.0)
        assert stats.maximum == pytest.approx(0.5)
        assert stats.median == pytest.approx(0.1)
        assert len(stats.per_day) == 3

    def test_describe_format(self):
        text = overhead_stats([132.0], [100.0]).describe()
        assert "32.0%" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            overhead_stats([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            overhead_stats([1.0], [0.0])


class TestSavings:
    def test_savings(self):
        assert energy_savings(60.0, 100.0) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_savings(10.0, 0.0)
