"""Serving-set kernel cache and deferred array ledger (PR 5).

The composite kernel collapses a steady segment's balance/draw chain to
a handful of vector ops over the window's unique rates; the deferred
ledger buffers per-machine contributions and settles them in one cumsum
pass.  Both must reproduce the eager PR 2 kernels bit-for-bit, and the
kernel LRU must behave like the repo's other telemetry caches
(eviction, hit/miss counters, cross-segment and cross-replay reuse).
"""

import numpy as np
import pytest

from repro.sim.energy import EnergyMeter
from repro.sim.loadbalancer import (
    LoadBalancer,
    ServingSetKernel,
    serving_kernel_cache_stats,
    serving_set_kernel,
)
from repro.sim.machine import Machine, MachineState

pytestmark = pytest.mark.quick


@pytest.fixture()
def machines(toy_profiles):
    big, little = toy_profiles
    meter = EnergyMeter()
    out = []
    for i, prof in enumerate([big, little, little]):
        m = Machine(machine_id=f"m{i}", profile=prof, meter=meter)
        m.state = MachineState.ON
        out.append(m)
    return out


class TestKernelEquivalence:
    """kernel.evaluate == balance_series + draws, bit for bit."""

    @pytest.mark.parametrize("strategy", ["efficient", "proportional"])
    @pytest.mark.parametrize("compress", [True, False])
    def test_matches_balance_series(self, machines, strategy, compress):
        rng = np.random.default_rng(7)
        rates = np.round(rng.uniform(0.0, 150.0, size=200), 1)  # repeats
        lb = LoadBalancer(strategy)
        reference = lb.balance_series(rates, machines)
        kernel = serving_set_kernel(strategy, machines)
        window = kernel.evaluate(rates, compress=compress)
        assert np.array_equal(
            window.gather(window.unserved), reference.unserved
        )
        for i, m in enumerate(machines):
            assert np.array_equal(
                window.gather(window.loads[i]), reference.loads[m.machine_id]
            )
            expected_draw = (
                m.profile.idle_power
                + m.profile.slope * reference.loads[m.machine_id]
            )
            assert np.array_equal(
                window.draw_series(m.machine_id), expected_draw
            )
            assert np.array_equal(
                window.load_series(m.machine_id),
                reference.loads[m.machine_id],
            )

    def test_small_scalar_path_matches_vector(self, machines):
        rng = np.random.default_rng(11)
        rates = rng.uniform(0.0, 200.0, size=13)
        kernel = serving_set_kernel("efficient", machines)
        window = kernel.evaluate(rates)
        loads, draws, unserved = kernel.evaluate_small(rates)
        assert np.array_equal(np.asarray(unserved), window.gather(window.unserved))
        for i in range(len(machines)):
            assert np.array_equal(
                np.asarray(loads[i]), window.gather(window.loads[i])
            )
            assert np.array_equal(
                np.asarray(draws[i]), window.gather(window.draws[i])
            )

    def test_materialise_draws_shapes_like_apply_series(self, machines):
        rates = np.linspace(0.0, 120.0, 40)
        lb = LoadBalancer("efficient")
        eager = lb.apply_series(rates, machines, t_start=0)
        kernel = serving_set_kernel("efficient", machines)
        lazy = kernel.evaluate(rates).materialise_draws()
        assert set(lazy) == set(eager.draws)
        for machine_id, series in eager.draws.items():
            assert np.array_equal(lazy[machine_id], series)

    def test_negative_rates_rejected_unless_prevalidated(self, machines):
        kernel = serving_set_kernel("efficient", machines)
        with pytest.raises(ValueError):
            kernel.evaluate(np.array([1.0, -0.5]))


class TestKernelCache:
    def test_cross_segment_reuse_hits(self, toy_profiles):
        big, _ = toy_profiles
        meter = EnergyMeter()
        m = Machine(machine_id="hit-probe", profile=big, meter=meter)
        m.state = MachineState.ON
        before = serving_kernel_cache_stats()
        k1 = serving_set_kernel("efficient", [m])  # miss: fresh serving set
        k2 = serving_set_kernel("efficient", [m])  # hit: same serving set
        after = serving_kernel_cache_stats()
        assert k1 is k2
        assert after["table_cache_hits"] == before["table_cache_hits"] + 1
        assert after["table_cache_misses"] == before["table_cache_misses"] + 1

    def test_order_and_strategy_are_part_of_the_key(self, machines):
        k1 = serving_set_kernel("efficient", machines)
        assert serving_set_kernel("proportional", machines) is not k1
        assert serving_set_kernel("efficient", machines[::-1]) is not k1

    def test_cross_replay_reuse_is_profile_safe(self, toy_profiles):
        """Same machine ids + different profiles must not collide."""
        big, little = toy_profiles
        meter = EnergyMeter()
        a = Machine(machine_id="m0", profile=big, meter=meter)
        b = Machine(machine_id="m0", profile=little, meter=meter)
        a.state = b.state = MachineState.ON
        assert serving_set_kernel("efficient", [a]) is not serving_set_kernel(
            "efficient", [b]
        )

    def test_eviction_and_telemetry(self, toy_profiles):
        from repro.sim import loadbalancer as lb_mod
        from repro.sim.energy import TelemetryLRU

        big, little = toy_profiles
        meter = EnergyMeter()
        fresh = TelemetryLRU(maxsize=2)
        original = lb_mod._KERNEL_CACHE
        lb_mod._KERNEL_CACHE = fresh
        try:
            sets = []
            for i in range(3):
                m = Machine(machine_id=f"ev{i}", profile=big, meter=meter)
                m.state = MachineState.ON
                sets.append([m])
            kernels = [serving_set_kernel("efficient", s) for s in sets]
            assert len(fresh) == 2
            assert fresh.misses == 3
            # the first set was evicted: asking again misses and rebuilds
            again = serving_set_kernel("efficient", sets[0])
            assert again is not kernels[0]
            assert fresh.misses == 4
            # the most recent stays hot
            assert serving_set_kernel("efficient", sets[2]) is kernels[2]
            assert fresh.hits == 1
            stats = lb_mod.serving_kernel_cache_stats()
            assert stats["table_cache_maxsize"] == 2
            assert stats["table_cache_size"] == 2
        finally:
            lb_mod._KERNEL_CACHE = original


class TestDeferredLedger:
    """record_gather == the eager record_series/set_power sequence."""

    def _eager_and_deferred(self):
        eager, deferred = EnergyMeter(), EnergyMeter()
        for m in (eager, deferred):
            m.set_power("m", 12.5, 0.0)
        return eager, deferred

    def test_contiguous_windows_match_record_series(self):
        rng = np.random.default_rng(3)
        eager, deferred = self._eager_and_deferred()
        t = 10
        for n in (5, 1, 17, 3):
            powers = rng.uniform(0.0, 400.0, size=n)
            uniq, inv = np.unique(powers, return_inverse=True)
            eager.record_series("m", powers, t)
            deferred.record_gather("m", uniq, inv, t)
            t += n
        eager.finalize(t + 2)
        deferred.finalize(t + 2)
        assert eager._totals == deferred._totals
        assert eager.total_energy == deferred.total_energy

    def test_set_power_interleaves_without_flush(self):
        eager, deferred = self._eager_and_deferred()
        powers = np.array([10.0, 20.0, 30.0])
        eager.record_series("m", powers, 5)
        deferred.record_gather("m", powers, None, 5)
        # a transition at a fractional time closes the open second
        for m in (eager, deferred):
            m.set_power("m", 99.0, 8.75)
        assert deferred._pending  # still buffered, not settled
        eager.record_series("m", powers * 2, 12)
        deferred.record_gather("m", powers * 2, None, 12)
        eager.finalize(20.0)
        deferred.finalize(20.0)
        assert eager._totals == deferred._totals

    def test_queries_flush_on_demand(self):
        eager, deferred = self._eager_and_deferred()
        powers = np.array([50.0, 60.0])
        eager.record_series("m", powers, 2)
        deferred.record_gather("m", powers, None, 2)
        assert deferred.energy_of("m") == eager.energy_of("m")
        assert deferred.total_energy == eager.total_energy

    def test_empty_window_is_a_no_op(self):
        meter = EnergyMeter()
        meter.set_power("m", 5.0, 0.0)
        meter.record_gather("m", np.array([]), None, 3)
        meter.finalize(4.0)
        assert meter.energy_of("m") == 5.0 * 4.0

    def test_time_going_backwards_rejected(self):
        meter = EnergyMeter()
        meter.set_power("m", 5.0, 0.0)
        meter.record_gather("m", np.array([1.0, 2.0]), None, 10)
        with pytest.raises(ValueError):
            meter.record_gather("m", np.array([1.0]), None, 3)
