"""Unit tests for the deterministic event queue."""

import pytest

from repro.sim.events import EventQueue, SimulationClockError


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, "b")
        q.schedule(1.0, fired.append, "a")
        q.schedule(9.0, fired.append, "c")
        q.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        fired = []
        for tag in ("first", "second", "third"):
            q.schedule(3.0, fired.append, tag)
        q.run_until(3.0)
        assert fired == ["first", "second", "third"]

    def test_schedule_in_is_relative(self):
        q = EventQueue()
        q.run_until(10.0)
        ev = q.schedule_in(5.0, lambda: None)
        assert ev.time == 15.0

    def test_rejects_past_scheduling(self):
        q = EventQueue()
        q.run_until(10.0)
        with pytest.raises(SimulationClockError):
            q.schedule(5.0, lambda: None)


class TestRunUntil:
    def test_inclusive_boundary(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, "x")
        q.run_until(5.0)
        assert fired == ["x"]

    def test_leaves_future_events(self):
        q = EventQueue()
        fired = []
        q.schedule(5.0, fired.append, "soon")
        q.schedule(50.0, fired.append, "later")
        assert q.run_until(10.0) == 1
        assert fired == ["soon"]
        assert len(q) == 1

    def test_advances_clock_even_without_events(self):
        q = EventQueue()
        q.run_until(42.0)
        assert q.now == 42.0

    def test_events_scheduled_by_callbacks_fire_in_same_run(self):
        q = EventQueue()
        fired = []

        def chain():
            fired.append("first")
            q.schedule(q.now + 1.0, fired.append, "chained")

        q.schedule(1.0, chain)
        q.run_until(10.0)
        assert fired == ["first", "chained"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1.0, fired.append, "no")
        ev.cancel()
        q.run_until(5.0)
        assert fired == []

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 2.0

    def test_pop_on_empty_returns_none(self):
        assert EventQueue().pop() is None
        assert EventQueue().peek_time() is None
