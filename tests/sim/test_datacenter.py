"""Unit tests for the vectorised plan executor and the lower bound."""

import numpy as np
import pytest

from repro.core.combination import Combination, build_table
from repro.core.profiles import TABLE_I
from repro.core.reconfiguration import build_plan
from repro.sim.datacenter import execute_plan, lower_bound_result
from repro.workload.trace import LoadTrace

P = TABLE_I["paravance"]
R = TABLE_I["raspberry"]


class TestExecutePlan:
    def test_constant_plan_energy_by_hand(self):
        trace = LoadTrace(np.full(100, 5.0))
        plan = build_plan(100, Combination.of({R: 1}), [])
        res = execute_plan(plan, trace)
        expected = 100 * (3.1 + R.slope * 5.0)
        assert res.total_energy == pytest.approx(expected)

    def test_horizon_mismatch_rejected(self):
        trace = LoadTrace(np.full(50, 5.0))
        plan = build_plan(100, Combination.of({R: 1}), [])
        with pytest.raises(ValueError):
            execute_plan(plan, trace)

    def test_unserved_demand_when_under_provisioned(self):
        trace = LoadTrace(np.full(10, 20.0))
        plan = build_plan(10, Combination.of({R: 1}), [])  # capacity 9
        res = execute_plan(plan, trace)
        assert res.qos().violation_seconds == 10
        assert res.qos().unserved_demand == pytest.approx(10 * 11.0)
        # the machine saturates at peak power, no more
        assert np.allclose(res.power, 3.7)

    def test_reconfiguration_energy_included(self):
        trace = LoadTrace(np.full(1000, 5.0))
        plan = build_plan(
            1000,
            Combination.of({R: 1}),
            [(100, Combination.of({R: 2}))],
        )
        res = execute_plan(plan, trace)
        base = 1000 * (3.1 + R.slope * 5.0)
        # second raspberry: boot energy + idle draw after boot completes
        extra = R.on_energy + (1000 - 100 - 16) * 3.1
        assert res.total_energy == pytest.approx(base + extra)
        assert res.n_reconfigurations == 1

    def test_scenario_label_and_meta(self):
        trace = LoadTrace(np.full(10, 1.0))
        plan = build_plan(10, Combination.of({R: 1}), [])
        res = execute_plan(plan, trace, scenario="X")
        assert res.scenario == "X"
        assert res.meta["segments"] == 1


class TestLowerBound:
    def test_power_matches_table_at_actual_load(self):
        trace = LoadTrace(np.array([0.0, 5.0, 50.0, 100.0]))
        table = build_table(
            (P, R), {"paravance": 529.0, "raspberry": 1.0}, 100.0
        )
        res = lower_bound_result(trace, table)
        assert np.allclose(res.power, table.power_at_load(trace.values))
        # on-grid loads agree with the plain grid lookup
        assert res.power[2] == pytest.approx(float(table.power_for(50.0)))
        assert res.n_reconfigurations == 0
        assert res.qos().violation_seconds == 0

    def test_off_grid_load_interpolates_within_cell(self):
        table = build_table((R,), {"raspberry": 1.0}, 9.0)
        # load 0.5 -> one raspberry at 0.5 req/s, not at the grid rate 1
        assert table.power_at_load(0.5) == pytest.approx(3.1 + R.slope * 0.5)
        assert table.power_at_load(0.0) == 0.0

    def test_lower_bound_below_any_plan(self, infra, short_trace):
        from repro.core.scheduler import BMLScheduler

        plan = BMLScheduler(infra).plan(short_trace)
        bml = execute_plan(plan, short_trace)
        lb = lower_bound_result(short_trace, infra.table(short_trace.peak))
        assert lb.total_energy <= bml.total_energy
