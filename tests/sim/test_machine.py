"""Unit tests for the machine finite-state machine."""

import pytest

from repro.core.profiles import TABLE_I
from repro.sim.energy import EnergyMeter
from repro.sim.machine import Machine, MachineError, MachineState


@pytest.fixture()
def machine():
    return Machine("p-0", TABLE_I["paravance"], EnergyMeter())


class TestTransitions:
    def test_initial_state_off_drawing_nothing(self, machine):
        assert machine.state is MachineState.OFF
        assert machine.power_draw == 0.0

    def test_full_cycle(self, machine):
        ready = machine.power_on(0.0)
        assert machine.state is MachineState.BOOTING
        assert ready == 189.0
        machine.complete_boot(ready)
        assert machine.state is MachineState.ON
        done = machine.power_off(200.0)
        assert machine.state is MachineState.STOPPING
        assert done == 210.0
        machine.complete_shutdown(done)
        assert machine.state is MachineState.OFF
        assert machine.boots == 1 and machine.shutdowns == 1

    def test_power_on_only_from_off(self, machine):
        machine.power_on(0.0)
        with pytest.raises(MachineError):
            machine.power_on(1.0)

    def test_power_off_only_from_on(self, machine):
        with pytest.raises(MachineError):
            machine.power_off(0.0)

    def test_complete_boot_only_from_booting(self, machine):
        with pytest.raises(MachineError):
            machine.complete_boot(0.0)

    def test_complete_shutdown_only_from_stopping(self, machine):
        with pytest.raises(MachineError):
            machine.complete_shutdown(0.0)

    def test_power_off_requires_drained_load(self, machine):
        machine.power_on(0.0)
        machine.complete_boot(189.0)
        machine.assign_load(500.0, 189.0)
        with pytest.raises(MachineError):
            machine.power_off(200.0)
        machine.assign_load(0.0, 200.0)
        machine.power_off(200.0)


class TestPowerDraw:
    def test_booting_draw_integrates_to_on_energy(self, machine):
        machine.power_on(0.0)
        assert machine.power_draw * 189 == pytest.approx(21341.0)

    def test_stopping_draw_integrates_to_off_energy(self, machine):
        machine.power_on(0.0)
        machine.complete_boot(189.0)
        machine.power_off(189.0)
        assert machine.power_draw * 10 == pytest.approx(657.0)

    def test_on_draw_linear_in_load(self, machine):
        machine.power_on(0.0)
        machine.complete_boot(189.0)
        assert machine.power_draw == pytest.approx(69.9)
        machine.assign_load(1331.0, 189.0)
        assert machine.power_draw == pytest.approx(200.5)


class TestLoadAssignment:
    def test_only_when_on(self, machine):
        with pytest.raises(MachineError):
            machine.assign_load(10.0, 0.0)

    def test_rejects_overload(self, machine):
        machine.power_on(0.0)
        machine.complete_boot(189.0)
        with pytest.raises(MachineError):
            machine.assign_load(1332.0, 189.0)

    def test_rejects_negative(self, machine):
        machine.power_on(0.0)
        machine.complete_boot(189.0)
        with pytest.raises(MachineError):
            machine.assign_load(-5.0, 189.0)


class TestMetering:
    def test_energy_ledger_tracks_cycle(self):
        meter = EnergyMeter()
        m = Machine("r-0", TABLE_I["raspberry"], meter)
        m.power_on(0.0)           # 16 s boot at 40.5/16 W
        m.complete_boot(16.0)     # idle 3.1 W for 84 s
        m.assign_load(9.0, 100.0) # full 3.7 W for 100 s
        m.assign_load(0.0, 200.0)
        m.power_off(200.0)        # 14 s at 36.2/14 W
        m.complete_shutdown(214.0)
        meter.finalize(214.0)
        expected = 40.5 + 84 * 3.1 + 100 * 3.7 + 36.2
        assert meter.energy_of("r-0") == pytest.approx(expected)
