"""Unit tests for simulation result accounting."""

import numpy as np
import pytest

from repro.sim.results import SimulationResult
from repro.workload.trace import SECONDS_PER_DAY, LoadTrace


def result(power, unserved=None, timestep=1.0, **kw):
    power = np.asarray(power, dtype=float)
    if unserved is None:
        unserved = np.zeros_like(power)
    return SimulationResult(
        scenario="test",
        trace_name="t",
        timestep=timestep,
        power=power,
        unserved=np.asarray(unserved, dtype=float),
        **kw,
    )


class TestEnergy:
    def test_total_energy(self):
        r = result([10.0, 20.0, 30.0])
        assert r.total_energy == pytest.approx(60.0)
        assert r.total_energy_kwh == pytest.approx(60.0 / 3.6e6)

    def test_mean_power(self):
        assert result([10.0, 30.0]).mean_power == pytest.approx(20.0)

    def test_timestep_scales_energy(self):
        assert result([10.0], timestep=60.0).total_energy == pytest.approx(600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            result([1.0], unserved=[0.0, 0.0])
        with pytest.raises(ValueError):
            result([1.0], timestep=0.0)


class TestPerDay:
    def test_full_days(self):
        power = np.concatenate(
            [np.full(SECONDS_PER_DAY, 1.0), np.full(SECONDS_PER_DAY, 2.0)]
        )
        daily = result(power).per_day_energy()
        assert np.allclose(daily, [SECONDS_PER_DAY, 2 * SECONDS_PER_DAY])

    def test_partial_last_day(self):
        power = np.full(SECONDS_PER_DAY + 100, 1.0)
        daily = result(power).per_day_energy()
        assert len(daily) == 2
        assert daily[1] == pytest.approx(100.0)

    def test_kwh_variant(self):
        power = np.full(SECONDS_PER_DAY, 1000.0)
        assert result(power).per_day_energy_kwh()[0] == pytest.approx(24.0)


class TestQoS:
    def test_perfect_service(self):
        qos = result([1.0, 1.0]).qos()
        assert qos.violation_seconds == 0
        assert qos.unserved_demand == 0.0

    def test_violations_counted(self):
        r = result([1.0] * 4, unserved=[0.0, 5.0, 3.0, 0.0])
        qos = r.qos()
        assert qos.violation_seconds == 2
        assert qos.unserved_demand == pytest.approx(8.0)
        assert qos.worst_deficit == 5.0

    def test_served_fraction_with_trace(self):
        trace = LoadTrace(np.array([10.0, 10.0]))
        r = result([1.0, 1.0], unserved=[0.0, 2.0])
        assert r.qos(trace).served_fraction == pytest.approx(1 - 2 / 20)


class TestComparisons:
    def test_overhead_vs(self):
        a = result(np.full(SECONDS_PER_DAY, 2.0))
        b = result(np.full(SECONDS_PER_DAY, 1.0))
        assert a.overhead_vs(b)[0] == pytest.approx(1.0)

    def test_overhead_requires_same_days(self):
        a = result(np.full(SECONDS_PER_DAY, 1.0))
        b = result(np.full(2 * SECONDS_PER_DAY, 1.0))
        with pytest.raises(ValueError):
            a.overhead_vs(b)

    def test_summary_keys(self):
        s = result([1.0]).summary()
        assert {"scenario", "total_energy_kwh", "reconfigurations"} <= set(s)
