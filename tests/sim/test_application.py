"""Unit tests for application instances and stateless migration."""

import pytest

from repro.core.profiles import TABLE_I
from repro.sim.application import Application, ApplicationError, ApplicationSpec
from repro.sim.cluster import Cluster
from repro.sim.machine import MachineState


def on_machine(cluster, arch="raspberry"):
    m = cluster.boot(arch, 1, 0.0)[0]
    m.complete_boot(0.0)
    return m


@pytest.fixture()
def cluster():
    return Cluster([TABLE_I["raspberry"], TABLE_I["chromebook"]])


class TestSpec:
    def test_defaults_are_paper_webserver(self):
        spec = ApplicationSpec()
        assert spec.malleable and spec.qos_class == "tolerant"

    def test_validation(self):
        with pytest.raises(ApplicationError):
            ApplicationSpec(min_instances=0)
        with pytest.raises(ApplicationError):
            ApplicationSpec(min_instances=3, max_instances=2)
        with pytest.raises(ApplicationError):
            ApplicationSpec(stop_time=-1.0)
        with pytest.raises(ApplicationError):
            ApplicationSpec(malleable=False, max_instances=None)

    def test_migration_time(self):
        assert ApplicationSpec(stop_time=0.4, start_time=0.6).migration_time == 1.0


class TestDeploy:
    def test_deploy_on_on_machine(self, cluster):
        app = Application(ApplicationSpec())
        m = on_machine(cluster)
        inst = app.deploy(m, 5.0)
        assert app.instance_on(m) is inst
        assert inst.ready_at == pytest.approx(5.0 + 0.5)

    def test_rejects_off_machine(self, cluster):
        app = Application(ApplicationSpec())
        m = cluster.acquire_off_machine("raspberry", 0.0)
        with pytest.raises(ApplicationError):
            app.deploy(m, 0.0)

    def test_rejects_double_deploy(self, cluster):
        app = Application(ApplicationSpec())
        m = on_machine(cluster)
        app.deploy(m, 0.0)
        with pytest.raises(ApplicationError):
            app.deploy(m, 1.0)

    def test_max_instances_enforced(self, cluster):
        app = Application(ApplicationSpec(max_instances=1))
        app.deploy(on_machine(cluster), 0.0)
        with pytest.raises(ApplicationError):
            app.deploy(on_machine(cluster, "chromebook"), 0.0)

    def test_non_malleable_single_instance(self, cluster):
        app = Application(ApplicationSpec(malleable=False, max_instances=1))
        app.deploy(on_machine(cluster), 0.0)
        with pytest.raises(ApplicationError):
            app.deploy(on_machine(cluster, "chromebook"), 0.0)


class TestRetireAndMigrate:
    def test_retire_clears_machine(self, cluster):
        app = Application(ApplicationSpec())
        m = on_machine(cluster)
        app.deploy(m, 0.0)
        m.assign_load(5.0, 1.0)
        app.retire(m, 2.0)
        assert app.instance_on(m) is None
        assert m.load == 0.0

    def test_retire_without_instance_rejected(self, cluster):
        app = Application(ApplicationSpec())
        with pytest.raises(ApplicationError):
            app.retire(on_machine(cluster), 0.0)

    def test_migrate_moves_instance(self, cluster):
        app = Application(ApplicationSpec(stop_time=0.5, start_time=0.5))
        src = on_machine(cluster)
        dst = on_machine(cluster, "chromebook")
        app.deploy(src, 0.0)
        inst = app.migrate(src, dst, 10.0)
        assert app.instance_on(src) is None
        assert app.instance_on(dst) is inst
        assert inst.ready_at == pytest.approx(11.0)

    def test_ready_machines_respects_ready_at(self, cluster):
        app = Application(ApplicationSpec(start_time=2.0))
        m = on_machine(cluster)
        app.deploy(m, 0.0)
        assert app.ready_machines(1.0) == []
        assert app.ready_machines(2.0) == [m]

    def test_instance_not_ready_when_machine_stops(self, cluster):
        app = Application(ApplicationSpec(start_time=0.0))
        m = on_machine(cluster)
        inst = app.deploy(m, 0.0)
        assert inst.is_ready(0.0)
        m.power_off(1.0)
        assert not inst.is_ready(1.0)
