"""Unit tests for the RAPL-style power-capping model."""

import numpy as np
import pytest

from repro.core.profiles import TABLE_I, ProfileError
from repro.sim.powercap import CappedMachine, capped_profile, capped_stack_power

P = TABLE_I["paravance"]


class TestCappedMachine:
    def test_cap_bounds_enforced(self):
        with pytest.raises(ProfileError):
            CappedMachine(P, 50.0)  # below idle (69.9)
        with pytest.raises(ProfileError):
            CappedMachine(P, 250.0)  # above max (200.5)

    def test_performance_ceiling(self):
        m = CappedMachine(P, 135.2)  # half the dynamic range
        assert m.max_perf == pytest.approx(1331.0 / 2, rel=1e-9)

    def test_full_cap_is_identity(self):
        m = CappedMachine(P, 200.5)
        assert m.max_perf == pytest.approx(1331.0)
        assert m.power(1331.0) == pytest.approx(200.5)

    def test_power_never_exceeds_cap(self):
        m = CappedMachine(P, 120.0)
        rates = np.linspace(0, 1331, 50)
        assert np.all(m.power(rates) <= 120.0 + 1e-9)

    def test_idle_unchanged(self):
        m = CappedMachine(P, 100.0)
        assert m.power(0.0) == pytest.approx(69.9)

    def test_ipr_worsens_as_cap_tightens(self):
        """The Sec. II argument, quantified: capping *raises* the
        idle-to-peak ratio (worse proportionality at the floor)."""
        loose = CappedMachine(P, 200.5)
        tight = CappedMachine(P, 100.0)
        assert tight.ipr > loose.ipr
        assert tight.ipr == pytest.approx(0.699)


class TestCappedProfile:
    def test_round_trips_through_bml_pipeline(self):
        from repro.core.bml import design
        from repro.core.profiles import table_i_profiles

        capped = capped_profile(P, 150.0)
        assert capped.max_power == 150.0
        assert capped.idle_power == 69.9
        profiles = [capped] + [
            p for p in table_i_profiles() if p.name != "paravance"
        ]
        infra = design(profiles)
        assert capped.name in infra.names  # still the Big of the family

    def test_name_defaults_to_cap_suffix(self):
        assert capped_profile(P, 150.0).name == "paravance@150W"


class TestCappedStack:
    def test_even_spreading(self):
        out = capped_stack_power(P, 200.5, rate=1331.0, nodes=2)
        # two machines at half load each
        assert out == pytest.approx(2 * (69.9 + P.slope * 665.5))

    def test_saturates_at_fleet_cap(self):
        out = capped_stack_power(P, 100.0, rate=10_000.0, nodes=2)
        assert out == pytest.approx(200.0)

    def test_idle_fleet_cost_is_cap_independent(self):
        """The static cost the paper attacks: caps do nothing at idle."""
        tight = capped_stack_power(P, 100.0, rate=0.0, nodes=4)
        loose = capped_stack_power(P, 200.5, rate=0.0, nodes=4)
        assert tight == loose == pytest.approx(4 * 69.9)

    def test_needs_machines(self):
        with pytest.raises(ProfileError):
            capped_stack_power(P, 100.0, 10.0, 0)
