"""Unit tests for vectorised power evaluation and the energy meter."""

import numpy as np
import pytest

from repro.core.combination import Combination
from repro.core.profiles import TABLE_I
from repro.sim.energy import EnergyMeter, combination_power, power_breakpoints

P = TABLE_I["paravance"]
C = TABLE_I["chromebook"]
R = TABLE_I["raspberry"]


class TestBreakpoints:
    def test_starts_at_idle_sum(self):
        combo = Combination.of({P: 1, R: 2})
        caps, powers = power_breakpoints(combo)
        assert caps[0] == 0.0
        assert powers[0] == pytest.approx(69.9 + 6.2)

    def test_ends_at_peak(self):
        combo = Combination.of({P: 1, R: 2})
        caps, powers = power_breakpoints(combo)
        assert caps[-1] == pytest.approx(combo.capacity)
        assert powers[-1] == pytest.approx(combo.peak_power)

    def test_slope_ordering(self):
        combo = Combination.of({P: 1, C: 1, R: 1})
        caps, _ = power_breakpoints(combo)
        # raspberry (slope .067) then paravance (.098) then chromebook (.109)
        assert np.allclose(np.diff(caps), [9.0, 1331.0, 33.0])

    def test_cached(self):
        combo = Combination.of({P: 1})
        assert power_breakpoints(combo) is power_breakpoints(combo)


class TestCombinationPower:
    def test_matches_combination_method(self):
        combo = Combination.of({P: 1, C: 3, R: 2})
        for rate in (0.0, 5.0, 17.0, 400.0, combo.capacity):
            assert combination_power(combo, rate) == pytest.approx(
                combo.power(rate)
            )

    def test_vectorised(self):
        combo = Combination.of({P: 1, R: 1})
        rates = np.array([0.0, 9.0, 700.0, 1340.0])
        out = combination_power(combo, rates)
        assert out.shape == rates.shape
        assert np.allclose(out, [combo.power(float(r)) for r in rates])

    def test_saturates_beyond_capacity(self):
        combo = Combination.of({R: 1})
        assert combination_power(combo, 50.0) == pytest.approx(combo.peak_power)

    def test_empty_combination_draws_nothing(self):
        assert combination_power(Combination.empty(), 0.0) == 0.0


class TestEnergyMeter:
    def test_integrates_piecewise_constant(self):
        meter = EnergyMeter()
        meter.set_power("m", 10.0, 0.0)
        meter.set_power("m", 20.0, 5.0)   # 50 J so far
        meter.set_power("m", 0.0, 10.0)   # +100 J
        meter.finalize(20.0)
        assert meter.energy_of("m") == pytest.approx(150.0)

    def test_multiple_machines(self):
        meter = EnergyMeter()
        meter.set_power("a", 1.0, 0.0)
        meter.set_power("b", 2.0, 0.0)
        meter.finalize(10.0)
        assert meter.total_energy == pytest.approx(30.0)

    def test_rejects_time_reversal(self):
        meter = EnergyMeter()
        meter.set_power("m", 5.0, 10.0)
        with pytest.raises(ValueError):
            meter.set_power("m", 1.0, 5.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            EnergyMeter().set_power("m", -1.0, 0.0)

    def test_finalize_idempotent(self):
        meter = EnergyMeter()
        meter.set_power("m", 10.0, 0.0)
        meter.finalize(5.0)
        meter.finalize(5.0)
        assert meter.energy_of("m") == pytest.approx(50.0)

    def test_unknown_machine_has_zero(self):
        assert EnergyMeter().energy_of("ghost") == 0.0


class TestBreakpointCacheLRU:
    """The breakpoint memo is bounded (LRU) and exposes telemetry."""

    def _fresh_cache(self, maxsize):
        from repro.sim.energy import TelemetryLRU

        return TelemetryLRU(maxsize=maxsize)

    def test_eviction_past_maxsize(self):
        cache = self._fresh_cache(2)
        c1, c2, c3 = (
            Combination.of({P: 1}),
            Combination.of({C: 1}),
            Combination.of({R: 1}),
        )
        for c in (c1, c2, c3):
            cache.put(c, (np.zeros(1), np.zeros(1)))
        assert len(cache) == 2
        assert cache.get(c1) is None  # least recently used got evicted
        assert cache.get(c3) is not None

    def test_get_refreshes_recency(self):
        cache = self._fresh_cache(2)
        c1, c2, c3 = (
            Combination.of({P: 1}),
            Combination.of({C: 1}),
            Combination.of({R: 1}),
        )
        cache.put(c1, (np.zeros(1), np.zeros(1)))
        cache.put(c2, (np.zeros(1), np.zeros(1)))
        assert cache.get(c1) is not None  # c1 becomes most recent
        cache.put(c3, (np.zeros(1), np.zeros(1)))
        assert cache.get(c2) is None  # c2 was the LRU entry
        assert cache.get(c1) is not None

    def test_hit_miss_counters(self):
        cache = self._fresh_cache(4)
        combo = Combination.of({P: 1})
        assert cache.get(combo) is None
        cache.put(combo, (np.zeros(1), np.zeros(1)))
        assert cache.get(combo) is not None
        assert cache.hits == 1 and cache.misses == 1
        stats = cache.stats()
        assert stats["table_cache_hits"] == 1
        assert stats["table_cache_misses"] == 1
        assert stats["table_cache_size"] == 1

    def test_module_stats_exposed(self):
        from repro.sim.energy import breakpoint_cache_stats

        combo = Combination.of({P: 2, R: 1})
        power_breakpoints(combo)
        before = breakpoint_cache_stats()
        power_breakpoints(combo)
        after = breakpoint_cache_stats()
        assert after["table_cache_hits"] == before["table_cache_hits"] + 1
        assert after["table_cache_maxsize"] >= 1
