"""Unit tests for cluster machine pools and inventory limits."""

import pytest

from repro.core.combination import Combination
from repro.core.profiles import TABLE_I, table_i_profiles
from repro.sim.cluster import Cluster, InventoryError
from repro.sim.machine import MachineError, MachineState

P = TABLE_I["paravance"]
R = TABLE_I["raspberry"]


class TestConstruction:
    def test_requires_architectures(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Cluster([P, P])

    def test_rejects_unknown_inventory_keys(self):
        with pytest.raises(ValueError):
            Cluster([P], inventory={"nope": 3})


class TestUnboundedPool:
    def test_lazily_instantiates_machines(self):
        cluster = Cluster([P, R])
        assert cluster.machines() == []
        m = cluster.acquire_off_machine("paravance", 0.0)
        assert m.state is MachineState.OFF
        assert len(cluster.machines("paravance")) == 1

    def test_reuses_off_machines(self):
        cluster = Cluster([R])
        a = cluster.acquire_off_machine("raspberry", 0.0)
        b = cluster.acquire_off_machine("raspberry", 0.0)
        assert a is b  # still OFF, so reused

    def test_boot_many(self):
        cluster = Cluster([R])
        started = cluster.boot("raspberry", 3, 0.0)
        assert len(started) == 3
        assert cluster.count("raspberry", MachineState.BOOTING) == 3

    def test_unknown_architecture_rejected(self):
        with pytest.raises(InventoryError):
            Cluster([R]).acquire_off_machine("xeon", 0.0)


class TestBoundedInventory:
    def test_limit_enforced(self):
        cluster = Cluster([R], inventory={"raspberry": 2})
        cluster.boot("raspberry", 2, 0.0)
        with pytest.raises(InventoryError):
            cluster.boot("raspberry", 1, 0.0)

    def test_can_provide(self):
        cluster = Cluster([P, R], inventory={"paravance": 1, "raspberry": 5})
        assert cluster.can_provide(Combination.of({P: 1, R: 5}))
        assert not cluster.can_provide(Combination.of({P: 2}))

    def test_unbounded_can_provide_any_known(self):
        cluster = Cluster([P, R])
        assert cluster.can_provide(Combination.of({P: 99}))
        other = TABLE_I["taurus"]
        assert not cluster.can_provide(Combination.of({other: 1}))


class TestQueries:
    def test_online_capacity_counts_only_on(self):
        cluster = Cluster([R])
        machines = cluster.boot("raspberry", 2, 0.0)
        assert cluster.online_capacity() == 0.0
        for m in machines:
            m.complete_boot(16.0)
        assert cluster.online_capacity() == 18.0

    def test_total_power_sums_states(self):
        cluster = Cluster([R])
        m1, m2 = cluster.boot("raspberry", 2, 0.0)
        m1.complete_boot(16.0)
        expected = 3.1 + 40.5 / 16  # one idle + one still booting
        assert cluster.total_power() == pytest.approx(expected)

    def test_state_counts_snapshot(self):
        cluster = Cluster([R, P])
        cluster.boot("raspberry", 2, 0.0)
        snap = cluster.state_counts()
        assert snap["raspberry"] == {"booting": 2}
        assert snap["paravance"] == {}


class TestVictimSelection:
    def test_prefers_least_loaded(self):
        cluster = Cluster([R])
        machines = cluster.boot("raspberry", 3, 0.0)
        for m in machines:
            m.complete_boot(16.0)
        machines[0].assign_load(9.0, 16.0)
        machines[1].assign_load(2.0, 16.0)
        victims = cluster.pick_shutdown_victims("raspberry", 2)
        assert machines[2] in victims and machines[1] in victims
        assert machines[0] not in victims

    def test_rejects_more_than_available(self):
        cluster = Cluster([R])
        cluster.boot("raspberry", 1, 0.0)[0].complete_boot(16.0)
        with pytest.raises(MachineError):
            cluster.pick_shutdown_victims("raspberry", 2)
