"""Cross-validation of the event-driven simulator against the fast path.

The two implementations share nothing but the combination table and the
predictor; agreement of their per-second power series is the strongest
correctness evidence in the suite.
"""

import numpy as np
import pytest

from repro.core.prediction import LookAheadMaxPredictor
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.sim.loop import EventDrivenReplay
from repro.workload.trace import LoadTrace


def run_both(infra, trace, window=378):
    pred = LookAheadMaxPredictor(window)
    outcome = BMLScheduler(infra, predictor=pred).plan_detailed(trace)
    fast = execute_plan(outcome.plan, trace, "fast")
    replay = EventDrivenReplay(outcome.table, trace, predictor=pred)
    slow = replay.run()
    return fast, slow, replay


class TestCrossValidation:
    def test_identical_power_series_on_bursty_trace(self, infra, short_trace):
        fast, slow, _ = run_both(infra, short_trace)
        assert np.allclose(fast.power, slow.power, atol=1e-9)
        assert fast.total_energy == pytest.approx(slow.total_energy)

    def test_identical_unserved_series(self, infra, short_trace):
        fast, slow, _ = run_both(infra, short_trace)
        assert np.allclose(fast.unserved, slow.unserved, atol=1e-9)

    def test_same_reconfiguration_log(self, infra, short_trace):
        fast, slow, _ = run_both(infra, short_trace)
        assert fast.n_reconfigurations == slow.n_reconfigurations
        for a, b in zip(fast.reconfigurations, slow.reconfigurations):
            assert a.decided_at == b.decided_at
            assert a.before == b.before and a.after == b.after
            assert a.on_energy == pytest.approx(b.on_energy)
            assert a.off_energy == pytest.approx(b.off_energy)

    def test_meter_ledger_matches_power_integral(self, infra, short_trace):
        _, slow, _ = run_both(infra, short_trace)
        assert slow.meta["meter_energy_j"] == pytest.approx(
            slow.total_energy, rel=1e-9
        )

    def test_small_window_still_agrees(self, infra, short_trace):
        fast, slow, _ = run_both(infra, short_trace[:1800], window=30)
        assert np.allclose(fast.power, slow.power, atol=1e-9)


class TestMachineLevelStats:
    def test_boot_counters_match_plan(self, infra, short_trace):
        fast, _, replay = run_both(infra, short_trace)
        started = {}
        for r in fast.reconfigurations:
            for name, delta in r.before.diff(r.after).items():
                if delta > 0:
                    started[name] = started.get(name, 0) + delta
        assert replay.stats.boots == started

    def test_migrations_happen_on_swaps(self, infra):
        # force a swap: littles -> one big
        values = np.concatenate([np.full(1000, 8.0), np.full(1000, 1200.0)])
        trace = LoadTrace(values)
        _, slow, replay = run_both(infra, trace)
        assert replay.stats.migrations >= 1

    def test_peak_machines_on_recorded(self, infra, short_trace):
        _, _, replay = run_both(infra, short_trace[:900])
        assert replay.stats.peak_machines_on >= 1


class TestValidation:
    def test_requires_one_hz_trace(self, infra):
        trace = LoadTrace(np.full(10, 5.0), timestep=60.0)
        with pytest.raises(ValueError):
            EventDrivenReplay(infra.table(10.0), trace)


class TestInventoryLimits:
    def test_bounded_cluster_raises_when_exhausted(self, infra):
        """The event-driven replay surfaces inventory exhaustion loudly
        (the planner must be given the same bounds to avoid it)."""
        from repro.sim.cluster import InventoryError

        values = np.concatenate([np.full(600, 8.0), np.full(600, 2000.0)])
        trace = LoadTrace(values)
        pred = LookAheadMaxPredictor(378)
        table = infra.table(2000.0)
        replay = EventDrivenReplay(
            table, trace, predictor=pred, inventory={"paravance": 0,
                                                     "chromebook": 2,
                                                     "raspberry": 2},
        )
        with pytest.raises(InventoryError):
            replay.run()
