"""Unit tests for the load balancer strategies."""

import pytest

from repro.core.profiles import TABLE_I
from repro.sim.cluster import Cluster
from repro.sim.loadbalancer import LoadBalancer


@pytest.fixture()
def machines():
    cluster = Cluster([TABLE_I["paravance"], TABLE_I["raspberry"]])
    out = []
    for arch, n in (("paravance", 1), ("raspberry", 2)):
        for m in cluster.boot(arch, n, 0.0):
            m.complete_boot(0.0)
            out.append(m)
    return out  # capacity 1331 + 9 + 9 = 1349


class TestValidation:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            LoadBalancer("random")

    def test_negative_rate(self, machines):
        with pytest.raises(ValueError):
            LoadBalancer().balance(-1.0, machines)


class TestEfficientStrategy:
    def test_fills_cheapest_slope_first(self, machines):
        # raspberry slope 0.0667 < paravance slope 0.0981
        a = LoadBalancer("efficient").balance(12.0, machines)
        rasp_share = sum(v for k, v in a.shares.items() if k.startswith("raspberry"))
        assert rasp_share == pytest.approx(12.0 if 12.0 <= 18 else 18)
        assert a.unserved == 0.0

    def test_overflow_to_next_machine(self, machines):
        a = LoadBalancer("efficient").balance(100.0, machines)
        par_share = sum(v for k, v in a.shares.items() if k.startswith("paravance"))
        assert par_share == pytest.approx(100.0 - 18.0)

    def test_saturation_reports_unserved(self, machines):
        a = LoadBalancer("efficient").balance(2000.0, machines)
        assert a.served == pytest.approx(1349.0)
        assert a.unserved == pytest.approx(651.0)

    def test_zero_rate(self, machines):
        a = LoadBalancer().balance(0.0, machines)
        assert all(v == 0.0 for v in a.shares.values())

    def test_no_machines(self):
        a = LoadBalancer().balance(10.0, [])
        assert a.served == 0.0 and a.unserved == 10.0


class TestProportionalStrategy:
    def test_equal_utilisation(self, machines):
        a = LoadBalancer("proportional").balance(674.5, machines)  # 50 % of 1349
        for m in machines:
            assert a.shares[m.machine_id] == pytest.approx(0.5 * m.profile.max_perf)

    def test_full_load_everyone_at_max(self, machines):
        a = LoadBalancer("proportional").balance(1349.0, machines)
        for m in machines:
            assert a.shares[m.machine_id] == pytest.approx(m.profile.max_perf)


class TestApply:
    def test_apply_pushes_loads_to_machines(self, machines):
        LoadBalancer().apply(50.0, machines, now=1.0)
        assert sum(m.load for m in machines) == pytest.approx(50.0)

    def test_power_matches_combination_model(self, machines):
        """The efficient strategy realises exactly the analytical
        combination power used by the fast path."""
        from repro.core.combination import Combination
        from repro.sim.energy import combination_power

        LoadBalancer("efficient").apply(321.0, machines, now=0.0)
        actual = sum(m.power_draw for m in machines)
        combo = Combination.of(
            {TABLE_I["paravance"]: 1, TABLE_I["raspberry"]: 2}
        )
        assert actual == pytest.approx(combination_power(combo, 321.0))
