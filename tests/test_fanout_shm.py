"""Suite fan-out over shared-memory traces (PR 8 acceptance tests).

The contract: a suite run over ``jobs>1`` ships each workload's trace
arrays **at most once per host** — one parent build published as a
shared-memory segment, zero worker rebuilds for any workload spanning
several chunks — and replaying from the attached segment is
bit-identical to the in-process replay.  After the suite, no
``/dev/shm`` segment survives.

Fork runs are quick-marked; spawn pays interpreter start-up per worker
so it rides only in the full suite.
"""

import glob
import multiprocessing
from dataclasses import replace

import numpy as np
import pytest

from repro import scenarios
from repro.scenarios import fanout_stats
from repro.workload.trace import SHM_PREFIX, shm_stats

START_METHODS = [
    pytest.param("fork", marks=pytest.mark.quick),
    pytest.param("spawn"),
]


def _skip_unless_available(start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"platform has no {start_method} start method")


def _shm_entries():
    return glob.glob(f"/dev/shm/{SHM_PREFIX}*")


def _shared_workload_suite(n):
    """``n`` scenarios over ONE workload (the build-once case)."""
    base = scenarios.get("pattern-steady").with_days(1)
    return [
        replace(
            base,
            name=f"shm-{k}",
            scheduler=replace(base.scheduler, window=120 + 60 * k),
        )
        for k in range(n)
    ]


def _distinct_workload_suite(n):
    """``n`` scenarios over ``n`` different workloads (one piece each)."""
    base = scenarios.get("pattern-steady").with_days(1)
    return [
        replace(
            base,
            name=f"solo-{k}",
            workload=replace(base.workload, seed=900 + k),
        )
        for k in range(n)
    ]


def _digest(outcomes):
    return {
        o.name: (
            o.result.power.tobytes(),
            o.result.unserved.tobytes(),
        )
        for o in outcomes
    }


@pytest.mark.parametrize("start_method", START_METHODS)
class TestSharedMemoryFanout:
    def test_shared_workload_builds_once_and_matches_sequential(
        self, start_method
    ):
        _skip_unless_available(start_method)
        specs = _shared_workload_suite(4)
        reference = _digest(scenarios.run_suite(specs, jobs=1))
        scenarios.clear_caches()
        before = fanout_stats()
        out = scenarios.run_suite(
            specs,
            jobs=2,
            start_method=start_method,
            chunk_size=1,  # 4 chunks over 1 workload: the fan-out case
        )
        stats = {k: v - before[k] for k, v in fanout_stats().items()}
        assert _digest(out) == reference  # bit-identical replay
        # the workload was built exactly once, in the dispatcher, and
        # shipped as one segment — never rebuilt by a worker
        assert stats["trace_builds"] == 1
        assert stats["worker_trace_builds"] == 0
        assert stats["segments_shared"] == 1
        assert stats["handles_shipped"] >= 2
        assert stats["bytes_pickle_avoided"] > 0
        # lifecycle: every segment released once the suite returns
        assert shm_stats()["segments_live"] == 0
        assert not _shm_entries()

    def test_single_piece_workloads_stay_worker_built(self, start_method):
        _skip_unless_available(start_method)
        specs = _distinct_workload_suite(2)
        reference = _digest(scenarios.run_suite(specs, jobs=1))
        scenarios.clear_caches()
        before = fanout_stats()
        out = scenarios.run_suite(
            specs, jobs=2, start_method=start_method
        )
        stats = {k: v - before[k] for k, v in fanout_stats().items()}
        assert _digest(out) == reference
        # one chunk per workload: a segment would save nothing, so the
        # build happens in the worker that needs it (overlapping the
        # parent's own work) and no segment is published
        assert stats["segments_shared"] == 0
        assert not _shm_entries()

    def test_share_memory_off_is_the_byvalue_reference(self, start_method):
        _skip_unless_available(start_method)
        specs = _shared_workload_suite(3)
        reference = _digest(scenarios.run_suite(specs, jobs=1))
        scenarios.clear_caches()
        before = fanout_stats()
        out = scenarios.run_suite(
            specs,
            jobs=2,
            start_method=start_method,
            chunk_size=1,
            share_memory=False,
        )
        stats = {k: v - before[k] for k, v in fanout_stats().items()}
        assert _digest(out) == reference
        assert stats["segments_shared"] == 0
        assert stats["handles_shipped"] == 0
        assert not _shm_entries()


@pytest.mark.quick
class TestChunkSizeValidation:
    def test_chunk_size_must_be_positive(self):
        specs = _shared_workload_suite(2)
        with pytest.raises(scenarios.ScenarioError, match="chunk_size"):
            scenarios.run_suite(specs, jobs=2, chunk_size=0)

    def test_chunk_size_requires_chunked(self):
        specs = _shared_workload_suite(2)
        with pytest.raises(scenarios.ScenarioError, match="chunk"):
            scenarios.run_suite(specs, jobs=2, chunked=False, chunk_size=1)

    def test_chunk_size_caps_piece_sizes(self):
        specs = _shared_workload_suite(5)
        chunks = scenarios.chunk_specs(specs, 2, 2)
        assert all(len(c) <= 2 for c in chunks)
        # every spec index appears exactly once across the pieces
        assert sorted(i for c in chunks for i in c) == list(range(5))
