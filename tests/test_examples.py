"""Smoke tests: every example script runs end to end on a tiny input."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        mod = load_example("quickstart")
        assert mod.main(["--days", "1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "threshold=529" in out
        assert "BML vs lower bound" in out

    def test_design_datacenter(self, capsys):
        mod = load_example("design_datacenter")
        assert mod.main([]) == 0
        out = capsys.readouterr().out
        assert "measured profiles" in out
        assert "crossing points" in out

    def test_worldcup_replay(self, capsys, tmp_path):
        mod = load_example("worldcup_replay")
        store = tmp_path / "runs"
        assert (
            mod.main(
                ["--days", "2", "--csv", str(tmp_path), "--save", str(store)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UpperBound Global" in out
        assert (tmp_path / "fig5_daily_energy.csv").exists()
        # the runs were persisted through the results layer
        from repro.results import RunStore

        stored = RunStore(store).list()
        assert [s.name for s in stored] == [
            "paper-upper-global",
            "paper-upper-perday",
            "paper-bml",
            "paper-lower-bound",
        ]
        assert "scenario diff" in out

    def test_prediction_errors(self, capsys):
        mod = load_example("prediction_errors")
        assert mod.main(["--days", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "prediction error impact" in out
        assert "lookahead-max" in out

    def test_machine_level_replay(self, capsys):
        mod = load_example("machine_level_replay")
        assert mod.main(["--hours", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-second power series identical: True" in out
        assert "energy ledger" in out

    def test_constrained_service(self, capsys):
        mod = load_example("constrained_service")
        assert mod.main(["--days", "1", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "constrained operation" in out
        assert "transition-aware policy" in out
