"""The serve daemon end to end: feed to journal, health heartbeats,
fresh-start and resume guards, signal shutdown, and the CLI wiring."""

from __future__ import annotations

import json
import signal
import threading
import time

import pytest

from repro.cli import main
from repro.serve import (
    ServeConfig,
    ServeDaemon,
    ServeError,
    MemorySource,
    TailFileSource,
    append_feed,
    read_health,
)
from repro.serve.daemon import JOURNAL_FILE

from serve_testlib import WINDOW

pytestmark = pytest.mark.quick


def _config(tmp_path, **kw):
    kw.setdefault("feed", tmp_path / "feed.txt")
    kw.setdefault("state_dir", tmp_path / "state")
    kw.setdefault("window", WINDOW)
    kw.setdefault("max_rate", 3000.0)
    kw.setdefault("poll_s", 0.001)
    kw.setdefault("stall_timeout_s", 30.0)
    return ServeConfig(**kw)


class TestRunToCompletion:
    def test_memory_feed_matches_batch_journal(
        self, tmp_path, serve_table, serve_values, batch_payloads
    ):
        config = _config(tmp_path)
        chunks = [list(serve_values[i : i + 900]) for i in range(0, len(serve_values), 900)]
        daemon = ServeDaemon(
            config, table=serve_table, source=MemorySource(chunks)
        )
        assert daemon.run() == "done"
        journal_path = config.state_dir / JOURNAL_FILE
        assert journal_path.exists()
        from repro.serve import DecisionJournal

        with DecisionJournal(journal_path) as j:
            assert j.payloads() == batch_payloads
        health = read_health(config.state_dir)
        assert health["status"] == "done"
        assert health["decisions"] == len(batch_payloads)
        assert health["journal_records"] == len(batch_payloads)
        assert health["rejected"] == 0

    def test_tail_feed_growing_file(self, tmp_path, serve_table):
        config = _config(tmp_path)
        append_feed(config.feed, [100.0] * (WINDOW * 2))
        daemon = ServeDaemon(config, table=serve_table)
        # Producer appends (with one ramp) while the daemon polls.
        def produce():
            time.sleep(0.02)
            append_feed(config.feed, [900.0] * WINDOW)
            # Long 100-tail: the up-switch boots a paravance (189 s), so
            # the mirror down-decision only unblocks well past t=271.
            append_feed(config.feed, [100.0] * WINDOW * 5, end=True)

        t = threading.Thread(target=produce)
        t.start()
        try:
            assert daemon.run() == "done"
        finally:
            t.join()
        assert daemon.engine.samples_in == WINDOW * 8
        assert daemon.journal.count >= 2  # up for the ramp, down after

    def test_periodic_checkpoint_updates_source_offset(
        self, tmp_path, serve_table
    ):
        config = _config(tmp_path, checkpoint_every=10)
        append_feed(config.feed, [100.0] * 50, end=True)
        daemon = ServeDaemon(config, table=serve_table)
        assert daemon.run() == "done"
        state = daemon.store.load_state(config.name)
        assert state is not None
        assert state["source"]["offset"] == config.feed.stat().st_size
        assert state["engine"]["samples_in"] == 50


class TestGuards:
    def test_fresh_start_refuses_existing_checkpoint(
        self, tmp_path, serve_table
    ):
        config = _config(tmp_path)
        daemon = ServeDaemon(
            config, table=serve_table, source=MemorySource([[100.0] * WINDOW])
        )
        daemon.run()
        with pytest.raises(ServeError, match="--resume"):
            ServeDaemon(config, table=serve_table)

    def test_fresh_start_refuses_orphan_journal(self, tmp_path, serve_table):
        config = _config(tmp_path)
        config.state_dir.mkdir(parents=True)
        from repro.serve import DecisionJournal

        with DecisionJournal(config.state_dir / JOURNAL_FILE) as j:
            j.append(0, b"{}")
        with pytest.raises(ServeError, match="no checkpoint"):
            ServeDaemon(config, table=serve_table)

    def test_resume_without_checkpoint_refuses(self, tmp_path, serve_table):
        with pytest.raises(ServeError, match="nothing to resume"):
            ServeDaemon(_config(tmp_path), resume=True, table=serve_table)

    def test_resume_refuses_config_drift(self, tmp_path, serve_table):
        config = _config(tmp_path)
        ServeDaemon(
            config, table=serve_table, source=MemorySource([[100.0]])
        ).run()
        drifted = _config(tmp_path, window=WINDOW + 10)
        with pytest.raises(ServeError, match="different configuration"):
            ServeDaemon(drifted, resume=True, table=serve_table)

    def test_resume_continues_generation(self, tmp_path, serve_table):
        config = _config(tmp_path)
        # end=False: the feed stalls, so the run stops on poll budget
        # with the feed unfinished — a resumable cut.
        daemon = ServeDaemon(
            config,
            table=serve_table,
            source=MemorySource([[100.0] * WINDOW * 2], end=False),
        )
        assert daemon.run(max_polls=3) == "stopped"
        resumed = ServeDaemon(
            config,
            resume=True,
            table=serve_table,
            source=MemorySource([[900.0] * WINDOW]),
        )
        resumed.engine  # restored from checkpoint
        assert resumed.generation == 1
        assert resumed.engine.samples_in == WINDOW * 2
        assert resumed.run() == "done"
        assert read_health(config.state_dir)["generation"] == 1


class TestSignals:
    def test_sigterm_checkpoints_and_stops(self, tmp_path, serve_table):
        config = _config(tmp_path, poll_s=0.001)
        append_feed(config.feed, [100.0] * WINDOW)  # no END: daemon idles
        daemon = ServeDaemon(config, table=serve_table)

        def fire():
            time.sleep(0.05)
            signal.raise_signal(signal.SIGTERM)

        t = threading.Thread(target=fire)
        t.start()
        try:
            assert daemon.run() == "stopped"
        finally:
            t.join()
        health = read_health(config.state_dir)
        assert health["status"] == "stopped"
        assert any("signal" in e for e in health["events"])
        assert daemon.store.load_state(config.name) is not None


class TestHealth:
    def test_read_health_absent_and_torn(self, tmp_path):
        assert read_health(tmp_path) is None
        (tmp_path / "health.json").write_text('{"status": "runn')
        assert read_health(tmp_path) is None


class TestCli:
    def test_serve_run_status_and_resume(self, tmp_path, capsys):
        feed = tmp_path / "feed.txt"
        state = tmp_path / "state"
        append_feed(feed, [100.0] * 80)
        base = [
            "serve", str(feed), "--dir", str(state),
            "--window", "60", "--max-rate", "3000", "--poll", "0.001",
        ]
        # No END yet: the poll budget stops the daemon mid-feed.
        assert main(base + ["--max-polls", "5"]) == 3
        out = capsys.readouterr().out
        assert "serve stopped" in out
        append_feed(feed, [900.0] * 40, end=True)
        assert main(base + ["--resume", "--max-polls", "50"]) == 0
        assert "serve done" in capsys.readouterr().out
        assert main(["serve", "--status", "--dir", str(state)]) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "done" and health["generation"] == 1

    def test_serve_status_without_state(self, tmp_path, capsys):
        assert main(["serve", "--status", "--dir", str(tmp_path)]) == 1
        assert "no serve health" in capsys.readouterr().err

    def test_serve_requires_feed(self, tmp_path):
        with pytest.raises(SystemExit, match="feed"):
            main(["serve", "--dir", str(tmp_path)])

    def test_serve_error_is_clean_exit(self, tmp_path, capsys):
        feed = tmp_path / "feed.txt"
        append_feed(feed, [1.0], end=True)
        args = ["serve", str(feed), "--dir", str(tmp_path / "s"),
                "--max-polls", "10"]
        assert main(args) == 0
        capsys.readouterr()
        # Second fresh start over the same state dir: refused, exit 1.
        assert main(args) == 1
        assert "--resume" in capsys.readouterr().err
