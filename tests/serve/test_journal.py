"""Journal recovery edge cases: torn tails truncate, mid-file rot
quarantines, empty files open clean, appends are idempotent by index."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.serve import DecisionJournal, JournalCorruptError, JournalError
from repro.serve.journal import decode_record, encode_record

pytestmark = pytest.mark.quick


def _payloads(n):
    return [encode_record({"i": i, "v": i * 0.1}) for i in range(n)]


def _write(path, payloads):
    with DecisionJournal(path) as j:
        for i, p in enumerate(payloads):
            assert j.append(i, p) is True
    return path


def _frame(payload: bytes) -> bytes:
    return (
        struct.pack("<I", len(payload))
        + payload
        + struct.pack("<I", zlib.crc32(payload))
    )


class TestRecovery:
    def test_absent_file_opens_clean(self, tmp_path):
        with DecisionJournal(tmp_path / "sub" / "j.bin") as j:
            assert j.count == 0

    def test_empty_file_opens_clean(self, tmp_path):
        path = tmp_path / "j.bin"
        path.write_bytes(b"")
        with DecisionJournal(path) as j:
            assert j.count == 0

    def test_round_trip_across_reopen(self, tmp_path):
        payloads = _payloads(5)
        path = _write(tmp_path / "j.bin", payloads)
        with DecisionJournal(path) as j:
            assert j.payloads() == payloads
            assert j.records()[3] == decode_record(payloads[3])

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_torn_final_record_truncated_not_fatal(self, tmp_path, cut):
        payloads = _payloads(4)
        path = _write(tmp_path / "j.bin", payloads)
        data = path.read_bytes()
        path.write_bytes(data[:-cut])  # kill -9 mid-append
        with DecisionJournal(path) as j:
            assert j.count == 3
            assert j.payloads() == payloads[:3]
        # The torn bytes are gone from disk: recovery truncated them.
        assert len(path.read_bytes()) < len(data) - cut + 1

    def test_torn_length_prefix_truncated(self, tmp_path):
        path = _write(tmp_path / "j.bin", _payloads(2))
        good = path.read_bytes()
        path.write_bytes(good + b"\x07\x00")  # 2 of 4 length bytes
        with DecisionJournal(path) as j:
            assert j.count == 2
        assert path.read_bytes() == good

    def test_garbage_length_at_tail_truncated(self, tmp_path):
        path = _write(tmp_path / "j.bin", _payloads(2))
        good = path.read_bytes()
        path.write_bytes(good + struct.pack("<I", 2**31) + b"junk")
        with DecisionJournal(path) as j:
            assert j.count == 2
        assert path.read_bytes() == good

    def test_append_after_torn_tail_continues_stream(self, tmp_path):
        payloads = _payloads(3)
        path = _write(tmp_path / "j.bin", payloads)
        path.write_bytes(path.read_bytes()[:-2])
        with DecisionJournal(path) as j:
            assert j.count == 2
            assert j.append(2, payloads[2]) is True
        with DecisionJournal(path) as j:
            assert j.payloads() == payloads

    def test_mid_file_crc_mismatch_quarantines(self, tmp_path):
        payloads = _payloads(4)
        path = _write(tmp_path / "j.bin", payloads)
        data = bytearray(path.read_bytes())
        # Flip one payload byte of record 1 (offset: frame0 + len prefix).
        offset = len(_frame(payloads[0])) + 4
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError) as exc:
            DecisionJournal(path)
        assert exc.value.index == 1
        assert "preserved" in str(exc.value)
        # Quarantine means the evidence is untouched.
        assert path.read_bytes() == bytes(data)

    def test_corrupt_final_record_is_torn_tail_not_quarantine(self, tmp_path):
        payloads = _payloads(3)
        path = _write(tmp_path / "j.bin", payloads)
        data = bytearray(path.read_bytes())
        data[-6] ^= 0xFF  # payload byte of the *final* frame
        path.write_bytes(bytes(data))
        with DecisionJournal(path) as j:
            assert j.count == 2  # never acknowledged: dropping is correct


class TestIdempotentAppend:
    def test_replay_verifies_and_writes_nothing(self, tmp_path):
        payloads = _payloads(3)
        path = _write(tmp_path / "j.bin", payloads)
        size = path.stat().st_size
        with DecisionJournal(path) as j:
            assert j.append(0, payloads[0]) is False
            assert j.append(2, payloads[2]) is False
            assert j.count == 3
        assert path.stat().st_size == size

    def test_divergent_replay_refuses(self, tmp_path):
        payloads = _payloads(2)
        path = _write(tmp_path / "j.bin", payloads)
        with DecisionJournal(path) as j:
            with pytest.raises(JournalError, match="divergence"):
                j.append(1, encode_record({"i": 999}))

    def test_hole_refuses(self, tmp_path):
        with DecisionJournal(tmp_path / "j.bin") as j:
            with pytest.raises(JournalError, match="index 2"):
                j.append(2, b"{}")
            with pytest.raises(JournalError):
                j.append(-1, b"{}")


class TestEncoding:
    def test_canonical_json_round_trips_floats(self):
        fields = {"t": 7, "on_j": 123.45600000000002, "neg": -0.0}
        payload = encode_record(fields)
        assert decode_record(payload) == fields
        # Canonical: sorted keys, compact, ascii.
        assert payload == encode_record(dict(reversed(list(fields.items()))))

    def test_nan_refused(self):
        with pytest.raises(ValueError):
            encode_record({"x": float("nan")})
