"""Streaming engine vs the batch two-phase replay: decision identity,
checkpoint round-trips, restore validation, lifecycle guards."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import Decision, EngineStateError, StreamingProvisioner

from serve_testlib import WINDOW

pytestmark = pytest.mark.quick


def _stream(table, values, chunks):
    """Feed ``values`` split at the given chunk sizes; return decisions."""
    engine = StreamingProvisioner(table, window=WINDOW)
    decisions = []
    pos = 0
    for size in chunks:
        decisions += engine.feed(values[pos : pos + size])
        pos += size
    assert pos == len(values)
    decisions += engine.finalize()
    return decisions


class TestBatchIdentity:
    def test_single_chunk_matches_batch(
        self, serve_table, serve_values, batch_reconfigs
    ):
        decisions = _stream(serve_table, serve_values, [len(serve_values)])
        assert len(decisions) == len(batch_reconfigs)
        assert all(d.matches(r) for d, r in zip(decisions, batch_reconfigs))

    @pytest.mark.parametrize("size", [1, 7, WINDOW, WINDOW - 1, 1000])
    def test_fixed_chunkings_match_batch(
        self, serve_table, serve_values, batch_reconfigs, size
    ):
        n = len(serve_values)
        chunks = [size] * (n // size)
        if n % size:
            chunks.append(n % size)
        decisions = _stream(serve_table, serve_values, chunks)
        assert len(decisions) == len(batch_reconfigs)
        assert all(d.matches(r) for d, r in zip(decisions, batch_reconfigs))

    def test_payload_bytes_independent_of_chunking(
        self, serve_table, serve_values, batch_payloads
    ):
        decisions = _stream(serve_table, serve_values, [13] * (len(serve_values) // 13) + [len(serve_values) % 13])
        assert [d.to_payload() for d in decisions] == batch_payloads

    def test_empty_feed_calls_are_noops(self, serve_table, serve_values, batch_reconfigs):
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        assert engine.feed([]) == []
        decisions = engine.feed(serve_values)
        assert engine.feed([]) == []
        decisions += engine.finalize()
        assert len(decisions) == len(batch_reconfigs)


class TestCheckpointing:
    def test_state_round_trips_through_json_mid_stream(
        self, serve_table, serve_values, batch_payloads
    ):
        cut = len(serve_values) // 3
        first = StreamingProvisioner(serve_table, window=WINDOW)
        payloads = [d.to_payload() for d in first.feed(serve_values[:cut])]
        # The daemon checkpoints through a JSON store: the snapshot must
        # survive a dumps/loads cycle bit-exactly (floats via repr).
        snapshot = json.loads(json.dumps(first.state_dict()))
        resumed = StreamingProvisioner(serve_table, window=WINDOW)
        resumed.restore(snapshot)
        payloads += [d.to_payload() for d in resumed.feed(serve_values[cut:])]
        payloads += [d.to_payload() for d in resumed.finalize()]
        assert payloads == batch_payloads

    def test_restore_rejects_wrong_version(self, serve_table):
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        state = engine.state_dict()
        state["version"] = 99
        with pytest.raises(EngineStateError, match="version"):
            engine.restore(state)

    def test_restore_rejects_wrong_window(self, serve_table):
        state = StreamingProvisioner(serve_table, window=WINDOW).state_dict()
        with pytest.raises(EngineStateError, match="window"):
            StreamingProvisioner(serve_table, window=WINDOW + 1).restore(state)

    def test_restore_rejects_different_table(self, serve_table):
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        state = engine.state_dict()
        state["table_rows"] = int(state["table_rows"]) + 1
        with pytest.raises(EngineStateError, match="table"):
            engine.restore(state)

    def test_restore_rejects_clamp_mismatch(self, serve_table):
        state = StreamingProvisioner(serve_table, window=WINDOW).state_dict()
        clamped = StreamingProvisioner(
            serve_table, window=WINDOW, clamp=100.0
        )
        with pytest.raises(EngineStateError, match="clamp"):
            clamped.restore(state)


class TestLifecycle:
    def test_feed_after_finalize_refuses(self, serve_table):
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        engine.feed([10.0] * WINDOW)
        engine.finalize()
        with pytest.raises(EngineStateError, match="finalize"):
            engine.feed([1.0])

    def test_finalize_idempotent(self, serve_table):
        engine = StreamingProvisioner(serve_table, window=WINDOW)
        engine.feed([10.0] * (WINDOW + 5))
        first = engine.finalize()
        assert len(first) == 0  # steady feed: no reconfigurations
        assert engine.finalize() == []

    def test_window_must_be_positive(self, serve_table):
        with pytest.raises(ValueError):
            StreamingProvisioner(serve_table, window=0)

    def test_decision_payload_round_trip(
        self, serve_table, serve_values, batch_payloads
    ):
        restored = [Decision.from_payload(p) for p in batch_payloads]
        assert [d.to_payload() for d in restored] == batch_payloads
