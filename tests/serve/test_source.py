"""Feed sources: tail-following, torn trailing lines, typed rejection
of malformed records, END sentinel, checkpointable offsets."""

from __future__ import annotations

import pytest

from repro.serve import (
    END_SENTINEL,
    MemorySource,
    TailFileSource,
    append_feed,
)
from repro.workload.trace import TraceIngestError

pytestmark = pytest.mark.quick


class TestTailFileSource:
    def test_missing_file_is_not_an_error(self, tmp_path):
        src = TailFileSource(tmp_path / "feed.txt")
        chunk = src.poll()
        assert chunk.samples == [] and not chunk.finished and not chunk

    def test_reads_appended_records_across_polls(self, tmp_path):
        feed = tmp_path / "feed.txt"
        src = TailFileSource(feed)
        append_feed(feed, [1.5, 2.5])
        assert src.poll().samples == [1.5, 2.5]
        append_feed(feed, [3.5])
        assert src.poll().samples == [3.5]
        assert src.poll().samples == []

    def test_trailing_line_without_newline_waits(self, tmp_path):
        feed = tmp_path / "feed.txt"
        feed.write_text("1.0\n2.")  # torn write in progress
        src = TailFileSource(feed)
        chunk = src.poll()
        assert chunk.samples == [1.0] and chunk.rejected == []
        with open(feed, "a") as fh:
            fh.write("5\n")  # the producer finishes the record
        assert src.poll().samples == [2.5]

    def test_comments_and_blanks_skipped(self, tmp_path):
        feed = tmp_path / "feed.txt"
        feed.write_text("# header\n\n 4.0 \n")
        assert TailFileSource(feed).poll().samples == [4.0]

    @pytest.mark.parametrize("bad", ["not-a-rate", "inf", "nan", "-3.0"])
    def test_malformed_record_rejected_typed_with_offsets(self, tmp_path, bad):
        feed = tmp_path / "feed.txt"
        feed.write_text(f"1.0\n{bad}\n2.0\n")
        chunk = TailFileSource(feed).poll()
        # The stream survives: good samples flow around the bad record.
        assert chunk.samples == [1.0, 2.0]
        assert len(chunk.rejected) == 1
        err = chunk.rejected[0]
        assert isinstance(err, TraceIngestError)
        assert "line 2" in str(err) and "byte offset 4" in str(err)
        assert str(feed) in str(err)

    def test_end_sentinel_finishes_feed(self, tmp_path):
        feed = tmp_path / "feed.txt"
        append_feed(feed, [1.0], end=True)
        src = TailFileSource(feed)
        chunk = src.poll()
        assert chunk.samples == [1.0] and chunk.finished
        assert src.poll().finished  # stays finished

    def test_truncated_feed_raises_typed(self, tmp_path):
        feed = tmp_path / "feed.txt"
        append_feed(feed, [1.0, 2.0])
        src = TailFileSource(feed)
        src.poll()
        feed.write_text("1.0\n")  # producer rewrote the file shorter
        with pytest.raises(TraceIngestError, match="truncated below"):
            src.poll()

    def test_state_round_trip_reads_nothing_twice(self, tmp_path):
        feed = tmp_path / "feed.txt"
        append_feed(feed, [1.0, 2.0])
        src = TailFileSource(feed)
        src.poll()
        state = src.state()
        append_feed(feed, [3.0], end=True)
        resumed = TailFileSource(feed, **state)
        chunk = resumed.poll()
        assert chunk.samples == [3.0] and chunk.finished


class TestMemorySource:
    def test_replays_chunks_then_ends(self):
        src = MemorySource([[1.0, 2.0], [], [3.0]])
        assert src.poll().samples == [1.0, 2.0]
        assert src.poll().samples == []
        assert src.poll().samples == [3.0]
        assert src.poll().finished
        assert src.poll().finished

    def test_end_false_stalls_instead(self):
        src = MemorySource([[1.0]], end=False)
        src.poll()
        chunk = src.poll()
        assert not chunk.finished and chunk.samples == []


class TestAppendFeed:
    def test_end_flag_writes_sentinel(self, tmp_path):
        feed = tmp_path / "feed.txt"
        append_feed(feed, [], end=True)
        assert feed.read_text() == END_SENTINEL + "\n"

    def test_returns_bytes_written(self, tmp_path):
        feed = tmp_path / "feed.txt"
        n = append_feed(feed, [1.0])
        assert n == feed.stat().st_size == len("1.000000\n")
