"""Shared fixtures: designed infrastructures, short traces, RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bml import design
from repro.core.profiles import (
    ArchitectureProfile,
    illustrative_profiles,
    table_i_profiles,
)
from repro.workload.trace import LoadTrace
from repro.workload.worldcup import WorldCupSynthesizer


@pytest.fixture(scope="session")
def table_i():
    """The five Table I profiles."""
    return table_i_profiles()


@pytest.fixture(scope="session")
def infra(table_i):
    """BML infrastructure designed from Table I (paper's evaluation)."""
    return design(table_i)


@pytest.fixture(scope="session")
def infra_abc():
    """BML infrastructure from the illustrative A-D architectures."""
    return design(illustrative_profiles())


@pytest.fixture(scope="session")
def short_trace():
    """Two hours of World-Cup-shaped load (1 Hz), deterministic."""
    full = WorldCupSynthesizer(n_days=1, seed=123, peak_rate=2500).build()
    return full[: 2 * 3600]


@pytest.fixture(scope="session")
def day_trace():
    """One full day of World-Cup-shaped load (1 Hz), deterministic."""
    return WorldCupSynthesizer(n_days=1, seed=321, peak_rate=3000).build()


@pytest.fixture()
def rng():
    return np.random.default_rng(2016)


# -- streaming daemon (repro serve) fixtures --------------------------------


@pytest.fixture(scope="session")
def serve_table(infra):
    """Combination table sized above the short trace's peak."""
    return infra.table(3000.0)


@pytest.fixture(scope="session")
def serve_values(short_trace):
    """The raw rate samples the serve feed carries (float64, 1 Hz)."""
    return np.asarray(short_trace.values, dtype=np.float64)


@pytest.fixture(scope="session")
def batch_reconfigs(serve_table, short_trace):
    """The batch two-phase engine's reconfiguration stream — the ground
    truth the streaming engine must reproduce bit for bit."""
    from repro.core.prediction import LookAheadMaxPredictor
    from repro.sim.loop import EventDrivenReplay
    from serve_testlib import WINDOW

    replay = EventDrivenReplay(
        serve_table, short_trace, predictor=LookAheadMaxPredictor(WINDOW)
    )
    result = replay.run(engine="twophase")
    assert result.reconfigurations, "fixture trace must cause reconfigs"
    return result.reconfigurations


@pytest.fixture(scope="session")
def batch_payloads(serve_table, serve_values, batch_reconfigs):
    """Canonical journal payloads of the full one-pass streaming run
    (already verified field-identical to ``batch_reconfigs``)."""
    from repro.serve import StreamingProvisioner
    from serve_testlib import WINDOW

    engine = StreamingProvisioner(serve_table, window=WINDOW)
    decisions = engine.feed(serve_values)
    decisions += engine.finalize()
    assert len(decisions) == len(batch_reconfigs)
    assert all(d.matches(r) for d, r in zip(decisions, batch_reconfigs))
    return [d.to_payload() for d in decisions]


@pytest.fixture(scope="session")
def toy_profiles():
    """Tiny hand-checkable architectures used across unit tests.

    big:    maxPerf 100, idle 50, max 100  (slope 0.5)
    little: maxPerf 10,  idle 2,  max 10   (slope 0.8)
    Crossing: big(r) = 50 + 0.5 r, little stack corners 10k at r=10k
    -> big wins from r = 100 exactly (50+50 = 100 = 10 stacks of 10).
    """
    big = ArchitectureProfile(
        name="big", max_perf=100.0, idle_power=50.0, max_power=100.0,
        on_time=20.0, on_energy=1000.0, off_time=5.0, off_energy=100.0,
    )
    little = ArchitectureProfile(
        name="little", max_perf=10.0, idle_power=2.0, max_power=10.0,
        on_time=4.0, on_energy=20.0, off_time=2.0, off_energy=6.0,
    )
    return big, little
