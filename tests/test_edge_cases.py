"""Cross-cutting edge cases that don't fit a single module's test file."""

import numpy as np
import pytest

from repro.core.bml import design
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.profiles import table_i_profiles
from repro.core.scheduler import BMLScheduler
from repro.sim.application import ApplicationSpec
from repro.sim.datacenter import execute_plan
from repro.sim.loop import EventDrivenReplay
from repro.workload.trace import LoadTrace


class TestFineResolution:
    def test_design_at_half_unit_resolution(self):
        """The thresholds live on the metric grid; refining it must keep
        them within one coarse grid step of the published values."""
        infra = design(table_i_profiles(), resolution=0.5)
        assert infra.thresholds["raspberry"] == 0.5
        assert abs(infra.thresholds["chromebook"] - 10.0) <= 1.0
        assert abs(infra.thresholds["paravance"] - 529.0) <= 1.0

    def test_fine_grid_combination_covers_fractional_rate(self):
        infra = design(table_i_profiles(), resolution=0.5)
        combo = infra.combination_for(8.5)
        assert combo.capacity >= 8.5
        assert combo.counts == {"raspberry": 1}


class TestNonUnitTimestep:
    def test_per_day_energy_with_minute_samples(self):
        from repro.sim.results import SimulationResult

        power = np.full(1440, 60.0)  # one day at 1-minute samples
        res = SimulationResult(
            scenario="x", trace_name="t", timestep=60.0,
            power=power, unserved=np.zeros_like(power),
        )
        assert len(res.per_day_energy()) == 1
        assert res.per_day_energy()[0] == pytest.approx(60.0 * 86400)

    def test_trace_day_views_with_minute_samples(self):
        trace = LoadTrace(np.arange(2880.0), timestep=60.0)
        assert trace.n_days == 2
        assert len(trace.day(0)) == 1440


class TestMigrationLatency:
    def test_nonzero_migration_time_can_only_hurt_qos(self, infra):
        """With instance start/stop latency the event-driven replay may
        briefly serve less than the idealised fast path — never more."""
        values = np.concatenate(
            [np.full(600, 8.0), np.full(900, 700.0), np.full(600, 8.0)]
        )
        trace = LoadTrace(values)
        pred = LookAheadMaxPredictor(378)
        outcome = BMLScheduler(infra, predictor=pred).plan_detailed(trace)
        fast = execute_plan(outcome.plan, trace)
        slow = EventDrivenReplay(
            outcome.table,
            trace,
            predictor=pred,
            app_spec=ApplicationSpec(stop_time=1.0, start_time=2.0),
        ).run()
        assert (
            slow.qos().unserved_demand >= fast.qos().unserved_demand - 1e-9
        )

    def test_zero_migration_time_matches_fast_path(self, infra):
        values = np.concatenate([np.full(500, 8.0), np.full(700, 700.0)])
        trace = LoadTrace(values)
        pred = LookAheadMaxPredictor(378)
        outcome = BMLScheduler(infra, predictor=pred).plan_detailed(trace)
        fast = execute_plan(outcome.plan, trace)
        slow = EventDrivenReplay(
            outcome.table,
            trace,
            predictor=pred,
            app_spec=ApplicationSpec(stop_time=0.0, start_time=0.0),
        ).run()
        assert np.allclose(fast.power, slow.power, atol=1e-9)


class TestDegenerateWorkloads:
    def test_all_zero_load(self, infra):
        trace = LoadTrace(np.zeros(1000))
        plan = BMLScheduler(infra).plan(trace)
        res = execute_plan(plan, trace)
        assert res.total_energy == 0.0  # nothing on, nothing drawn
        assert plan.initial.total_nodes == 0

    def test_single_sample_trace(self, infra):
        trace = LoadTrace(np.array([42.0]))
        plan = BMLScheduler(infra).plan(trace)
        res = execute_plan(plan, trace)
        assert res.qos().violation_seconds == 0
        assert len(plan.segments) == 1

    def test_peak_exactly_at_big_capacity_boundary(self, infra):
        trace = LoadTrace(np.full(500, 1331.0))
        plan = BMLScheduler(infra).plan(trace)
        assert plan.initial.counts == {"paravance": 1}
        trace2 = LoadTrace(np.full(500, 1331.0001))
        plan2 = BMLScheduler(infra).plan(trace2)
        assert plan2.initial.capacity > 1331.0

    def test_impulse_train(self, infra):
        """Pathological 0/peak alternation: the look-ahead max collapses
        it to a constant prediction -> exactly zero reconfigurations."""
        values = np.zeros(4000)
        values[::200] = 900.0
        trace = LoadTrace(values)
        plan = BMLScheduler(infra, predictor=LookAheadMaxPredictor(378)).plan(trace)
        assert plan.n_reconfigurations <= 1  # tail may scale down once
        res = execute_plan(plan, trace)
        assert res.qos().violation_seconds == 0


class TestSchedulerTableReuse:
    def test_infra_table_cache_shared_between_runs(self, infra):
        t1 = LoadTrace(np.full(100, 700.0))
        t2 = LoadTrace(np.full(100, 700.0))
        s = BMLScheduler(infra)
        out1 = s.plan_detailed(t1)
        out2 = s.plan_detailed(t2)
        assert out1.table is out2.table  # cached by (max_rate, method)
