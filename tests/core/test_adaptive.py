"""Unit tests for the transition-aware scheduler (future-work extension)."""

import numpy as np
import pytest

from repro.core.adaptive import TransitionAwareScheduler, transition_cost
from repro.core.combination import Combination
from repro.core.prediction import LookAheadMaxPredictor
from repro.core.profiles import TABLE_I
from repro.core.scheduler import BMLScheduler
from repro.sim.datacenter import execute_plan
from repro.workload.trace import LoadTrace

P = TABLE_I["paravance"]
C = TABLE_I["chromebook"]
R = TABLE_I["raspberry"]


def combo(**counts):
    profs = {"p": P, "c": C, "r": R}
    return Combination.of({profs[k]: v for k, v in counts.items()})


class TestTransitionCost:
    def test_no_change_is_free(self):
        assert transition_cost(combo(r=1), combo(r=1)) == 0.0

    def test_boot_cost(self):
        assert transition_cost(combo(), combo(p=1)) == pytest.approx(P.on_energy)

    def test_shutdown_cost(self):
        assert transition_cost(combo(p=1), combo()) == pytest.approx(P.off_energy)

    def test_waiting_idle_included(self):
        # chromebook boots in 12 s but waits for the paravance (189 s)
        cost = transition_cost(combo(), combo(p=1, c=1))
        expected = P.on_energy + C.on_energy + (189 - 12) * C.idle_power
        assert cost == pytest.approx(expected)

    def test_swap_counts_both_sides(self):
        cost = transition_cost(combo(c=5), combo(p=1))
        assert cost == pytest.approx(P.on_energy + 5 * C.off_energy)


class TestScheduling:
    def test_validation(self, infra):
        with pytest.raises(ValueError):
            TransitionAwareScheduler(infra, horizon=0)
        with pytest.raises(ValueError):
            TransitionAwareScheduler(infra, recheck_interval=0)

    def test_constant_load_no_reconfig(self, infra):
        trace = LoadTrace(np.full(2000, 100.0))
        plan = TransitionAwareScheduler(infra).plan(trace)
        assert plan.n_reconfigurations == 0

    def test_step_change_still_provisions(self, infra):
        values = np.concatenate([np.full(1000, 5.0), np.full(1000, 1000.0)])
        trace = LoadTrace(values)
        plan = TransitionAwareScheduler(infra).plan(trace)
        res = execute_plan(plan, trace)
        assert res.qos().violation_seconds == 0
        assert plan.final.capacity >= 1000.0

    def test_plan_wellformed(self, infra, short_trace):
        plan = TransitionAwareScheduler(infra).plan(short_trace)
        t = 0
        for seg in plan.segments:
            assert seg.t_start == t
            t = seg.t_end
        assert t == len(short_trace)

    def test_never_more_switch_energy_than_baseline(self, infra, short_trace):
        base = BMLScheduler(infra).plan(short_trace)
        adapt = TransitionAwareScheduler(infra).plan(short_trace)
        assert adapt.total_switch_energy <= base.total_switch_energy + 1e-6

    def test_qos_not_sacrificed(self, infra, short_trace):
        base = execute_plan(BMLScheduler(infra).plan(short_trace), short_trace)
        adapt = execute_plan(
            TransitionAwareScheduler(infra).plan(short_trace), short_trace
        )
        assert (
            adapt.qos(short_trace).unserved_demand
            <= base.qos(short_trace).unserved_demand + 1e-6
        )

    def test_hysteresis_keeps_big_through_short_dip(self, infra):
        """Load dips below the Big threshold for well under the amortisation
        horizon: the baseline cycles the Big off and on, the transition-aware
        policy keeps it."""
        values = np.concatenate(
            [np.full(1000, 1000.0), np.full(120, 5.0), np.full(1000, 1000.0)]
        )
        trace = LoadTrace(values)
        pred = LookAheadMaxPredictor(60)  # short window exposes the dip
        base = BMLScheduler(infra, predictor=pred).plan(trace)
        adapt = TransitionAwareScheduler(
            infra, predictor=pred, horizon=600
        ).plan(trace)
        base_big_offs = sum(
            1
            for r in base.reconfigurations
            if r.before.count_of("paravance") > r.after.count_of("paravance")
        )
        adapt_big_offs = sum(
            1
            for r in adapt.reconfigurations
            if r.before.count_of("paravance") > r.after.count_of("paravance")
        )
        assert base_big_offs >= 1
        assert adapt_big_offs < base_big_offs

    def test_outcome_interface_matches_baseline(self, infra, short_trace):
        out = TransitionAwareScheduler(infra).plan_detailed(short_trace)
        assert len(out.predictions) == len(short_trace)
        assert out.plan.horizon == len(short_trace)


class TestOptions:
    def test_union_disabled_still_plans(self, infra, short_trace):
        plan = TransitionAwareScheduler(
            infra, consider_union=False
        ).plan(short_trace)
        assert plan.horizon == len(short_trace)

    def test_explicit_horizon_used(self, infra):
        sched = TransitionAwareScheduler(infra, horizon=1200)
        assert sched._effective_horizon() == 1200

    def test_horizon_defaults_to_predictor_window(self, infra):
        sched = TransitionAwareScheduler(
            infra, predictor=LookAheadMaxPredictor(200)
        )
        assert sched._effective_horizon() == 200
