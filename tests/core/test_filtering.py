"""Unit tests for Step 2: sorting, dominance filtering, role labels."""

import pytest

from repro.core.filtering import (
    assign_roles,
    bml_candidates,
    filter_dominated,
    sort_by_performance,
)
from repro.core.profiles import (
    ArchitectureProfile,
    ProfileError,
    illustrative_profiles,
    table_i_profiles,
)


def prof(name, perf, mx, idle=1.0):
    return ArchitectureProfile(
        name=name, max_perf=perf, idle_power=idle, max_power=mx
    )


class TestSorting:
    def test_sorts_by_decreasing_performance(self):
        out = sort_by_performance([prof("a", 10, 5), prof("b", 100, 50), prof("c", 50, 20)])
        assert [p.name for p in out] == ["b", "c", "a"]

    def test_tie_breaks_on_lower_power(self):
        out = sort_by_performance([prof("hungry", 100, 60), prof("frugal", 100, 40)])
        assert [p.name for p in out] == ["frugal", "hungry"]

    def test_rejects_duplicate_names(self):
        with pytest.raises(ProfileError):
            sort_by_performance([prof("a", 10, 5), prof("a", 20, 8)])

    def test_empty_ok(self):
        assert sort_by_performance([]) == []


class TestDominanceFilter:
    def test_keeps_strictly_improving_chain(self):
        kept, removed = filter_dominated(
            [prof("big", 100, 50), prof("mid", 50, 30), prof("small", 10, 5)]
        )
        assert [p.name for p in kept] == ["big", "mid", "small"]
        assert removed == {}

    def test_removes_dominated(self):
        kept, removed = filter_dominated(
            [prof("big", 100, 50), prof("bad", 80, 60), prof("small", 10, 5)]
        )
        assert [p.name for p in kept] == ["big", "small"]
        assert removed == {"bad": "big"}

    def test_equal_power_is_dominated(self):
        kept, removed = filter_dominated([prof("big", 100, 50), prof("meh", 80, 50)])
        assert [p.name for p in kept] == ["big"]
        assert removed["meh"] == "big"

    def test_dominator_is_nearest_better_machine(self):
        kept, removed = filter_dominated(
            [prof("big", 100, 50), prof("mid", 50, 30), prof("bad", 40, 45)]
        )
        # "bad" draws more than "mid", the cheapest faster machine so far
        assert removed["bad"] == "mid"

    def test_taurus_removed_from_table_i(self):
        kept, removed = filter_dominated(table_i_profiles())
        assert "taurus" in removed
        assert removed["taurus"] == "paravance"
        assert [p.name for p in kept] == [
            "paravance", "graphene", "chromebook", "raspberry",
        ]

    def test_d_removed_from_illustrative(self):
        kept, removed = filter_dominated(illustrative_profiles())
        assert removed == {"D": "A"}
        assert [p.name for p in kept] == ["A", "B", "C"]


class TestRoles:
    def test_three_way_labels(self):
        kept, _ = filter_dominated(
            [prof("big", 100, 50), prof("mid", 50, 30), prof("small", 10, 5)]
        )
        roles = assign_roles(kept)
        assert roles == {"big": "Big", "mid": "Medium", "small": "Little"}

    def test_single_architecture(self):
        assert assign_roles([prof("only", 10, 5)]) == {"only": "Big"}

    def test_two_architectures(self):
        roles = assign_roles([prof("b", 100, 50), prof("l", 10, 5)])
        assert roles == {"b": "Big", "l": "Little"}

    def test_more_than_three_numbers_mediums(self):
        kept = [prof("a", 100, 50), prof("b", 60, 30), prof("c", 30, 15), prof("d", 10, 5)]
        roles = assign_roles(kept)
        assert roles == {"a": "Big", "b": "Medium-1", "c": "Medium-2", "d": "Little"}

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            assign_roles([])


class TestEndToEnd:
    def test_bml_candidates_combines_everything(self):
        res = bml_candidates(table_i_profiles())
        assert res.big.name == "paravance"
        assert res.little.name == "raspberry"
        assert res.role_of("paravance") == "Big"
        assert "taurus" in res.removed
