"""Unit tests for application-constrained combinations (Sec. III)."""

import itertools

import numpy as np
import pytest

from repro.core.combination import Combination, CombinationError, ideal_table
from repro.core.constraints import (
    bounded_nodes_combination,
    bounded_nodes_table,
    constrained_table,
    enforce_min_nodes,
)
from repro.core.profiles import TABLE_I, table_i_profiles
from repro.sim.application import ApplicationSpec

P = TABLE_I["paravance"]
C = TABLE_I["chromebook"]
R = TABLE_I["raspberry"]
TRIO = (P, C, R)


class TestBoundedNodesCombination:
    def test_zero_rate_empty(self):
        assert bounded_nodes_combination(0.0, TRIO, 3) == Combination.empty()

    def test_tight_budget_forces_big_machine(self):
        # 100 req/s on <=3 nodes: 3 chromebooks reach only 99 -> paravance
        combo = bounded_nodes_combination(100.0, TRIO, 3)
        assert combo.counts == {"paravance": 1}

    def test_relaxed_budget_recovers_optimum(self):
        combo = bounded_nodes_combination(100.0, TRIO, 4)
        assert combo.counts == {"chromebook": 3, "raspberry": 1}

    def test_budget_respected_everywhere(self):
        for rate in (1, 9, 50, 333, 1000, 2000):
            for budget in (1, 2, 5):
                try:
                    combo = bounded_nodes_combination(float(rate), TRIO, budget)
                except CombinationError:
                    continue
                assert combo.total_nodes <= budget
                assert combo.capacity >= rate

    def test_infeasible_rate_raises(self):
        with pytest.raises(CombinationError):
            bounded_nodes_combination(1332.0, TRIO, 1)

    def test_invalid_budget(self):
        with pytest.raises(CombinationError):
            bounded_nodes_combination(5.0, TRIO, 0)

    def test_matches_brute_force(self):
        budget = 3
        for rate in range(1, 120, 7):
            best = np.inf
            for counts in itertools.product(range(budget + 1), repeat=3):
                if sum(counts) == 0 or sum(counts) > budget:
                    continue
                combo = Combination.of(dict(zip(TRIO, counts)))
                if combo.capacity >= rate:
                    best = min(best, combo.power(float(rate)))
            got = bounded_nodes_combination(float(rate), TRIO, budget)
            assert got.power(float(rate)) == pytest.approx(best)


class TestBoundedNodesTable:
    def test_generous_budget_equals_unconstrained(self):
        free = ideal_table(TRIO, 600.0)
        bounded = bounded_nodes_table(TRIO, 600.0, 50)
        assert np.allclose(free, bounded)

    def test_tighter_budgets_cost_monotonically_more(self):
        loose = bounded_nodes_table(TRIO, 500.0, 10)
        tight = bounded_nodes_table(TRIO, 500.0, 2)
        assert np.all(tight + 1e-9 >= loose)

    def test_unreachable_rates_are_inf(self):
        tbl = bounded_nodes_table(TRIO, 3000.0, 2)
        assert np.isinf(tbl[2700])  # 2 paravances top out at 2662


class TestEnforceMinNodes:
    def test_pads_with_lowest_idle_machine(self):
        combo = Combination.of({P: 1})
        padded = enforce_min_nodes(combo, 3, TRIO)
        assert padded.total_nodes == 3
        assert padded.count_of("raspberry") == 2  # lowest idle power

    def test_noop_when_satisfied(self):
        combo = Combination.of({C: 2})
        assert enforce_min_nodes(combo, 2, TRIO) is combo

    def test_validation(self):
        with pytest.raises(CombinationError):
            enforce_min_nodes(Combination.empty(), -1, TRIO)


class TestConstrainedTable:
    def test_max_instances_bound(self):
        spec = ApplicationSpec(max_instances=2)
        table = constrained_table(TRIO, spec, 400.0)
        for rate in (0.0, 9.0, 100.0, 400.0):
            assert table.combination_for(rate).total_nodes <= 2

    def test_min_instances_padding(self):
        spec = ApplicationSpec(min_instances=2, max_instances=4)
        table = constrained_table(TRIO, spec, 100.0)
        assert table.combination_for(5.0).total_nodes == 2
        # rate 0: service scaled to zero, no padding
        assert table.combination_for(0.0).total_nodes == 0

    def test_unbounded_spec_matches_ideal(self):
        spec = ApplicationSpec()
        table = constrained_table(TRIO, spec, 200.0)
        free = ideal_table(TRIO, 200.0)
        for rate in range(0, 201, 11):
            assert table.power_for(float(rate)) == pytest.approx(free[rate])

    def test_infeasible_spec_raises(self):
        spec = ApplicationSpec(max_instances=1)
        with pytest.raises(CombinationError):
            constrained_table(TRIO, spec, 2000.0)


class TestSchedulerIntegration:
    def test_scheduler_honours_spec(self, infra, short_trace):
        from repro.core.scheduler import BMLScheduler

        spec = ApplicationSpec(min_instances=2, max_instances=5)
        plan = BMLScheduler(infra, app_spec=spec).plan(short_trace)
        for seg in plan.segments:
            if seg.serving:
                assert 2 <= seg.serving.total_nodes <= 5

    def test_spec_and_inventory_mutually_exclusive(self, infra):
        from repro.core.scheduler import BMLScheduler

        with pytest.raises(ValueError):
            BMLScheduler(
                infra,
                inventory={"paravance": 1},
                app_spec=ApplicationSpec(max_instances=2),
            )

    def test_redundancy_floor_costs_energy(self, infra, short_trace):
        from repro.core.scheduler import BMLScheduler
        from repro.sim.datacenter import execute_plan

        free = execute_plan(BMLScheduler(infra).plan(short_trace), short_trace)
        redundant = execute_plan(
            BMLScheduler(
                infra, app_spec=ApplicationSpec(min_instances=3)
            ).plan(short_trace),
            short_trace,
        )
        assert redundant.total_energy > free.total_energy