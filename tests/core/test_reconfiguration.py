"""Unit tests for reconfiguration planning and plan assembly."""

import pytest

from repro.core.combination import Combination
from repro.core.profiles import TABLE_I
from repro.core.reconfiguration import (
    Reconfiguration,
    SchedulePlan,
    Segment,
    build_plan,
    plan_reconfiguration,
    reconfiguration_window,
)

P = TABLE_I["paravance"]
C = TABLE_I["chromebook"]
R = TABLE_I["raspberry"]


def combo(**counts):
    profs = {"p": P, "c": C, "r": R}
    return Combination.of({profs[k]: v for k, v in counts.items()})


class TestSegment:
    def test_rejects_empty_span(self):
        with pytest.raises(ValueError):
            Segment(5, 5, combo(r=1))

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            Segment(0, 5, combo(r=1), overhead_power=-1.0)

    def test_duration(self):
        assert Segment(3, 10, combo(r=1)).duration == 7


class TestReconfigurationWindow:
    def test_scale_up_uses_boot_time(self):
        boot, off = reconfiguration_window(combo(r=1), combo(r=1, p=1))
        assert boot == 189 and off == 0

    def test_scale_down_uses_off_time(self):
        boot, off = reconfiguration_window(combo(r=1, p=1), combo(r=1))
        assert boot == 0 and off == 10

    def test_swap_uses_both(self):
        boot, off = reconfiguration_window(combo(c=5), combo(p=1))
        assert boot == 189 and off == 21

    def test_max_over_started_architectures(self):
        boot, _ = reconfiguration_window(combo(), combo(c=1, r=1))
        assert boot == 16  # raspberry (16 s) boots slower than chromebook (12 s)


class TestPlanReconfiguration:
    def test_boot_energy_is_exact(self):
        segs, event = plan_reconfiguration(0, combo(r=1), combo(r=1, p=1), 10_000)
        assert event.on_energy == pytest.approx(P.on_energy)
        assert event.off_energy == 0.0
        # integral of overhead over the boot window equals OnE
        boot_overhead = sum(
            s.overhead_power * s.duration for s in segs if s.t_start < 189
        )
        assert boot_overhead == pytest.approx(P.on_energy)

    def test_shutdown_energy_is_exact(self):
        segs, event = plan_reconfiguration(0, combo(p=1, r=1), combo(p=1), 10_000)
        assert event.off_energy == pytest.approx(R.off_energy)
        total_overhead = sum(s.overhead_power * s.duration for s in segs)
        assert total_overhead == pytest.approx(R.off_energy)

    def test_serving_switches_at_handover(self):
        segs, event = plan_reconfiguration(0, combo(c=5), combo(p=1), 10_000)
        assert event.boot_duration == 189
        for s in segs:
            if s.t_end <= 189:
                assert s.serving == combo(c=5)
            else:
                assert s.serving == combo(p=1)

    def test_early_booted_machines_idle_until_handover(self):
        # chromebook (12 s) and paravance (189 s) boot together: from t=12
        # to t=189 the chromebook idles, which must appear as overhead.
        segs, _ = plan_reconfiguration(0, combo(), combo(p=1, c=1), 10_000)
        mid = [s for s in segs if s.t_start >= 12 and s.t_end <= 189]
        assert mid, "expected a waiting segment"
        for s in mid:
            assert s.overhead_power == pytest.approx(
                P.on_energy / 189 + C.idle_power
            )

    def test_clipped_at_horizon(self):
        segs, event = plan_reconfiguration(0, combo(r=1), combo(r=1, p=1), 100)
        assert segs[-1].t_end == 100
        assert event.completes_at == 189  # event records physical completion

    def test_rejects_no_change(self):
        with pytest.raises(ValueError):
            plan_reconfiguration(0, combo(r=1), combo(r=1), 100)

    def test_switch_energy_property(self):
        _, event = plan_reconfiguration(0, combo(c=5), combo(p=1), 10_000)
        assert event.switch_energy == pytest.approx(P.on_energy + 5 * C.off_energy)


class TestBuildPlan:
    def test_no_decisions_single_segment(self):
        plan = build_plan(100, combo(r=1), [])
        assert len(plan.segments) == 1
        assert plan.segments[0].serving == combo(r=1)
        assert plan.final == combo(r=1)

    def test_segments_contiguous_and_cover_horizon(self):
        plan = build_plan(
            5000,
            combo(r=1),
            [(100, combo(c=1)), (1000, combo(p=1)), (3000, combo(r=2))],
        )
        t = 0
        for seg in plan.segments:
            assert seg.t_start == t
            t = seg.t_end
        assert t == 5000
        assert plan.n_reconfigurations == 3

    def test_identical_target_skipped(self):
        plan = build_plan(100, combo(r=1), [(10, combo(r=1))])
        assert plan.n_reconfigurations == 0

    def test_overlapping_decision_rejected(self):
        with pytest.raises(ValueError):
            build_plan(
                10_000,
                combo(r=1),
                [(0, combo(p=1)), (50, combo(r=1))],  # inside the 189 s boot
            )

    def test_overlapping_decision_trimmed_when_allowed(self):
        plan = build_plan(
            10_000,
            combo(r=1),
            [(0, combo(p=1)), (50, combo(r=1))],
            allow_overlap_trim=True,
        )
        assert plan.n_reconfigurations == 1
        assert plan.final == combo(p=1)

    def test_decision_beyond_horizon_ignored(self):
        plan = build_plan(100, combo(r=1), [(150, combo(p=1))])
        assert plan.n_reconfigurations == 0

    def test_total_switch_energy(self):
        plan = build_plan(
            10_000, combo(r=1), [(0, combo(r=1, p=1)), (1000, combo(r=1))]
        )
        assert plan.total_switch_energy == pytest.approx(
            P.on_energy + P.off_energy
        )

    def test_plan_validation_rejects_gaps(self):
        with pytest.raises(ValueError):
            SchedulePlan(
                horizon=10,
                initial=combo(r=1),
                segments=[Segment(0, 4, combo(r=1)), Segment(5, 10, combo(r=1))],
            )

    def test_plan_validation_rejects_short_coverage(self):
        with pytest.raises(ValueError):
            SchedulePlan(
                horizon=10,
                initial=combo(r=1),
                segments=[Segment(0, 9, combo(r=1))],
            )
